//! The user population: activity levels, submission propensity, join
//! dates, and the fan graph.
//!
//! Paper §3: "Digg users vary widely in their activity levels… the top
//! 3% of the users were responsible for 35% of the submissions" and
//! §3.2: "The top users… tended to have more friends and fans than
//! other users." We therefore draw a heavy-tailed activity level per
//! user and make both the watch-graph attractiveness (fans) and the
//! out-degree (friends) increase with activity, which reproduces the
//! activity concentration, the friends/fans scatter, and the
//! top-user advantage the paper analyses.

use digg_stats::distributions::{pareto, BoundedPowerLaw};
use rand::Rng;
use serde::{Deserialize, Serialize};
use social_graph::generators::configuration_model;
use social_graph::temporal::{Day, TemporalFanList};
use social_graph::{SocialGraph, UserId};

/// Parameters for population synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of users.
    pub users: usize,
    /// Pareto shape for the activity distribution (smaller = heavier
    /// tail). Calibrated so the top 3% of users hold ≈35% of total
    /// activity, as in §3.
    pub activity_alpha: f64,
    /// Upper clamp on activity. An unbounded Pareto with alpha near 1
    /// concentrates almost all attractiveness in one mega-hub, which
    /// no real site exhibits; the paper's own scatter tops out near
    /// 10^3 fans. The clamp bounds the largest fan counts accordingly.
    pub max_activity: f64,
    /// Exponent linking fan-attractiveness to activity
    /// (`attractiveness ∝ activity^gamma`). gamma > 1 makes top users'
    /// fan advantage super-linear, as the scatter plot suggests.
    pub fans_gamma: f64,
    /// Exponent linking submission propensity to activity
    /// (`submit_weight ∝ activity^submit_exponent`). 1.0 makes the
    /// top-3% submission share track the top-3% activity share, the
    /// paper's §3 statistic.
    pub submit_exponent: f64,
    /// Exponent linking browsing/voting propensity to activity.
    /// Below 1, votes spread across the casual population (the paper:
    /// "most of the users voted on only one story"), keeping hub
    /// users out of most stories' first ten votes.
    pub browse_exponent: f64,
    /// Mean friends (out-degree) per user; individual out-degrees are
    /// power-law distributed and correlated with activity.
    pub mean_friends: f64,
    /// Maximum out-degree.
    pub max_friends: usize,
    /// Day (relative epoch) the simulated scrape treats as "now";
    /// users join uniformly in `[0, join_horizon]`.
    pub join_horizon: Day,
}

impl PopulationConfig {
    /// Small population for unit tests.
    pub fn toy(users: usize) -> PopulationConfig {
        PopulationConfig {
            users,
            activity_alpha: 1.1,
            max_activity: 100.0,
            fans_gamma: 1.3,
            submit_exponent: 1.0,
            browse_exponent: 1.0,
            mean_friends: 6.0,
            max_friends: 100,
            join_horizon: 1000,
        }
    }
}

/// The simulated user base.
#[derive(Debug, Clone)]
pub struct Population {
    /// The watch graph (A watches B = A is a fan of B).
    pub graph: SocialGraph,
    /// Per-user activity level (drives Friends-interface attention;
    /// arbitrary positive scale; only ratios matter).
    pub activity: Vec<f64>,
    /// Per-user browsing-session weight (activity^browse_exponent).
    pub browse_weight: Vec<f64>,
    /// Per-user story-submission weight.
    pub submit_weight: Vec<f64>,
    /// Per-user join day (used by the temporal-snapshot machinery).
    pub join_day: Vec<Day>,
}

impl Population {
    /// Number of users.
    pub fn len(&self) -> usize {
        self.activity.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.activity.is_empty()
    }

    /// Users ranked by descending fan count (the paper's "top users"
    /// list). Rank 1 = `ranking()[0]`.
    pub fn ranking(&self) -> Vec<UserId> {
        self.graph.users_by_fans_desc()
    }

    /// Rank (1-based) of each user under [`Population::ranking`].
    pub fn ranks(&self) -> Vec<usize> {
        let ranking = self.ranking();
        let mut rank = vec![0usize; self.len()];
        for (i, u) in ranking.into_iter().enumerate() {
            rank[u.index()] = i + 1;
        }
        rank
    }

    /// Fraction of total activity held by the most active
    /// `top_fraction` of users — the §3 concentration statistic.
    pub fn activity_concentration(&self, top_fraction: f64) -> f64 {
        let mut act = self.activity.clone();
        act.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = act.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let k = ((self.len() as f64 * top_fraction).ceil() as usize).min(self.len());
        act[..k].iter().sum::<f64>() / total
    }

    /// Stable fingerprint of the population, recorded in simulation
    /// snapshots. Populations are deliberately *not* serialized — they
    /// are a pure function of `(PopulationConfig, seed)` and can be
    /// regenerated in milliseconds — but a restore against the wrong
    /// regeneration would silently produce garbage, so [`crate::Sim`]'s
    /// restore path compares this fingerprint instead.
    pub fn fingerprint(&self) -> u64 {
        let mut w = digg_snapshot::ByteWriter::new();
        w.put_usize(self.len());
        w.put_usize(self.graph.edge_count());
        for &a in &self.activity {
            w.put_f64(a);
        }
        for &b in &self.browse_weight {
            w.put_f64(b);
        }
        for &s in &self.submit_weight {
            w.put_f64(s);
        }
        digg_snapshot::fnv1a64(&w.into_bytes())
    }

    /// Generate a population.
    ///
    /// Steps:
    /// 1. activity ~ Pareto(1, `activity_alpha`);
    /// 2. out-degree (friends) per user ~ bounded power law, then
    ///    reassigned so more active users get larger friend lists;
    /// 3. watch edges wired with the configuration model, targets
    ///    drawn proportionally to `activity^fans_gamma`;
    /// 4. join days uniform on `[0, join_horizon]`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &PopulationConfig) -> Population {
        let n = cfg.users;
        assert!(n > 0, "population must be non-empty");
        let activity: Vec<f64> = (0..n)
            .map(|_| pareto(rng, 1.0, cfg.activity_alpha).min(cfg.max_activity))
            .collect();

        // Raw out-degree draws: power law with mean ≈ mean_friends.
        // BoundedPowerLaw(1, max, 2.0) has mean ~ ln(max); rescale by
        // rejection-free scaling: draw then multiply.
        let deg_gen = BoundedPowerLaw::new(1, cfg.max_friends.max(2) as u64, 2.0);
        let mut degs: Vec<usize> = (0..n).map(|_| deg_gen.sample(rng) as usize).collect();
        let mean_raw = degs.iter().sum::<usize>() as f64 / n as f64;
        let scale = cfg.mean_friends / mean_raw.max(1e-9);
        for d in &mut degs {
            *d = (((*d as f64) * scale).round() as usize).clamp(0, cfg.max_friends);
        }

        // Give the big friend lists to the active users: sort degrees
        // descending and assign along the activity ranking.
        let mut by_activity: Vec<usize> = (0..n).collect();
        by_activity.sort_by(|&a, &b| activity[b].total_cmp(&activity[a]));
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let mut out_degrees = vec![0usize; n];
        for (deg, &user) in degs.into_iter().zip(&by_activity) {
            out_degrees[user] = deg;
        }

        let attractiveness: Vec<f64> = activity.iter().map(|a| a.powf(cfg.fans_gamma)).collect();
        let graph = configuration_model(rng, &out_degrees, &attractiveness);

        let submit_weight: Vec<f64> = activity
            .iter()
            .map(|a| a.powf(cfg.submit_exponent))
            .collect();
        let browse_weight: Vec<f64> = activity
            .iter()
            .map(|a| a.powf(cfg.browse_exponent))
            .collect();

        let join_day: Vec<Day> = (0..n)
            .map(|_| rng.random_range(0..=cfg.join_horizon))
            .collect();

        Population {
            graph,
            activity,
            browse_weight,
            submit_weight,
            join_day,
        }
    }

    /// Export the fan graph as a dated fan-link artifact: link
    /// creation dates are synthesised uniformly between the later
    /// join date of the endpoints and `scrape_day`, which is what the
    /// paper's Feb-2008 scrape would have seen.
    pub fn to_temporal<R: Rng + ?Sized>(&self, rng: &mut R, scrape_day: Day) -> TemporalFanList {
        let mut t = TemporalFanList::new(self.len());
        for (fan, watched) in self.graph.edges() {
            let earliest = self.join_day[fan.index()].max(self.join_day[watched.index()]);
            let created = if earliest >= scrape_day {
                scrape_day
            } else {
                rng.random_range(earliest..=scrape_day)
            };
            t.add_link(watched, fan, self.join_day[fan.index()], created);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(n: usize) -> Population {
        let mut rng = StdRng::seed_from_u64(11);
        Population::generate(&mut rng, &PopulationConfig::toy(n))
    }

    #[test]
    fn sizes_line_up() {
        let p = pop(300);
        assert_eq!(p.len(), 300);
        assert_eq!(p.graph.user_count(), 300);
        assert_eq!(p.activity.len(), 300);
        assert_eq!(p.submit_weight.len(), 300);
        assert_eq!(p.join_day.len(), 300);
        assert!(!p.is_empty());
    }

    #[test]
    fn activity_is_concentrated() {
        let p = pop(2000);
        let top3 = p.activity_concentration(0.03);
        // Pareto(1.1) top-3% share should be substantial (paper: 35%).
        assert!(top3 > 0.15, "top-3% share {top3}");
        assert!(top3 < 0.95);
    }

    #[test]
    fn active_users_attract_fans() {
        let p = pop(2000);
        // Compare mean fan count of top-decile activity users vs rest.
        let mut idx: Vec<usize> = (0..p.len()).collect();
        idx.sort_by(|&a, &b| p.activity[b].partial_cmp(&p.activity[a]).unwrap());
        let top: Vec<usize> = idx[..200].to_vec();
        let rest: Vec<usize> = idx[200..].to_vec();
        let mean = |ids: &[usize]| {
            ids.iter()
                .map(|&i| p.graph.fan_count(UserId::from_index(i)))
                .sum::<usize>() as f64
                / ids.len() as f64
        };
        assert!(
            mean(&top) > 3.0 * mean(&rest),
            "top {} rest {}",
            mean(&top),
            mean(&rest)
        );
    }

    #[test]
    fn ranking_and_ranks_are_consistent() {
        let p = pop(100);
        let ranking = p.ranking();
        let ranks = p.ranks();
        for (i, u) in ranking.iter().enumerate() {
            assert_eq!(ranks[u.index()], i + 1);
        }
    }

    #[test]
    fn temporal_export_preserves_edges_at_scrape_time() {
        let p = pop(200);
        let mut rng = StdRng::seed_from_u64(5);
        let scrape_day = 2000;
        let t = p.to_temporal(&mut rng, scrape_day);
        // At the scrape date, the exact snapshot equals the graph.
        let g = t.snapshot_exact(scrape_day);
        assert_eq!(g.edge_count(), p.graph.edge_count());
    }

    #[test]
    fn temporal_snapshot_shrinks_with_earlier_cutoff() {
        let p = pop(400);
        let mut rng = StdRng::seed_from_u64(6);
        let t = p.to_temporal(&mut rng, 2000);
        let early = t.snapshot_exact(100);
        let late = t.snapshot_exact(1900);
        assert!(early.edge_count() <= late.edge_count());
    }
}
