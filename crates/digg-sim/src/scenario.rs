//! Calibrated scenarios.
//!
//! [`june2006`] reproduces, at 1/8 population scale, the observables
//! the paper reports for Digg's Technology section in June 2006:
//!
//! * 1–2 submissions per minute (≥ 1500/day);
//! * promotion boundary at 43 votes, decided within 24 h;
//! * tens of promotions per day, so a few days of simulation yield
//!   the ~200-story front-page sample;
//! * final-vote histogram of promoted stories with ≈20 % below 500
//!   votes and ≈20 % above 1500 (Fig. 2a);
//! * heavy-tailed per-user activity (top 3 % ≈ 35 % of submissions)
//!   and fan counts correlated with activity (§3.1–3.2).
//!
//! The calibration test in `tests/calibration.rs` asserts the emergent
//! statistics; the constants below are inputs, not the claim.

use crate::config::{PromoterKind, SimConfig};
use crate::population::{Population, PopulationConfig};
use crate::time::{DAY, HOUR};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Promotion threshold observed in the paper's dataset.
pub const PROMOTION_THRESHOLD: usize = 43;

/// The population scale of the calibrated scenario. The real site had
/// a few hundred thousand registered users in mid-2006 and the paper
/// observed ~16,600 distinct voters; we simulate 25,000 users, which
/// keeps every experiment laptop-fast while preserving all
/// distributional shapes. Absolute counts that scale with population
/// (distinct voters) are compared after scaling by this note.
pub const JUNE2006_USERS: usize = 25_000;

/// Population parameters for the June-2006 scenario.
pub fn june2006_population_config() -> PopulationConfig {
    PopulationConfig {
        users: JUNE2006_USERS,
        // Top-3% activity share ≈ 35% (paper §3).
        activity_alpha: 1.08,
        max_activity: 300.0,
        // Fans grow super-linearly with activity: the paper's scatter
        // shows top users dominating both axes.
        fans_gamma: 1.25,
        // Sub-linear: top users submit disproportionately but not in
        // proportion to their (very heavy-tailed) activity — the real
        // top-1000 supplied a large share of *front page* stories yet
        // a small share of the 1500+ daily submissions.
        submit_exponent: 0.6,
        // Sub-linear: hub users vote a lot, but not 300x a casual
        // user — most of a story's early voters are ordinary users,
        // which keeps story influence after ten votes in the paper's
        // observed range (Fig. 3a).
        browse_exponent: 0.55,
        mean_friends: 6.0,
        max_friends: 1_000,
        // Users joined over roughly 600 days of Digg's existence
        // before the study window.
        join_horizon: 600,
    }
}

/// Simulator parameters for the June-2006 scenario.
pub fn june2006(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        // §3: "1-2 new submissions every minute".
        submissions_per_minute: 1.5,
        // Story appeal mixture: a thin stream of broadly interesting
        // stories (promoted on merit, go on to 1500+ votes) over a
        // bulk of niche material.
        high_quality_fraction: 0.012,
        high_quality_skill: 0.06,
        skill_activity_ref: 150.0,
        niche_quality_mu: -2.2,
        niche_quality_sigma: 0.6,
        broad_quality_min: 0.55,
        // Digg removed unpromoted stories from the queue after 24 h.
        queue_lifetime: DAY,
        page_size: 15,
        promoter: PromoterKind::Threshold {
            min_votes: PROMOTION_THRESHOLD,
        },
        // Front-page traffic: calibrated against mean promoted-story
        // vote totals (Fig. 2a). ~60 sessions/minute sitewide.
        frontpage_sessions_per_minute: 60.0,
        frontpage_vote_prob: 0.045,
        // Wu & Huberman: novelty half-life about a day.
        novelty_tau: 2076.0,
        // §4: browsing the queue is "unmanageable to most users".
        upcoming_sessions_per_minute: 18.0,
        upcoming_vote_prob: 0.05,
        page_stop_prob: 0.35,
        // Independent interest-driven discovery: a quality-1 story
        // draws ~0.04 external votes/minute (≈58/day) while fresh.
        external_rate: 0.03,
        external_window: 2 * DAY,
        // Friends interface: exposure within hours, 48 h lifetime.
        fan_exposure_prob: 0.9,
        attention_ref: 2.0,
        feed_dilution: 1.0,
        submitted_dilution: 0.3,
        fan_exposure_delay_mean: 2.0 * HOUR as f64,
        feed_lifetime: 2 * DAY,
        // Fans back their friends' own submissions loyally (the
        // social-browsing effect that powers top users' promotions)…
        friend_vote_submitted: 0.135,
        // …but vote on stories friends merely dugg at interest-driven
        // rates, keeping vote-triggered cascades subcritical (most
        // recommendation chains terminate after a few steps; paper
        // refs [12, 23]).
        friend_vote_base: 0.03,
        friend_vote_quality_slope: 0.05,
        users: JUNE2006_USERS,
    }
}

/// The post-controversy variant: identical to [`june2006`] except the
/// promotion algorithm discounts in-network votes ("unique digging
/// diversity of the individuals digging the story", Sept 2006). Used
/// by the ABL2 ablation and the `promotion_audit` example.
pub fn september2006(seed: u64) -> SimConfig {
    SimConfig {
        promoter: PromoterKind::Diversity {
            min_weighted: PROMOTION_THRESHOLD as f64,
            in_network_weight: 0.4,
        },
        ..june2006(seed)
    }
}

/// Build the June-2006 population deterministically from a seed.
pub fn june2006_population(seed: u64) -> Population {
    let mut rng = StdRng::seed_from_u64(seed);
    Population::generate(&mut rng, &june2006_population_config())
}

/// A reduced-scale variant (~1/5 of the calibrated scenario) for
/// integration tests that need realistic shapes but not the full
/// sample sizes. Rates that are *per story* are unchanged; population
/// and traffic shrink together so per-story vote totals stay in the
/// same bands.
pub fn june2006_small(seed: u64) -> (SimConfig, Population) {
    let mut cfg = june2006(seed);
    cfg.users = 5_000;
    cfg.frontpage_sessions_per_minute = 12.0;
    cfg.upcoming_sessions_per_minute = 1.5;
    cfg.submissions_per_minute = 0.5;
    let mut pcfg = june2006_population_config();
    pcfg.users = cfg.users;
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = Population::generate(&mut rng, &pcfg);
    (cfg, pop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn june2006_config_is_valid() {
        assert_eq!(june2006(1).validate(), Ok(()));
    }

    #[test]
    fn small_variant_is_valid() {
        let (cfg, pop) = june2006_small(1);
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(cfg.users, pop.len());
    }

    #[test]
    fn september_variant_swaps_only_the_promoter() {
        let june = june2006(4);
        let sept = september2006(4);
        assert!(matches!(sept.promoter, PromoterKind::Diversity { .. }));
        assert_eq!(sept.validate(), Ok(()));
        // Everything else identical.
        let mut sept_as_june = sept;
        sept_as_june.promoter = june.promoter;
        assert_eq!(sept_as_june, june);
    }

    #[test]
    fn population_has_top_user_concentration() {
        // Use the small variant: same generative process, faster.
        let (_, pop) = june2006_small(3);
        let share = pop.activity_concentration(0.03);
        assert!(
            share > 0.2,
            "top-3% activity share {share} too diffuse for the paper's 35%"
        );
    }
}
