//! The seed per-minute tick loop, kept verbatim as an equivalence
//! baseline for the event-driven engine.
//!
//! [`TickSim`] is an independent copy of the simulator as it existed
//! before the port to the `des-core` event kernel: every minute it
//! rescans the upcoming queue for expiry, drains due exposures, and
//! walks every story in the external-discovery window — even when
//! nothing happens. The event-driven [`crate::Sim`] must reproduce its
//! [`SimMetrics`] and vote logs *exactly* (in [`crate::Kernel::Compat`]
//! mode, given `feed_lifetime >= 1`); `tests/equivalence.rs` and the
//! `sim_sweep` bench baseline hold the two implementations against
//! each other, so a bug would have to be introduced twice, in two
//! different algorithms, to go unnoticed.
//!
//! Keep this module boring: it intentionally duplicates engine logic
//! and should only change when the *model* changes, never for
//! performance.

use crate::config::SimConfig;
use crate::decay::{novelty, sample_pages_viewed};
use crate::feeds::ExposureQueue;
use crate::frontpage::FrontPage;
use crate::metrics::SimMetrics;
use crate::population::Population;
use crate::promotion::{self, Promoter};
use crate::queue::UpcomingQueue;
use crate::story::{Story, StoryId, StoryStatus, VoteChannel};
use crate::time::Minute;
use digg_stats::distributions::{coin, exponential, poisson, LogNormal};
use digg_stats::sampling::AliasTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use social_graph::UserId;

/// The original per-minute simulation loop (see module docs). Same
/// constructor contract as [`crate::Sim`]: `cfg` must validate and the
/// population size must match `cfg.users`.
pub struct TickSim {
    cfg: SimConfig,
    pop: Population,
    rng: StdRng,
    now: Minute,
    stories: Vec<Story>,
    queue: UpcomingQueue,
    front: FrontPage,
    exposures: ExposureQueue,
    promoter: Box<dyn Promoter>,
    browse_table: AliasTable,
    submit_table: AliasTable,
    metrics: SimMetrics,
    niche_quality: LogNormal,
    /// Index of the oldest story still inside the external-discovery
    /// window (stories are indexed in submission order).
    external_lo: usize,
}

impl TickSim {
    /// Create a simulation over an existing population.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the population size
    /// disagrees with `cfg.users`.
    pub fn new(cfg: SimConfig, pop: Population) -> TickSim {
        if let Err(e) = cfg.validate() {
            // digg-lint: allow(no-lib-unwrap) — documented constructor contract ("# Panics"): invalid config is a caller bug
            panic!("invalid SimConfig: {e}");
        }
        assert_eq!(
            cfg.users,
            pop.len(),
            "config.users must match population size"
        );
        let browse_table =
            // digg-lint: allow(no-lib-unwrap) — Population::validate (checked above via cfg) guarantees positive weights
            AliasTable::new(&pop.browse_weight).expect("population browse weights are positive");
        let submit_table =
            // digg-lint: allow(no-lib-unwrap) — Population::validate (checked above via cfg) guarantees positive weights
            AliasTable::new(&pop.submit_weight).expect("submission weights are positive");
        let rng = StdRng::seed_from_u64(cfg.seed);
        let promoter = promotion::from_kind(cfg.promoter);
        let niche_quality = LogNormal::new(cfg.niche_quality_mu, cfg.niche_quality_sigma);
        TickSim {
            queue: UpcomingQueue::new(cfg.page_size, cfg.queue_lifetime),
            front: FrontPage::new(cfg.page_size),
            exposures: ExposureQueue::new(),
            stories: Vec::new(),
            now: Minute::ZERO,
            metrics: SimMetrics::default(),
            browse_table,
            submit_table,
            promoter,
            niche_quality,
            external_lo: 0,
            rng,
            cfg,
            pop,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Minute {
        self.now
    }

    /// All stories, in submission order.
    pub fn stories(&self) -> &[Story] {
        &self.stories
    }

    /// One story.
    pub fn story(&self, id: StoryId) -> &Story {
        &self.stories[id.index()]
    }

    /// The front page.
    pub fn front_page(&self) -> &FrontPage {
        &self.front
    }

    /// The upcoming queue.
    pub fn upcoming_queue(&self) -> &UpcomingQueue {
        &self.queue
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Advance the simulation by `minutes`.
    pub fn run(&mut self, minutes: u64) {
        for _ in 0..minutes {
            self.step();
        }
    }

    /// Advance one minute.
    pub fn step(&mut self) {
        self.now = self.now + 1;
        self.metrics.minutes += 1;
        self.expire_queue();
        self.process_submissions();
        self.process_exposures();
        self.process_frontpage_browsing();
        self.process_upcoming_browsing();
        self.process_external();
    }

    // ------------------------------------------------------------ steps

    fn expire_queue(&mut self) {
        for id in self.queue.expire(self.now) {
            let story = &mut self.stories[id.index()];
            if story.is_upcoming() {
                story.status = StoryStatus::Expired(self.now);
                self.metrics.expirations += 1;
            }
        }
    }

    fn process_submissions(&mut self) {
        let n = poisson(&mut self.rng, self.cfg.submissions_per_minute);
        for _ in 0..n {
            let submitter = UserId::from_index(self.submit_table.sample(&mut self.rng));
            let quality = self.draw_quality(submitter);
            let id = StoryId::from_index(self.stories.len());
            let story = Story::new(id, submitter, self.now, quality);
            self.stories.push(story);
            self.queue.push(id, self.now);
            self.metrics.submissions += 1;
            // "See the stories your friends submitted": expose the
            // submitter's fans.
            self.schedule_fan_exposures(submitter, id, true);
        }
    }

    fn draw_quality(&mut self, submitter: UserId) -> f64 {
        let skill = (self.pop.activity[submitter.index()] / self.cfg.skill_activity_ref).min(1.0);
        let p_broad = self.cfg.high_quality_fraction + self.cfg.high_quality_skill * skill;
        if coin(&mut self.rng, p_broad) {
            let lo = self.cfg.broad_quality_min;
            lo + (1.0 - lo) * self.rng.random::<f64>()
        } else {
            self.niche_quality.sample(&mut self.rng).clamp(1e-4, 1.0)
        }
    }

    fn process_exposures(&mut self) {
        let due = self.exposures.drain_due(self.now);
        for e in due {
            self.metrics.exposures_fired += 1;
            // Feed entries lapse 48h after the triggering activity.
            if self.now.since(e.triggered_at) > self.cfg.feed_lifetime {
                continue;
            }
            let story = &self.stories[e.story.index()];
            if story.has_voted(e.fan) {
                continue;
            }
            // Fans back their friends' own submissions loyally; for
            // stories a friend merely dugg, interest dominates.
            let p = if e.from_submitter {
                self.cfg.friend_vote_submitted
            } else {
                self.cfg.friend_vote_base + self.cfg.friend_vote_quality_slope * story.quality
            };
            if coin(&mut self.rng, p) {
                self.cast_vote(e.story, e.fan, VoteChannel::Friends);
            }
        }
    }

    fn process_frontpage_browsing(&mut self) {
        let sessions = poisson(&mut self.rng, self.cfg.frontpage_sessions_per_minute);
        for _ in 0..sessions {
            let user = UserId::from_index(self.browse_table.sample(&mut self.rng));
            let pages = sample_pages_viewed(&mut self.rng, self.cfg.page_stop_prob);
            for p in 0..pages.min(self.front.page_count()) {
                for id in self.front.page(p) {
                    let story = &self.stories[id.index()];
                    if story.has_voted(user) {
                        continue;
                    }
                    let age = match story.status {
                        StoryStatus::FrontPage(t) => self.now.since(t),
                        _ => continue,
                    };
                    let prob = self.cfg.frontpage_vote_prob
                        * story.quality
                        * novelty(age, self.cfg.novelty_tau);
                    if coin(&mut self.rng, prob) {
                        self.cast_vote(id, user, VoteChannel::FrontPage);
                    }
                }
            }
        }
    }

    fn process_upcoming_browsing(&mut self) {
        let sessions = poisson(&mut self.rng, self.cfg.upcoming_sessions_per_minute);
        for _ in 0..sessions {
            let user = UserId::from_index(self.browse_table.sample(&mut self.rng));
            let pages = sample_pages_viewed(&mut self.rng, self.cfg.page_stop_prob);
            for p in 0..pages.min(self.queue.page_count()) {
                for id in self.queue.page(p) {
                    let story = &self.stories[id.index()];
                    if story.has_voted(user) || !story.is_upcoming() {
                        continue;
                    }
                    let prob = self.cfg.upcoming_vote_prob * story.quality;
                    if coin(&mut self.rng, prob) {
                        self.cast_vote(id, user, VoteChannel::Upcoming);
                    }
                }
            }
        }
    }

    fn process_external(&mut self) {
        // Advance the window start past stories that left the
        // external-discovery window.
        while self.external_lo < self.stories.len()
            && self.stories[self.external_lo].age_at(self.now) > self.cfg.external_window
        {
            self.external_lo += 1;
        }
        for idx in self.external_lo..self.stories.len() {
            let (quality, id) = {
                let s = &self.stories[idx];
                (s.quality, s.id)
            };
            let rate = self.cfg.external_rate * quality;
            let n = poisson(&mut self.rng, rate);
            for _ in 0..n {
                let user = UserId::from_index(self.browse_table.sample(&mut self.rng));
                if !self.stories[idx].has_voted(user) {
                    self.cast_vote(id, user, VoteChannel::External);
                }
            }
        }
    }

    // ------------------------------------------------------------ voting

    /// Record a vote, schedule the voter's fans' exposures, update
    /// channel metrics, and re-check promotion.
    fn cast_vote(&mut self, id: StoryId, user: UserId, channel: VoteChannel) {
        let added = self.stories[id.index()].add_vote(user, self.now, channel);
        if !added {
            return;
        }
        match channel {
            VoteChannel::Friends => self.metrics.votes_friends += 1,
            VoteChannel::FrontPage => self.metrics.votes_frontpage += 1,
            VoteChannel::Upcoming => self.metrics.votes_upcoming += 1,
            VoteChannel::External => self.metrics.votes_external += 1,
        }
        self.schedule_fan_exposures(user, id, false);
        self.maybe_promote(id);
    }

    /// Expose `actor`'s fans to `story` ("see the stories my friends
    /// dugg / submitted").
    fn schedule_fan_exposures(&mut self, actor: UserId, story: StoryId, from_submitter: bool) {
        // Collect scheduling decisions first to appease the borrow
        // checker; fan lists are small.
        let fans: Vec<UserId> = self.pop.graph.fans(actor).to_vec();
        for fan in fans {
            if self.stories[story.index()].has_voted(fan) {
                continue;
            }
            if self.exposures.was_scheduled(fan, story) {
                continue;
            }
            // Exposure = (fan visits the site during the window) x
            // (fan notices this entry in their feed). The first factor
            // grows with activity; the second is diluted by how many
            // friends the fan watches — the Friends interface of a
            // user watching hundreds of people scrolls any single
            // story out of attention quickly. Together these keep
            // social cascades subcritical (refs [12, 23]: most
            // recommendation cascades terminate after a few steps).
            let a = self.pop.activity[fan.index()];
            let f = self.pop.graph.friend_count(fan).max(1) as f64;
            let visits = (a / self.cfg.attention_ref).min(1.0);
            // The submissions view is far less crowded than the diggs
            // view, so its congestion dilution is gentler.
            let dilution_exp = if from_submitter {
                self.cfg.submitted_dilution
            } else {
                self.cfg.feed_dilution
            };
            let dilution = f.powf(-dilution_exp);
            let p = (self.cfg.fan_exposure_prob * visits * dilution).min(1.0);
            if !coin(&mut self.rng, p) {
                // Consume the pair so another friend's vote doesn't
                // grant a second chance; the interface shows a story
                // once.
                self.exposures
                    .schedule(fan, story, Minute(u64::MAX), self.now, from_submitter);
                continue;
            }
            let delay = 1.0 + exponential(&mut self.rng, 1.0 / self.cfg.fan_exposure_delay_mean);
            let delay = (delay as u64).min(self.cfg.feed_lifetime);
            self.exposures
                .schedule(fan, story, self.now + delay, self.now, from_submitter);
            self.metrics.exposures_scheduled += 1;
        }
    }

    fn maybe_promote(&mut self, id: StoryId) {
        let story = &self.stories[id.index()];
        if !story.is_upcoming() || story.age_at(self.now) > self.cfg.queue_lifetime {
            return;
        }
        if self
            .promoter
            .should_promote(story, &self.pop.graph, self.now)
        {
            self.stories[id.index()].status = StoryStatus::FrontPage(self.now);
            self.queue.remove(id);
            self.front.promote(id, self.now);
            self.metrics.promotions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn tick_baseline_is_deterministic() {
        let make = || {
            let cfg = SimConfig::toy(42);
            let mut rng = StdRng::seed_from_u64(42 ^ 0xABCD);
            let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
            let mut sim = TickSim::new(cfg, pop);
            sim.run(300);
            sim
        };
        let (a, b) = (make(), make());
        assert_eq!(a.metrics(), b.metrics());
        for (x, y) in a.stories().iter().zip(b.stories()) {
            assert_eq!(x.votes, y.votes);
        }
        assert!(a.metrics().submissions > 0);
    }
}
