//! Attention decay and page-position bias.
//!
//! Two forces slow a story's vote accrual over time, producing the
//! saturating curves of Fig. 1:
//!
//! * **novelty decay** — Wu & Huberman (ref \[24\]) measured interest in
//!   a front-page story decaying with a half-life of about a day; we
//!   use an exponential in age with configurable time constant;
//! * **position decay** — stories sink to deeper pages as newer ones
//!   arrive, and browsers stop paging with fixed probability per page
//!   (geometric attention over pages).

/// Novelty factor in `(0, 1]` for a story of `age` minutes on the
/// front page, with time constant `tau` minutes:
/// `exp(-age / tau)`. `tau = 2076` gives a half-life of one day
/// (`1440 = tau * ln 2`).
pub fn novelty(age_minutes: u64, tau: f64) -> f64 {
    debug_assert!(tau > 0.0);
    (-(age_minutes as f64) / tau).exp()
}

/// The `tau` giving a desired half-life in minutes.
pub fn tau_for_half_life(half_life_minutes: f64) -> f64 {
    half_life_minutes / std::f64::consts::LN_2
}

/// Probability a browser reaches page `p` (0-based) when they stop
/// after each page with probability `stop`: `(1 - stop)^p`.
pub fn page_reach(p: usize, stop: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&stop));
    // digg-lint: allow(no-truncating-cast) — powi exponent: page depth is tiny (reach underflows to 0 long before i32::MAX)
    (1.0 - stop).powi(p as i32)
}

/// Sample how many pages a browser looks at (at least 1) given the
/// per-page stop probability.
pub fn sample_pages_viewed<R: rand::Rng + ?Sized>(rng: &mut R, stop: f64) -> usize {
    let mut pages = 1;
    // Cap at 50 pages: real users do not read 750 stories.
    while pages < 50 && rng.random::<f64>() >= stop {
        pages += 1;
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn novelty_decays_from_one() {
        assert_eq!(novelty(0, 100.0), 1.0);
        assert!(novelty(100, 100.0) < novelty(50, 100.0));
        assert!((novelty(100, 100.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn half_life_calibration() {
        let tau = tau_for_half_life(1440.0);
        assert!((novelty(1440, tau) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn page_reach_geometric() {
        assert_eq!(page_reach(0, 0.7), 1.0);
        assert!((page_reach(1, 0.7) - 0.3).abs() < 1e-12);
        assert!((page_reach(2, 0.7) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn pages_viewed_at_least_one_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let p = sample_pages_viewed(&mut rng, 0.5);
            assert!((1..=50).contains(&p));
        }
        // stop=1 means always exactly one page.
        for _ in 0..20 {
            assert_eq!(sample_pages_viewed(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn pages_viewed_mean_matches_geometric() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| sample_pages_viewed(&mut rng, 0.5) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }
}
