//! Simulation configuration.
//!
//! Every behavioural rate lives here with its calibration rationale.
//! The preset matching the paper's June-2006 observations is
//! [`crate::scenario::june2006`]; tests assert the emergent statistics
//! rather than these inputs.

use digg_snapshot::{ByteReader, ByteWriter, Codec, SnapshotError};
use serde::{Deserialize, Serialize};

/// Which promotion algorithm the platform runs. See
/// [`crate::promotion`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PromoterKind {
    /// Pre-Sept-2006: a vote-count threshold within the queue window.
    Threshold {
        /// Votes required for promotion (paper boundary: 43).
        min_votes: usize,
    },
    /// Post-Sept-2006 "unique digging diversity": in-network votes are
    /// discounted, so a story needs more votes the more of them come
    /// from fans of prior voters.
    Diversity {
        /// Weighted votes required for promotion.
        min_weighted: f64,
        /// Weight of an in-network vote (out-of-network votes weigh 1).
        in_network_weight: f64,
    },
}

/// All simulator parameters.
///
/// Rates are per-minute unless noted. Probabilities are per
/// opportunity. See field docs for the observable each parameter is
/// calibrated against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; every run is a pure function of `(config, population)`.
    pub seed: u64,

    // ------------------------------------------------------ submissions
    /// Mean story submissions per minute. Paper §3: "there are 1-2 new
    /// submissions every minute", ">1500 daily".
    pub submissions_per_minute: f64,

    // ------------------------------------------------------ story appeal
    /// Base probability a story is drawn from the "broadly appealing"
    /// quality regime (the rest are niche). Calibrated so ≈20% of
    /// *promoted* stories exceed 1500 votes (Fig. 2a).
    pub high_quality_fraction: f64,
    /// Extra broad-story probability for the most active submitters:
    /// the realised probability is
    /// `high_quality_fraction + high_quality_skill * min(1, activity/skill_activity_ref)`.
    /// Top users are experienced content finders; a few of their many
    /// submissions are genuinely broad hits (the paper's holdout had 5
    /// interesting stories among 48 top-user submissions).
    pub high_quality_skill: f64,
    /// Activity at which the skill bonus saturates.
    pub skill_activity_ref: f64,
    /// Mean of the log-quality for niche stories.
    pub niche_quality_mu: f64,
    /// Sigma of the log-quality for niche stories.
    pub niche_quality_sigma: f64,
    /// Minimum quality for broadly appealing stories (uniform on
    /// `[broad_quality_min, 1]`).
    pub broad_quality_min: f64,

    // ------------------------------------------------------ queue/front page
    /// Minutes a story stays in the upcoming queue before expiring
    /// (Digg: 24 hours).
    pub queue_lifetime: u64,
    /// Stories per listing page (Digg: 15).
    pub page_size: usize,
    /// Promotion algorithm.
    pub promoter: PromoterKind,

    // ------------------------------------------------------ browsing
    /// Mean front-page browsing sessions per minute across the whole
    /// population. Sessions are assigned to users proportionally to
    /// activity.
    pub frontpage_sessions_per_minute: f64,
    /// Probability a front-page browser votes for a quality-1.0,
    /// age-0 story they see. Actual probability scales with quality,
    /// novelty decay and page position.
    pub frontpage_vote_prob: f64,
    /// Novelty decay time-constant in minutes for front-page
    /// attention (Wu & Huberman observe a half-life of about a day;
    /// `tau = 2076` gives exactly that).
    pub novelty_tau: f64,
    /// Mean upcoming-queue browsing sessions per minute. Paper §4:
    /// "the quantity of submissions there … makes browsing
    /// unmanageable to most users", so this is small relative to
    /// front-page traffic.
    pub upcoming_sessions_per_minute: f64,
    /// Probability an upcoming browser votes for a quality-1.0 story.
    pub upcoming_vote_prob: f64,
    /// Geometric parameter for how deep browsers page into a listing:
    /// probability of stopping at the current page. Higher = more
    /// traffic concentrated on page 1.
    pub page_stop_prob: f64,

    // ------------------------------------------------------ external seeds
    /// Mean external ("Digg it" button) vote opportunities per story
    /// per minute at quality 1.0, while the story is less than
    /// `external_window` minutes old. These are the independent,
    /// interest-driven seeds of §5.1.
    pub external_rate: f64,
    /// Window (minutes since submission) during which external
    /// discovery is active. Mirrors news-cycle relevance.
    pub external_window: u64,

    // ------------------------------------------------------ friends interface
    /// Base probability that a fan who *does* check the Friends
    /// interface notices a given entry. The realised exposure
    /// probability is
    /// `fan_exposure_prob * min(1, activity/attention_ref) / sqrt(friend_count)`:
    /// casual users rarely visit within the feed window, and users
    /// watching many friends have each entry diluted in a crowded
    /// feed. Paper §3: the interface summarises friends' activity over
    /// the preceding 48 hours.
    pub fan_exposure_prob: f64,
    /// Activity level at which a user is certain to check the site
    /// within the feed window (see [`SimConfig::fan_exposure_prob`]).
    pub attention_ref: f64,
    /// Exponent of the feed-congestion dilution for the "stories my
    /// friends dugg" view: exposure scales as
    /// `friend_count^-feed_dilution`. This view carries every vote by
    /// every watched friend, so it is crowded; 1 models a fixed
    /// attention budget split across all watched friends. Values near
    /// 1 are what keep vote-triggered cascades subcritical on a
    /// scale-free graph (the epidemic threshold vanishes otherwise —
    /// paper refs [16, 17]).
    pub feed_dilution: f64,
    /// Dilution exponent for the "stories my friends submitted" view.
    /// Submissions are ~50x rarer than diggs, so this view stays
    /// readable even for users watching many friends; the exponent is
    /// correspondingly small.
    pub submitted_dilution: f64,
    /// Mean delay (minutes) between a vote and a fan's exposure to it.
    pub fan_exposure_delay_mean: f64,
    /// Friends-interface entries expire this many minutes after the
    /// triggering vote (Digg: 48 hours).
    pub feed_lifetime: u64,
    /// Probability an exposed fan votes for a story their friend
    /// *submitted*. Fans follow their friends' own output loyally
    /// (Lerman's social-browsing result), so this is large; it drives
    /// the initial in-network wave under a well-connected submitter.
    pub friend_vote_submitted: f64,
    /// Base probability an exposed fan votes for a story their friend
    /// merely *dugg*, independent of quality — the community/affinity
    /// component of social voting. Kept small so vote-triggered
    /// cascades are subcritical (most recommendation chains terminate
    /// after a few steps; paper refs [12, 23]).
    pub friend_vote_base: f64,
    /// Quality-proportional component of the exposed-fan vote
    /// probability for dugg stories (total = base + slope * quality).
    pub friend_vote_quality_slope: f64,

    // ------------------------------------------------------ population
    /// Number of users to simulate.
    pub users: usize,
}

impl SimConfig {
    /// A small, fast configuration for unit tests: few users, high
    /// rates, short windows. Not calibrated to the paper.
    pub fn toy(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            submissions_per_minute: 0.2,
            high_quality_fraction: 0.3,
            high_quality_skill: 0.0,
            skill_activity_ref: 10.0,
            niche_quality_mu: -2.2,
            niche_quality_sigma: 0.7,
            broad_quality_min: 0.6,
            queue_lifetime: 12 * 60,
            page_size: 15,
            promoter: PromoterKind::Threshold { min_votes: 10 },
            frontpage_sessions_per_minute: 6.0,
            frontpage_vote_prob: 0.06,
            novelty_tau: 600.0,
            upcoming_sessions_per_minute: 2.0,
            upcoming_vote_prob: 0.05,
            page_stop_prob: 0.6,
            external_rate: 0.05,
            external_window: 12 * 60,
            fan_exposure_prob: 0.6,
            attention_ref: 3.0,
            feed_dilution: 0.8,
            submitted_dilution: 0.3,
            fan_exposure_delay_mean: 30.0,
            feed_lifetime: 48 * 60,
            friend_vote_submitted: 0.4,
            friend_vote_base: 0.3,
            friend_vote_quality_slope: 0.2,
            users: 400,
        }
    }

    /// Validate internal consistency; returns a description of the
    /// first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        fn prob(name: &str, v: f64) -> Result<(), String> {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
            Ok(())
        }
        fn nonneg(name: &str, v: f64) -> Result<(), String> {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
            Ok(())
        }
        nonneg("submissions_per_minute", self.submissions_per_minute)?;
        prob("high_quality_fraction", self.high_quality_fraction)?;
        prob("high_quality_skill", self.high_quality_skill)?;
        if self.high_quality_fraction + self.high_quality_skill > 1.0 {
            return Err("broad-story probability may exceed 1 at max skill".into());
        }
        if self.skill_activity_ref <= 0.0 {
            return Err("skill_activity_ref must be positive".into());
        }
        prob("broad_quality_min", self.broad_quality_min)?;
        if self.page_size == 0 {
            return Err("page_size must be positive".into());
        }
        if self.users == 0 {
            return Err("users must be positive".into());
        }
        nonneg(
            "frontpage_sessions_per_minute",
            self.frontpage_sessions_per_minute,
        )?;
        prob("frontpage_vote_prob", self.frontpage_vote_prob)?;
        if self.novelty_tau <= 0.0 {
            return Err("novelty_tau must be positive".into());
        }
        nonneg(
            "upcoming_sessions_per_minute",
            self.upcoming_sessions_per_minute,
        )?;
        prob("upcoming_vote_prob", self.upcoming_vote_prob)?;
        prob("page_stop_prob", self.page_stop_prob)?;
        nonneg("external_rate", self.external_rate)?;
        prob("fan_exposure_prob", self.fan_exposure_prob)?;
        if self.attention_ref <= 0.0 {
            return Err("attention_ref must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.feed_dilution) {
            return Err(format!(
                "feed_dilution must be in [0,1], got {}",
                self.feed_dilution
            ));
        }
        if !(0.0..=1.0).contains(&self.submitted_dilution) {
            return Err(format!(
                "submitted_dilution must be in [0,1], got {}",
                self.submitted_dilution
            ));
        }
        if self.fan_exposure_delay_mean <= 0.0 {
            return Err("fan_exposure_delay_mean must be positive".into());
        }
        prob("friend_vote_submitted", self.friend_vote_submitted)?;
        prob("friend_vote_base", self.friend_vote_base)?;
        prob("friend_vote_quality_slope", self.friend_vote_quality_slope)?;
        if self.friend_vote_base + self.friend_vote_quality_slope > 1.0 {
            return Err("friend vote probability may exceed 1 at quality 1".into());
        }
        match self.promoter {
            PromoterKind::Threshold { min_votes } => {
                if min_votes == 0 {
                    return Err("min_votes must be positive".into());
                }
            }
            PromoterKind::Diversity {
                min_weighted,
                in_network_weight,
            } => {
                if min_weighted <= 0.0 {
                    return Err("min_weighted must be positive".into());
                }
                prob("in_network_weight", in_network_weight)?;
            }
        }
        Ok(())
    }
}

impl Codec for PromoterKind {
    fn encode(&self, out: &mut ByteWriter) {
        match *self {
            PromoterKind::Threshold { min_votes } => {
                out.put_u8(0);
                out.put_usize(min_votes);
            }
            PromoterKind::Diversity {
                min_weighted,
                in_network_weight,
            } => {
                out.put_u8(1);
                out.put_f64(min_weighted);
                out.put_f64(in_network_weight);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<PromoterKind, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(PromoterKind::Threshold {
                min_votes: r.get_usize()?,
            }),
            1 => Ok(PromoterKind::Diversity {
                min_weighted: r.get_f64()?,
                in_network_weight: r.get_f64()?,
            }),
            t => Err(SnapshotError::Malformed(format!("promoter kind tag {t}"))),
        }
    }
}

/// Binary checkpoint encoding: every field in declaration order, floats
/// as bit patterns. Adding/removing/reordering fields is a container
/// format change — bump `digg_snapshot::FORMAT_VERSION` with it.
impl Codec for SimConfig {
    fn encode(&self, out: &mut ByteWriter) {
        out.put_u64(self.seed);
        out.put_f64(self.submissions_per_minute);
        out.put_f64(self.high_quality_fraction);
        out.put_f64(self.high_quality_skill);
        out.put_f64(self.skill_activity_ref);
        out.put_f64(self.niche_quality_mu);
        out.put_f64(self.niche_quality_sigma);
        out.put_f64(self.broad_quality_min);
        out.put_u64(self.queue_lifetime);
        out.put_usize(self.page_size);
        self.promoter.encode(out);
        out.put_f64(self.frontpage_sessions_per_minute);
        out.put_f64(self.frontpage_vote_prob);
        out.put_f64(self.novelty_tau);
        out.put_f64(self.upcoming_sessions_per_minute);
        out.put_f64(self.upcoming_vote_prob);
        out.put_f64(self.page_stop_prob);
        out.put_f64(self.external_rate);
        out.put_u64(self.external_window);
        out.put_f64(self.fan_exposure_prob);
        out.put_f64(self.attention_ref);
        out.put_f64(self.feed_dilution);
        out.put_f64(self.submitted_dilution);
        out.put_f64(self.fan_exposure_delay_mean);
        out.put_u64(self.feed_lifetime);
        out.put_f64(self.friend_vote_submitted);
        out.put_f64(self.friend_vote_base);
        out.put_f64(self.friend_vote_quality_slope);
        out.put_usize(self.users);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<SimConfig, SnapshotError> {
        Ok(SimConfig {
            seed: r.get_u64()?,
            submissions_per_minute: r.get_f64()?,
            high_quality_fraction: r.get_f64()?,
            high_quality_skill: r.get_f64()?,
            skill_activity_ref: r.get_f64()?,
            niche_quality_mu: r.get_f64()?,
            niche_quality_sigma: r.get_f64()?,
            broad_quality_min: r.get_f64()?,
            queue_lifetime: r.get_u64()?,
            page_size: r.get_usize()?,
            promoter: PromoterKind::decode(r)?,
            frontpage_sessions_per_minute: r.get_f64()?,
            frontpage_vote_prob: r.get_f64()?,
            novelty_tau: r.get_f64()?,
            upcoming_sessions_per_minute: r.get_f64()?,
            upcoming_vote_prob: r.get_f64()?,
            page_stop_prob: r.get_f64()?,
            external_rate: r.get_f64()?,
            external_window: r.get_u64()?,
            fan_exposure_prob: r.get_f64()?,
            attention_ref: r.get_f64()?,
            feed_dilution: r.get_f64()?,
            submitted_dilution: r.get_f64()?,
            fan_exposure_delay_mean: r.get_f64()?,
            feed_lifetime: r.get_u64()?,
            friend_vote_submitted: r.get_f64()?,
            friend_vote_base: r.get_f64()?,
            friend_vote_quality_slope: r.get_f64()?,
            users: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip_is_exact() {
        for cfg in [
            SimConfig::toy(5),
            SimConfig {
                promoter: PromoterKind::Diversity {
                    min_weighted: 9.5,
                    in_network_weight: 0.25,
                },
                ..SimConfig::toy(11)
            },
        ] {
            let mut w = ByteWriter::new();
            cfg.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = SimConfig::decode(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn toy_config_is_valid() {
        assert_eq!(SimConfig::toy(1).validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_probability() {
        let mut c = SimConfig::toy(1);
        c.frontpage_vote_prob = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_page() {
        let mut c = SimConfig::toy(1);
        c.page_size = 0;
        assert!(c.validate().unwrap_err().contains("page_size"));
    }

    #[test]
    fn validation_catches_friend_prob_overflow() {
        let mut c = SimConfig::toy(1);
        c.friend_vote_base = 0.9;
        c.friend_vote_quality_slope = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_promoter() {
        let mut c = SimConfig::toy(1);
        c.promoter = PromoterKind::Threshold { min_votes: 0 };
        assert!(c.validate().is_err());
        c.promoter = PromoterKind::Diversity {
            min_weighted: 0.0,
            in_network_weight: 0.3,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = SimConfig::toy(5);
        let json = serde_json::to_string(&c).unwrap();
        let c2: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, c2);
    }
}
