//! The Friends-interface exposure process.
//!
//! When a user submits or votes on a story, the story appears in the
//! Friends interface of every fan of that user for the next 48 hours
//! ("see the stories your friends submitted / dugg", §4.1). Fans check
//! the interface at rates proportional to their activity, so each fan
//! is exposed with some probability and after some delay.
//!
//! We model this as a scheduled-exposure process: each vote enqueues,
//! for each fan of the voter, a potential exposure at a future minute.
//! The engine drains due exposures every tick; an exposure converts to
//! a vote with a probability that mixes a community-affinity base rate
//! and the story's intrinsic quality.
//!
//! A fan exposed to the same story through several friends keeps only
//! the earliest exposure (the interface shows the story once).

use crate::story::StoryId;
use crate::time::Minute;
use social_graph::UserId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// One pending exposure: `fan` will notice `story` at `due`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exposure {
    /// When the fan checks the interface.
    pub due: Minute,
    /// The fan being exposed.
    pub fan: UserId,
    /// The story they will see.
    pub story: StoryId,
    /// The vote that triggered the entry (for feed-lifetime checks).
    pub triggered_at: Minute,
    /// Whether the entry came from the friend *submitting* the story
    /// (as opposed to digging someone else's). Fans vote on their
    /// friends' own submissions at a much higher rate.
    pub from_submitter: bool,
}

/// Heap entry: `(due, sequence, fan, story, triggered_at,
/// from_submitter)`; `Reverse` turns the max-heap into a min-heap on
/// `(due, sequence)`.
type HeapEntry = Reverse<(Minute, u64, UserId, StoryId, Minute, bool)>;

/// Priority queue of pending exposures, drained in time order.
///
/// Determinism: ties on `due` are broken by insertion sequence, so a
/// run is reproducible from the RNG seed alone.
#[derive(Debug, Default)]
pub struct ExposureQueue {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    /// `(fan, story)` pairs ever scheduled, to collapse duplicate
    /// entries from multiple friends.
    scheduled: HashSet<(UserId, StoryId)>,
}

impl ExposureQueue {
    /// Empty queue.
    pub fn new() -> ExposureQueue {
        ExposureQueue::default()
    }

    /// Number of pending exposures.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no exposures are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule an exposure unless this fan already has (or had) an
    /// entry for this story. Returns whether it was scheduled.
    pub fn schedule(
        &mut self,
        fan: UserId,
        story: StoryId,
        due: Minute,
        triggered_at: Minute,
        from_submitter: bool,
    ) -> bool {
        if !self.scheduled.insert((fan, story)) {
            return false;
        }
        self.seq += 1;
        self.heap.push(Reverse((
            due,
            self.seq,
            fan,
            story,
            triggered_at,
            from_submitter,
        )));
        true
    }

    /// Pop all exposures due at or before `now`, in time order.
    pub fn drain_due(&mut self, now: Minute) -> Vec<Exposure> {
        let mut out = Vec::new();
        while let Some(&Reverse((due, _, fan, story, triggered_at, from_submitter))) =
            self.heap.peek()
        {
            if due > now {
                break;
            }
            self.heap.pop();
            out.push(Exposure {
                due,
                fan,
                story,
                triggered_at,
                from_submitter,
            });
        }
        out
    }

    /// Has this `(fan, story)` pair ever been scheduled?
    pub fn was_scheduled(&self, fan: UserId, story: StoryId) -> bool {
        self.scheduled.contains(&(fan, story))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_order() {
        let mut q = ExposureQueue::new();
        q.schedule(UserId(1), StoryId(0), Minute(10), Minute(5), false);
        q.schedule(UserId(2), StoryId(0), Minute(3), Minute(1), false);
        q.schedule(UserId(3), StoryId(1), Minute(7), Minute(2), false);
        assert_eq!(q.len(), 3);
        let due = q.drain_due(Minute(7));
        let fans: Vec<UserId> = due.iter().map(|e| e.fan).collect();
        assert_eq!(fans, vec![UserId(2), UserId(3)]);
        assert_eq!(q.len(), 1);
        let rest = q.drain_due(Minute(100));
        assert_eq!(rest[0].fan, UserId(1));
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_fan_story_pairs_collapse() {
        let mut q = ExposureQueue::new();
        assert!(q.schedule(UserId(1), StoryId(0), Minute(10), Minute(5), false));
        assert!(!q.schedule(UserId(1), StoryId(0), Minute(20), Minute(6), false));
        assert!(q.schedule(UserId(1), StoryId(1), Minute(20), Minute(6), false));
        assert_eq!(q.len(), 2);
        assert!(q.was_scheduled(UserId(1), StoryId(0)));
        assert!(!q.was_scheduled(UserId(2), StoryId(0)));
    }

    #[test]
    fn ties_drain_in_insertion_order() {
        let mut q = ExposureQueue::new();
        q.schedule(UserId(5), StoryId(0), Minute(4), Minute(0), false);
        q.schedule(UserId(6), StoryId(1), Minute(4), Minute(0), false);
        let due = q.drain_due(Minute(4));
        assert_eq!(due[0].fan, UserId(5));
        assert_eq!(due[1].fan, UserId(6));
    }

    #[test]
    fn nothing_due_before_time() {
        let mut q = ExposureQueue::new();
        q.schedule(UserId(1), StoryId(0), Minute(10), Minute(5), false);
        assert!(q.drain_due(Minute(9)).is_empty());
        assert_eq!(q.len(), 1);
    }
}
