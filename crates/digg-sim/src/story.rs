//! Stories, votes and story lifecycle.

use crate::time::Minute;
use digg_snapshot::{ByteReader, ByteWriter, Codec, SnapshotError};
use serde::{DeError, Deserialize, Serialize, Value};
use social_graph::UserId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a story, dense in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StoryId(pub u32);

impl StoryId {
    /// Dense index for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> StoryId {
        // digg-lint: allow(no-lib-unwrap) — the single checked index→id conversion point the cast rule routes callers to
        StoryId(u32::try_from(i).expect("story index exceeds u32 range"))
    }
}

impl fmt::Display for StoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// How a voter discovered the story. Ground truth for tests and
/// ablations; the scraper deliberately does *not* export it (the paper
/// had no such signal and inferred network spread from the fan graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoteChannel {
    /// Saw the story in the Friends interface (fan of a prior voter or
    /// of the submitter) — the paper's network-based spread.
    Friends,
    /// Browsing the front page.
    FrontPage,
    /// Browsing the upcoming queue.
    Upcoming,
    /// Independent discovery outside Digg ("Digg it" buttons, search)
    /// — the paper's interest-based seeds.
    External,
}

/// One vote. The submitter's implicit vote is stored like any other,
/// with channel [`VoteChannel::External`], as the first entry.
///
/// This is the *view* type: the sweep-facing storage is the
/// column-oriented [`VoteLog`], which assembles `Vote` values on
/// demand. `Vote` is `Copy`, so the materialisation is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vote {
    /// Who voted.
    pub user: UserId,
    /// When.
    pub at: Minute,
    /// Discovery channel (ground truth, not scraped).
    pub channel: VoteChannel,
}

/// Chronological vote storage, structure-of-arrays.
///
/// The analysis hot paths — promotion folds, sweep catch-ups, the
/// figure experiments — each touch exactly one attribute of every
/// vote: the voter ids, or the timestamps, or the channels. Storing
/// `Vec<Vote>` interleaved the three, so a voter-id scan dragged the
/// timestamps and channel tags through cache with it (24 bytes per
/// vote touched to read 4). The log keeps three parallel columns
/// instead; [`users`](VoteLog::users) / [`ats`](VoteLog::ats) /
/// [`channels`](VoteLog::channels) expose them as dense slices, and
/// [`iter`](VoteLog::iter) / [`get`](VoteLog::get) re-assemble
/// [`Vote`] values for callers that want rows.
///
/// Serialization (serde and [`Codec`]) is byte-identical to the old
/// `Vec<Vote>`: a sequence of `(user, at, channel)` rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VoteLog {
    users: Vec<UserId>,
    ats: Vec<Minute>,
    channels: Vec<VoteChannel>,
}

impl VoteLog {
    /// Empty log.
    pub fn new() -> VoteLog {
        VoteLog::default()
    }

    /// Number of votes.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no votes are recorded (never the case for a story,
    /// whose submitter votes implicitly).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Append a vote (no dedup — [`Story::add_vote`] owns that).
    pub fn push(&mut self, v: Vote) {
        self.users.push(v.user);
        self.ats.push(v.at);
        self.channels.push(v.channel);
    }

    /// The `k`-th vote as a row. Panics if out of range, like slice
    /// indexing.
    pub fn get(&self, k: usize) -> Vote {
        Vote {
            user: self.users[k],
            at: self.ats[k],
            channel: self.channels[k],
        }
    }

    /// Voter ids, chronological. The column the promotion fold and the
    /// in-network sweeps scan.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Vote timestamps, chronological (non-decreasing).
    pub fn ats(&self) -> &[Minute] {
        &self.ats
    }

    /// Discovery channels, chronological.
    pub fn channels(&self) -> &[VoteChannel] {
        &self.channels
    }

    /// Iterate votes as rows, chronological.
    pub fn iter(&self) -> VoteIter<'_> {
        VoteIter { log: self, k: 0 }
    }
}

/// Row iterator over a [`VoteLog`]; yields [`Vote`] by value.
pub struct VoteIter<'a> {
    log: &'a VoteLog,
    k: usize,
}

impl Iterator for VoteIter<'_> {
    type Item = Vote;

    fn next(&mut self) -> Option<Vote> {
        if self.k < self.log.len() {
            let v = self.log.get(self.k);
            self.k += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.log.len() - self.k;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VoteIter<'_> {}

impl<'a> IntoIterator for &'a VoteLog {
    type Item = Vote;
    type IntoIter = VoteIter<'a>;

    fn into_iter(self) -> VoteIter<'a> {
        self.iter()
    }
}

impl FromIterator<Vote> for VoteLog {
    fn from_iter<I: IntoIterator<Item = Vote>>(iter: I) -> VoteLog {
        let mut log = VoteLog::new();
        for v in iter {
            log.push(v);
        }
        log
    }
}

/// Rows, exactly as `Vec<Vote>` serialized.
impl Serialize for VoteLog {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl Deserialize for VoteLog {
    fn from_value(value: &Value) -> Result<VoteLog, DeError> {
        Ok(Vec::<Vote>::from_value(value)?.into_iter().collect())
    }
}

/// Story lifecycle. Mirrors Digg's: submissions enter the upcoming
/// queue; within 24 hours they are either promoted to the front page
/// or removed from the queue (but remain reachable from outside).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoryStatus {
    /// In the upcoming queue.
    Upcoming,
    /// On the front page; the payload is the promotion time.
    FrontPage(Minute),
    /// Fell off the upcoming queue unpromoted.
    Expired(Minute),
}

/// A story and its complete voting record.
#[derive(Debug, Clone, Serialize)]
pub struct Story {
    /// Identifier (submission order).
    pub id: StoryId,
    /// Submitting user.
    pub submitter: UserId,
    /// Submission time.
    pub submitted_at: Minute,
    /// Latent appeal to the general Digg audience, in `(0, 1)`. Drives
    /// interest-based voting. Hidden from the scraper.
    pub quality: f64,
    /// Votes in chronological order, column-oriented; the first vote
    /// is the submitter's.
    pub votes: VoteLog,
    /// Lifecycle state.
    pub status: StoryStatus,
    /// Voter -> position of their vote in `votes`. Lookup-only (never
    /// iterated), so the unordered map cannot leak nondeterminism;
    /// serde skips it like the voter set it replaced, keeping the
    /// serialized bytes unchanged.
    #[serde(skip)]
    voter_pos: HashMap<UserId, usize>,
}

impl Story {
    /// Create a story; records the submitter's own implicit first vote.
    pub fn new(id: StoryId, submitter: UserId, at: Minute, quality: f64) -> Story {
        let mut voter_pos = HashMap::new();
        voter_pos.insert(submitter, 0);
        Story {
            id,
            submitter,
            submitted_at: at,
            quality,
            votes: VoteLog::from_iter([Vote {
                user: submitter,
                at,
                channel: VoteChannel::External,
            }]),
            status: StoryStatus::Upcoming,
            voter_pos,
        }
    }

    /// Total votes (including the submitter's).
    pub fn vote_count(&self) -> usize {
        self.votes.len()
    }

    /// Has `user` already voted?
    pub fn has_voted(&self, user: UserId) -> bool {
        self.voter_pos.contains_key(&user)
    }

    /// Had `user` voted within the first `k` votes? Position-aware,
    /// so incremental folds stay exact even while catching up on a
    /// story that has since grown past `k`.
    pub fn voted_before(&self, user: UserId, k: usize) -> bool {
        self.voter_pos.get(&user).is_some_and(|&p| p < k)
    }

    /// Position of `user`'s vote in the chronological list (0 = the
    /// submitter's implicit vote), if they voted.
    pub fn vote_position(&self, user: UserId) -> Option<usize> {
        self.voter_pos.get(&user).copied()
    }

    /// Record a vote. Returns `false` (and records nothing) if the
    /// user already voted.
    pub fn add_vote(&mut self, user: UserId, at: Minute, channel: VoteChannel) -> bool {
        match self.voter_pos.entry(user) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(self.votes.len());
                self.votes.push(Vote { user, at, channel });
                true
            }
        }
    }

    /// Story age at `now` in minutes.
    pub fn age_at(&self, now: Minute) -> u64 {
        now.since(self.submitted_at)
    }

    /// Is the story currently in the upcoming queue?
    pub fn is_upcoming(&self) -> bool {
        matches!(self.status, StoryStatus::Upcoming)
    }

    /// Is the story on the front page?
    pub fn is_front_page(&self) -> bool {
        matches!(self.status, StoryStatus::FrontPage(_))
    }

    /// Promotion time, if promoted.
    pub fn promoted_at(&self) -> Option<Minute> {
        match self.status {
            StoryStatus::FrontPage(t) => Some(t),
            _ => None,
        }
    }

    /// Voters in chronological order (the scraped artifact: names in
    /// vote order, submitter first, no timestamps).
    pub fn voters_chronological(&self) -> Vec<UserId> {
        self.votes.users().to_vec()
    }

    /// Number of votes arriving through each channel; order:
    /// `(friends, front_page, upcoming, external)`.
    pub fn channel_breakdown(&self) -> (usize, usize, usize, usize) {
        let mut f = 0;
        let mut p = 0;
        let mut u = 0;
        let mut e = 0;
        for channel in self.votes.channels() {
            match channel {
                VoteChannel::Friends => f += 1,
                VoteChannel::FrontPage => p += 1,
                VoteChannel::Upcoming => u += 1,
                VoteChannel::External => e += 1,
            }
        }
        (f, p, u, e)
    }

    /// Rebuild the internal voter index from the vote list.
    /// [`Deserialize`] and [`Codec::decode`] call this eagerly, so a
    /// freshly decoded story answers `has_voted`/`voted_before`
    /// correctly without any caller action. Idempotent; first vote
    /// wins should a hand-built vote list contain duplicates.
    pub fn rebuild_index(&mut self) {
        self.voter_pos.clear();
        for (k, &user) in self.votes.users().iter().enumerate() {
            self.voter_pos.entry(user).or_insert(k);
        }
    }
}

/// Manual impl (the derive would leave the skipped `voter_pos` empty):
/// decode the serialized fields, then rebuild the voter index eagerly.
/// Before this, a deserialized `Story` silently answered
/// `has_voted == false` for everyone until someone remembered to call
/// [`Story::rebuild_index`].
impl Deserialize for Story {
    fn from_value(value: &Value) -> Result<Story, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Story", value))?;
        let mut story = Story {
            id: serde::from_field(entries, "id", "Story")?,
            submitter: serde::from_field(entries, "submitter", "Story")?,
            submitted_at: serde::from_field(entries, "submitted_at", "Story")?,
            quality: serde::from_field(entries, "quality", "Story")?,
            votes: serde::from_field(entries, "votes", "Story")?,
            status: serde::from_field(entries, "status", "Story")?,
            voter_pos: HashMap::new(),
        };
        story.rebuild_index();
        Ok(story)
    }
}

impl Codec for VoteChannel {
    fn encode(&self, out: &mut ByteWriter) {
        out.put_u8(match self {
            VoteChannel::Friends => 0,
            VoteChannel::FrontPage => 1,
            VoteChannel::Upcoming => 2,
            VoteChannel::External => 3,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<VoteChannel, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(VoteChannel::Friends),
            1 => Ok(VoteChannel::FrontPage),
            2 => Ok(VoteChannel::Upcoming),
            3 => Ok(VoteChannel::External),
            t => Err(SnapshotError::Malformed(format!("vote channel tag {t}"))),
        }
    }
}

/// Binary story encoding for checkpoints. `voter_pos` is rebuilt on
/// decode (it is a pure function of `votes`), so the bytes stay
/// order-stable and a decoded story is immediately queryable.
impl Codec for Story {
    fn encode(&self, out: &mut ByteWriter) {
        out.put_u32(self.id.0);
        out.put_u32(self.submitter.0);
        out.put_u64(self.submitted_at.0);
        out.put_f64(self.quality);
        match self.status {
            StoryStatus::Upcoming => out.put_u8(0),
            StoryStatus::FrontPage(t) => {
                out.put_u8(1);
                out.put_u64(t.0);
            }
            StoryStatus::Expired(t) => {
                out.put_u8(2);
                out.put_u64(t.0);
            }
        }
        out.put_usize(self.votes.len());
        for v in self.votes.iter() {
            out.put_u32(v.user.0);
            out.put_u64(v.at.0);
            v.channel.encode(out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Story, SnapshotError> {
        let id = StoryId(r.get_u32()?);
        let submitter = UserId(r.get_u32()?);
        let submitted_at = Minute(r.get_u64()?);
        let quality = r.get_f64()?;
        let status = match r.get_u8()? {
            0 => StoryStatus::Upcoming,
            1 => StoryStatus::FrontPage(Minute(r.get_u64()?)),
            2 => StoryStatus::Expired(Minute(r.get_u64()?)),
            t => return Err(SnapshotError::Malformed(format!("story status tag {t}"))),
        };
        let n = r.get_usize()?;
        let mut votes = VoteLog::new();
        for _ in 0..n {
            let user = UserId(r.get_u32()?);
            let at = Minute(r.get_u64()?);
            let channel = VoteChannel::decode(r)?;
            votes.push(Vote { user, at, channel });
        }
        let mut story = Story {
            id,
            submitter,
            submitted_at,
            quality,
            votes,
            status,
            voter_pos: HashMap::new(),
        };
        story.rebuild_index();
        Ok(story)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn story() -> Story {
        Story::new(StoryId(0), UserId(7), Minute(100), 0.5)
    }

    #[test]
    fn submitter_vote_is_implicit() {
        let s = story();
        assert_eq!(s.vote_count(), 1);
        assert!(s.has_voted(UserId(7)));
        assert_eq!(s.votes.get(0).user, UserId(7));
        assert_eq!(s.votes.get(0).at, Minute(100));
    }

    #[test]
    fn double_votes_rejected() {
        let mut s = story();
        assert!(s.add_vote(UserId(1), Minute(101), VoteChannel::Friends));
        assert!(!s.add_vote(UserId(1), Minute(102), VoteChannel::FrontPage));
        assert!(!s.add_vote(UserId(7), Minute(102), VoteChannel::External));
        assert_eq!(s.vote_count(), 2);
    }

    #[test]
    fn votes_stay_chronological() {
        let mut s = story();
        s.add_vote(UserId(1), Minute(105), VoteChannel::Upcoming);
        s.add_vote(UserId(2), Minute(110), VoteChannel::Friends);
        let order = s.voters_chronological();
        assert_eq!(order, vec![UserId(7), UserId(1), UserId(2)]);
    }

    #[test]
    fn lifecycle_predicates() {
        let mut s = story();
        assert!(s.is_upcoming());
        assert!(!s.is_front_page());
        assert_eq!(s.promoted_at(), None);
        s.status = StoryStatus::FrontPage(Minute(200));
        assert!(s.is_front_page());
        assert_eq!(s.promoted_at(), Some(Minute(200)));
    }

    #[test]
    fn age_and_channels() {
        let mut s = story();
        assert_eq!(s.age_at(Minute(160)), 60);
        assert_eq!(s.age_at(Minute(50)), 0);
        s.add_vote(UserId(1), Minute(101), VoteChannel::Friends);
        s.add_vote(UserId(2), Minute(101), VoteChannel::FrontPage);
        s.add_vote(UserId(3), Minute(101), VoteChannel::Upcoming);
        let (f, p, u, e) = s.channel_breakdown();
        assert_eq!((f, p, u, e), (1, 1, 1, 1));
    }

    #[test]
    fn vote_positions_are_chronological() {
        let mut s = story();
        s.add_vote(UserId(1), Minute(105), VoteChannel::Upcoming);
        s.add_vote(UserId(2), Minute(110), VoteChannel::Friends);
        assert_eq!(s.vote_position(UserId(7)), Some(0));
        assert_eq!(s.vote_position(UserId(1)), Some(1));
        assert_eq!(s.vote_position(UserId(2)), Some(2));
        assert_eq!(s.vote_position(UserId(9)), None);
        // voted_before is a strict prefix test.
        assert!(s.voted_before(UserId(1), 2));
        assert!(!s.voted_before(UserId(1), 1));
        assert!(!s.voted_before(UserId(2), 2));
        assert!(s.voted_before(UserId(7), 1));
        assert!(!s.voted_before(UserId(9), 99));
    }

    #[test]
    fn deserialization_rebuilds_the_voter_index_eagerly() {
        let mut s = story();
        s.add_vote(UserId(1), Minute(101), VoteChannel::Friends);
        let json = serde_json::to_string(&s).unwrap();
        let mut s2: Story = serde_json::from_str(&json).unwrap();
        // No rebuild_index() call: the index must already be live, or
        // the dedup silently admits duplicate votes.
        assert!(s2.has_voted(UserId(1)));
        assert!(s2.has_voted(UserId(7)));
        assert_eq!(s2.vote_position(UserId(1)), Some(1));
        assert!(s2.voted_before(UserId(7), 1));
        assert!(!s2.add_vote(UserId(1), Minute(200), VoteChannel::External));
        assert_eq!(s2.vote_count(), s.vote_count());
    }

    #[test]
    fn codec_round_trip_preserves_everything_queryable() {
        let mut s = story();
        s.add_vote(UserId(1), Minute(105), VoteChannel::Upcoming);
        s.add_vote(UserId(2), Minute(110), VoteChannel::Friends);
        s.status = StoryStatus::FrontPage(Minute(120));
        let mut w = ByteWriter::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let s2 = Story::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(s2.id, s.id);
        assert_eq!(s2.votes, s.votes);
        assert_eq!(s2.status, s.status);
        assert_eq!(s2.quality.to_bits(), s.quality.to_bits());
        // The voter index is live on the decoded copy too.
        assert!(s2.has_voted(UserId(2)));
        assert_eq!(s2.vote_position(UserId(1)), Some(1));
        // A truncated story decodes to a typed error, not a panic.
        for cut in 0..bytes.len() {
            assert!(Story::decode(&mut ByteReader::new(&bytes[..cut])).is_err());
        }
    }
}
