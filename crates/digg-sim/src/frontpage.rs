//! The front page.
//!
//! Promoted stories are listed newest-promotion first, 15 to a page.
//! Unlike the upcoming queue, front-page stories do not expire — they
//! simply sink to deeper pages as newer promotions arrive, which is
//! how attention (and hence vote rate) decays with age in addition to
//! novelty decay.

use crate::story::StoryId;
use crate::time::Minute;

/// Reverse-promotion-order listing of promoted stories.
#[derive(Debug, Clone, Default)]
pub struct FrontPage {
    /// Newest promotion first.
    entries: Vec<(StoryId, Minute)>,
    page_size: usize,
}

impl FrontPage {
    /// Create a front page with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize) -> FrontPage {
        assert!(page_size > 0, "page size must be positive");
        FrontPage {
            entries: Vec::new(),
            page_size,
        }
    }

    /// Record a promotion (must be the newest so far).
    pub fn promote(&mut self, id: StoryId, at: Minute) {
        debug_assert!(
            self.entries.first().map(|&(_, t)| t <= at).unwrap_or(true),
            "promotions must arrive in time order"
        );
        self.entries.insert(0, (id, at));
    }

    /// Total promoted stories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been promoted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stories on page `p` (0-based), newest first.
    pub fn page(&self, p: usize) -> Vec<StoryId> {
        self.entries
            .iter()
            .skip(p * self.page_size)
            .take(self.page_size)
            .map(|&(id, _)| id)
            .collect()
    }

    /// Number of (possibly partial) pages.
    pub fn page_count(&self) -> usize {
        self.entries.len().div_ceil(self.page_size)
    }

    /// The most recently promoted `k` stories (the scraper's "roughly
    /// 200 of the most recently promoted stories").
    pub fn most_recent(&self, k: usize) -> Vec<StoryId> {
        self.entries.iter().take(k).map(|&(id, _)| id).collect()
    }

    /// All promoted stories with promotion times, newest first.
    pub fn all(&self) -> &[(StoryId, Minute)] {
        &self.entries
    }

    /// Snapshot support: rebuild a front page from captured entries
    /// (newest promotion first); `page_size` comes from the restored
    /// configuration rather than the snapshot.
    pub(crate) fn from_snapshot(page_size: usize, entries: Vec<(StoryId, Minute)>) -> FrontPage {
        let mut fp = FrontPage::new(page_size);
        fp.entries = entries;
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_order() {
        let mut fp = FrontPage::new(2);
        fp.promote(StoryId(4), Minute(10));
        fp.promote(StoryId(9), Minute(20));
        fp.promote(StoryId(2), Minute(30));
        assert_eq!(fp.page(0), vec![StoryId(2), StoryId(9)]);
        assert_eq!(fp.page(1), vec![StoryId(4)]);
        assert_eq!(fp.page_count(), 2);
        assert_eq!(fp.len(), 3);
        assert!(!fp.is_empty());
    }

    #[test]
    fn most_recent_truncates() {
        let mut fp = FrontPage::new(15);
        for i in 0..5 {
            fp.promote(StoryId(i), Minute(i as u64));
        }
        assert_eq!(fp.most_recent(2), vec![StoryId(4), StoryId(3)]);
        assert_eq!(fp.most_recent(100).len(), 5);
    }

    #[test]
    fn empty_page_is_empty() {
        let fp = FrontPage::new(15);
        assert!(fp.page(0).is_empty());
        assert_eq!(fp.page_count(), 0);
    }
}
