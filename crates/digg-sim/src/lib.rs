//! # digg-sim
//!
//! A discrete-time simulator of the Digg social news platform as it
//! operated in June 2006, built as the data substrate for reproducing
//! Lerman & Galstyan, *Analysis of Social Voting Patterns on Digg*
//! (WOSN'08).
//!
//! The original study consumed a proprietary scrape of digg.com; the
//! site in that form no longer exists. This crate substitutes a
//! mechanistic simulation of everything the paper describes about the
//! platform (§3, "Digg's functionality"):
//!
//! * users submit 1–2 stories per minute into an **upcoming queue**
//!   displayed in reverse chronological order, 15 to the page;
//! * a **promotion algorithm** (details secret; observed boundary: no
//!   front-page story with fewer than 43 votes, no queue story with
//!   more than 42) moves stories to the **front page** within 24 hours
//!   of submission;
//! * users vary enormously in activity; **top users** submit and vote
//!   disproportionately and have larger social networks;
//! * the **Friends interface** shows users the stories their friends
//!   submitted or dugg in the preceding 48 hours — the social channel
//!   through which interest spreads;
//! * stories are also discovered *independently* of the network: by
//!   browsing the front page and upcoming queue, and through external
//!   "Digg it" buttons on news sites and blogs.
//!
//! The last two bullets realise the paper's two proposed spread
//! mechanisms (§5.1): *network-based* spread through fans, and
//! *interest-based* spread from independent seeds. The anticorrelation
//! between early in-network votes and final popularity — the paper's
//! central finding — **emerges** from this machinery rather than being
//! painted onto generated data: well-connected submitters can push a
//! mediocre story past the promotion threshold through their fans
//! alone, but the story then stalls in front of the general audience,
//! while a story by a poorly connected submitter only survives the
//! queue if its intrinsic appeal recruits independent voters.
//!
//! Module map:
//!
//! * [`time`] — simulation clock (minutes).
//! * [`config`] — every behavioural rate, in one documented struct.
//! * [`story`] — stories, votes, vote channels, story lifecycle.
//! * [`population`] — users, activity levels, and the fan graph.
//! * [`queue`] / [`frontpage`] — the two story listings.
//! * [`promotion`] — promotion algorithms (threshold and the
//!   Sept-2006 "digging diversity" variant).
//! * [`feeds`] — the Friends-interface exposure process (used by the
//!   tick-loop baseline).
//! * [`decay`] — novelty decay and page-position attention.
//! * [`engine`] — the event-driven simulation engine on the
//!   `des-core` kernel ([`Kernel::Compat`] replays the seed tick loop
//!   draw-for-draw; [`Kernel::EventStreams`] skips idle minutes with
//!   per-entity RNG streams).
//! * [`baseline`] — the seed per-minute tick loop, kept verbatim as
//!   the equivalence baseline for [`engine`].
//! * [`sweep`] — the parallel scenario-sweep runner (deterministic
//!   `(config, seed)` fan-out over `des-core::par_map`).
//! * [`metrics`] — counters for calibration and tests.
//! * [`scenario`] — the calibrated June-2006 configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod decay;
pub mod engine;
pub mod feeds;
pub mod frontpage;
pub mod metrics;
pub mod population;
pub mod promotion;
pub mod queue;
pub mod scenario;
pub mod story;
pub mod supervisor;
pub mod sweep;
pub mod time;

pub use config::SimConfig;
pub use engine::{Kernel, Sim};
pub use population::Population;
pub use story::{Story, StoryId, Vote, VoteChannel, VoteLog};
pub use time::Minute;
