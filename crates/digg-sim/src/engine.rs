//! The event-driven simulation engine.
//!
//! The simulator runs on the `des-core` kernel: a single
//! [`EventQueue`] ordered by `(minute, class, seq)` where `class`
//! encodes the intra-minute phase order the platform model fixes:
//!
//! 1. queue expiry (per-story events — no per-minute rescans);
//! 2. new submissions (Poisson arrivals; submitter drawn by
//!    submission propensity);
//! 3. due Friends-interface exposures → possible social votes;
//! 4. front-page browsing sessions → possible interest votes;
//! 5. upcoming-queue browsing sessions → possible interest votes;
//! 6. external discovery → independent seed votes.
//!
//! Every vote immediately (a) schedules exposures for the voter's fans
//! and (b) re-evaluates the promotion rule if the story is still in
//! the queue — so, exactly as on Digg, no queue story can be observed
//! with more votes than the promotion boundary.
//!
//! Two kernels drive the same handlers (see [`Kernel`]):
//!
//! - [`Kernel::Compat`] (the default) replays the seed tick loop
//!   draw-for-draw: per-minute heartbeat events batch each phase's
//!   Poisson arrivals, and all randomness comes from one `StdRng` in
//!   the tick loop's exact call order. Results are byte-identical to
//!   [`crate::baseline::TickSim`] whenever `feed_lifetime >= 1` (which
//!   every shipped scenario satisfies; at `feed_lifetime == 0` the
//!   tick loop delays same-minute exposures to the next drain while
//!   the kernel fires them immediately).
//! - [`Kernel::EventStreams`] is the fast path: arrivals become
//!   exponential-gap events, idle minutes cost nothing, and every draw
//!   comes from a per-entity counter-based [`StreamRng`], so the
//!   sequence an entity consumes is independent of how events
//!   interleave. Same model, same distributions, different (still
//!   fully deterministic) sample path.

use crate::config::{PromoterKind, SimConfig};
use crate::decay::{novelty, sample_pages_viewed};
use crate::frontpage::FrontPage;
use crate::metrics::SimMetrics;
use crate::population::Population;
use crate::promotion::{self, Promoter, PromoterState};
use crate::queue::UpcomingQueue;
use crate::story::{Story, StoryId, StoryStatus, VoteChannel};
use crate::time::Minute;
use des_core::{EventQueue, StreamRng};
use digg_snapshot::{
    ByteReader, ByteWriter, Codec, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use digg_stats::distributions::{coin, exponential, poisson, LogNormal};
use digg_stats::sampling::AliasTable;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use social_graph::UserId;
use std::collections::HashSet;

// Event classes: the fixed intra-minute phase order (see module docs).
const CLASS_EXPIRY: u8 = 0;
const CLASS_SUBMIT: u8 = 1;
const CLASS_EXPOSE: u8 = 2;
const CLASS_FRONT: u8 = 3;
const CLASS_UPCOMING: u8 = 4;
const CLASS_EXTERNAL: u8 = 5;

// Stream-key salts (EventStreams kernel). Each logical entity draws
// from `root.derive(SALT).derive(entity id…)`.
const SALT_SUB_GAP: u64 = 1;
const SALT_STORY_BODY: u64 = 2;
const SALT_FRONT_GAP: u64 = 3;
const SALT_FRONT_SESSION: u64 = 4;
const SALT_UP_GAP: u64 = 5;
const SALT_UP_SESSION: u64 = 6;
const SALT_EXTERNAL: u64 = 7;
const SALT_EXPOSE_SCHED: u64 = 8;
const SALT_EXPOSE_FIRE: u64 = 9;

/// Which driver produces the randomness and arrival structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Kernel {
    /// Tick-loop replay: one `StdRng` consumed in the seed loop's call
    /// order through per-minute heartbeat events. Byte-identical to
    /// the [`crate::baseline::TickSim`] sample path.
    #[default]
    Compat,
    /// Pure event scheduling with per-entity [`StreamRng`] streams:
    /// idle minutes are skipped entirely, arrivals are exponential
    /// gaps. Deterministic per seed, but a different sample path than
    /// the tick loop.
    EventStreams,
}

/// Event payloads routed through the kernel queue.
enum Ev {
    /// A story reaches the end of its queue lifetime.
    Expiry(StoryId),
    /// Compat: this minute's Poisson batch of submissions.
    SubmitBatch,
    /// Compat: this minute's front-page browsing sessions.
    FrontBatch,
    /// Compat: this minute's upcoming browsing sessions.
    UpcomingBatch,
    /// Compat: this minute's external-discovery scan.
    ExternalBatch,
    /// EventStreams: one submission arrives.
    Submit,
    /// EventStreams: one front-page browsing session.
    FrontSession,
    /// EventStreams: one upcoming browsing session.
    UpSession,
    /// EventStreams: one external reader discovers `story`. The
    /// story's arrival-process stream and continuous clock ride in the
    /// payload.
    ExternalArrival {
        story: StoryId,
        rng: StreamRng,
        tau: f64,
    },
    /// A fan's Friends-interface exposure to a story comes due.
    Exposure {
        fan: UserId,
        story: StoryId,
        triggered_at: Minute,
        from_submitter: bool,
    },
}

/// A running simulation.
///
/// # Examples
///
/// ```
/// use digg_sim::population::{Population, PopulationConfig};
/// use digg_sim::{Sim, SimConfig};
/// use rand::SeedableRng;
///
/// let cfg = SimConfig::toy(7);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
/// let mut sim = Sim::new(cfg, pop);
/// sim.run(120); // two simulated hours
/// assert_eq!(sim.now().0, 120);
/// assert_eq!(sim.metrics().submissions as usize, sim.stories().len());
/// ```
pub struct Sim {
    cfg: SimConfig,
    pop: Population,
    kernel: Kernel,
    now: Minute,
    stories: Vec<Story>,
    queue: UpcomingQueue,
    front: FrontPage,
    events: EventQueue<Ev>,
    /// `(fan, story)` pairs ever offered an exposure, to collapse
    /// duplicate entries from multiple friends (the interface shows a
    /// story once). Membership-only; the snapshot path sorts the pairs
    /// before encoding.
    // digg-lint: allow(no-unordered-serialize) — snapshot encodes the pairs as a sorted Vec, never in set-iteration order
    scheduled: HashSet<(UserId, StoryId)>,
    // digg-lint: allow(snapshot-coverage) — trait object; restore re-installs the promoter from the caller's config
    promoter: Box<dyn Promoter>,
    /// Per-story incremental promoter state, indexed like `stories`.
    /// Lets each promotion re-check fold only the votes it has not
    /// seen; the tick-loop baseline stays on the batch path, so the
    /// engine-vs-baseline equivalence tests hold the two against each
    /// other.
    promo_states: Vec<PromoterState>,
    // digg-lint: allow(snapshot-coverage) — derived from the population's activity weights, rebuilt on restore
    browse_table: AliasTable,
    // digg-lint: allow(snapshot-coverage) — derived from the population's activity weights, rebuilt on restore
    submit_table: AliasTable,
    metrics: SimMetrics,
    // digg-lint: allow(snapshot-coverage) — distribution parameters, reconstructed from SimConfig on restore
    niche_quality: LogNormal,
    /// Compat: the tick loop's single RNG.
    rng: StdRng,
    /// Compat: index of the oldest story still inside the
    /// external-discovery window.
    external_lo: usize,
    /// EventStreams: root of the stream-key tree.
    root: StreamRng,
    /// EventStreams: submission inter-arrival stream and continuous
    /// clock.
    sub_gap: StreamRng,
    sub_tau: f64,
    front_gap: StreamRng,
    front_tau: f64,
    front_sessions: u64,
    up_gap: StreamRng,
    up_tau: f64,
    up_sessions: u64,
    /// Events fired by *this instance* since construction or restore.
    /// Diagnostics only (checkpoint-overhead rates); deliberately not
    /// serialized — a restored sim starts its own count at zero.
    // digg-lint: allow(snapshot-coverage) — diagnostics counter, deliberately restarts at zero after restore
    events_fired: u64,
}

impl Sim {
    /// Create a simulation over an existing population, on the default
    /// [`Kernel::Compat`] driver.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the population size
    /// disagrees with `cfg.users`.
    pub fn new(cfg: SimConfig, pop: Population) -> Sim {
        Sim::with_kernel(cfg, pop, Kernel::default())
    }

    /// Create a simulation on an explicit [`Kernel`].
    pub fn with_kernel(cfg: SimConfig, pop: Population, kernel: Kernel) -> Sim {
        if let Err(e) = cfg.validate() {
            // digg-lint: allow(no-lib-unwrap) — documented constructor contract ("# Panics"): invalid config is a caller bug
            panic!("invalid SimConfig: {e}");
        }
        assert_eq!(
            cfg.users,
            pop.len(),
            "config.users must match population size"
        );
        let browse_table =
            // digg-lint: allow(no-lib-unwrap) — Population::validate (checked above via cfg) guarantees positive weights
            AliasTable::new(&pop.browse_weight).expect("population browse weights are positive");
        let submit_table =
            // digg-lint: allow(no-lib-unwrap) — Population::validate (checked above via cfg) guarantees positive weights
            AliasTable::new(&pop.submit_weight).expect("submission weights are positive");
        let rng = StdRng::seed_from_u64(cfg.seed);
        let promoter = promotion::from_kind(cfg.promoter);
        let niche_quality = LogNormal::new(cfg.niche_quality_mu, cfg.niche_quality_sigma);
        let root = StreamRng::root(cfg.seed);
        let mut sim = Sim {
            queue: UpcomingQueue::new(cfg.page_size, cfg.queue_lifetime),
            front: FrontPage::new(cfg.page_size),
            events: EventQueue::new(),
            scheduled: HashSet::new(),
            stories: Vec::new(),
            promo_states: Vec::new(),
            now: Minute::ZERO,
            metrics: SimMetrics::default(),
            browse_table,
            submit_table,
            promoter,
            niche_quality,
            rng,
            external_lo: 0,
            root,
            sub_gap: root.derive(SALT_SUB_GAP),
            sub_tau: 0.0,
            front_gap: root.derive(SALT_FRONT_GAP),
            front_tau: 0.0,
            front_sessions: 0,
            up_gap: root.derive(SALT_UP_GAP),
            up_tau: 0.0,
            up_sessions: 0,
            events_fired: 0,
            kernel,
            cfg,
            pop,
        };
        match sim.kernel {
            Kernel::Compat => {
                // One heartbeat per phase; each reschedules itself for
                // the next minute, replaying the tick loop.
                sim.events.schedule(1, CLASS_SUBMIT, Ev::SubmitBatch);
                sim.events.schedule(1, CLASS_FRONT, Ev::FrontBatch);
                sim.events.schedule(1, CLASS_UPCOMING, Ev::UpcomingBatch);
                sim.events.schedule(1, CLASS_EXTERNAL, Ev::ExternalBatch);
            }
            Kernel::EventStreams => {
                sim.schedule_next_submission();
                sim.schedule_next_front_session();
                sim.schedule_next_up_session();
            }
        }
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> Minute {
        self.now
    }

    /// The kernel driving this simulation.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// All stories, in submission order.
    pub fn stories(&self) -> &[Story] {
        &self.stories
    }

    /// One story.
    pub fn story(&self, id: StoryId) -> &Story {
        &self.stories[id.index()]
    }

    /// The population being simulated.
    pub fn population(&self) -> &Population {
        &self.pop
    }

    /// The front page.
    pub fn front_page(&self) -> &FrontPage {
        &self.front
    }

    /// The upcoming queue.
    pub fn upcoming_queue(&self) -> &UpcomingQueue {
        &self.queue
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Events fired by this instance since construction or restore —
    /// a diagnostics counter for throughput rates, not simulation
    /// state (it is not serialized into snapshots).
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Advance the simulation by `minutes`: drain every event due in
    /// the window, then land on the horizon. Minutes with no events
    /// cost nothing.
    pub fn run(&mut self, minutes: u64) {
        self.run_budgeted(self.now + minutes, u64::MAX);
    }

    /// Advance toward `horizon`, firing at most `max_events` events.
    /// Returns `true` once no events remain inside the window (the
    /// clock then lands exactly on the horizon, as [`Sim::run`] does);
    /// `false` means the budget ran out mid-drain — the natural moment
    /// to [`Snapshot`] the sim and call `run_budgeted` again with the
    /// same horizon. Interleaving snapshots (or a restore on another
    /// process) between budget slices changes nothing: the final state
    /// is bit-identical to one uninterrupted [`Sim::run`].
    pub fn run_budgeted(&mut self, horizon: Minute, max_events: u64) -> bool {
        // A horizon in the past is a no-op landing at `now`: the clock
        // never moves backward.
        let horizon = Minute(horizon.0.max(self.now.0));
        let mut fired = 0u64;
        while fired < max_events {
            let Some(t) = self.events.peek_time() else {
                break;
            };
            if t > horizon.0 {
                break;
            }
            // digg-lint: allow(no-lib-unwrap) — queue invariant: peek_time just returned Some and nothing popped in between
            let e = self.events.pop().expect("peeked event vanished");
            // The clock only moves forward; events never fire early.
            self.now = Minute(e.time.max(self.now.0));
            self.handle(e.payload);
            fired += 1;
            self.events_fired += 1;
        }
        let done = match self.events.peek_time() {
            Some(t) => t > horizon.0,
            None => true,
        };
        if done {
            // At every rest point `metrics.minutes == now.0` (both
            // start at zero and only run()'s horizon landing moves
            // them), so assigning the horizon here is exactly the
            // `+= minutes` a one-shot run() performs.
            self.now = horizon;
            self.metrics.minutes = horizon.0;
        }
        done
    }

    /// Advance one minute.
    pub fn step(&mut self) {
        self.run(1);
    }

    // ---------------------------------------------------------- dispatch

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Expiry(id) => self.on_expiry(id),
            Ev::SubmitBatch => {
                self.compat_submissions();
                self.events
                    .schedule(self.now.0 + 1, CLASS_SUBMIT, Ev::SubmitBatch);
            }
            Ev::FrontBatch => {
                self.compat_frontpage_browsing();
                self.events
                    .schedule(self.now.0 + 1, CLASS_FRONT, Ev::FrontBatch);
            }
            Ev::UpcomingBatch => {
                self.compat_upcoming_browsing();
                self.events
                    .schedule(self.now.0 + 1, CLASS_UPCOMING, Ev::UpcomingBatch);
            }
            Ev::ExternalBatch => {
                self.compat_external();
                self.events
                    .schedule(self.now.0 + 1, CLASS_EXTERNAL, Ev::ExternalBatch);
            }
            Ev::Submit => self.on_submit(),
            Ev::FrontSession => {
                let k = self.front_sessions;
                self.front_sessions += 1;
                let mut body = self.root.derive(SALT_FRONT_SESSION).derive(k);
                self.browse_frontpage(&mut body);
                self.schedule_next_front_session();
            }
            Ev::UpSession => {
                let k = self.up_sessions;
                self.up_sessions += 1;
                let mut body = self.root.derive(SALT_UP_SESSION).derive(k);
                self.browse_upcoming(&mut body);
                self.schedule_next_up_session();
            }
            Ev::ExternalArrival { story, rng, tau } => self.on_external_arrival(story, rng, tau),
            Ev::Exposure {
                fan,
                story,
                triggered_at,
                from_submitter,
            } => self.on_exposure(fan, story, triggered_at, from_submitter),
        }
    }

    // ------------------------------------------------------------ expiry

    /// Fires at `submitted_at + queue_lifetime + 1` — the first minute
    /// the tick loop's strict `age > lifetime` test would have evicted
    /// the story.
    fn on_expiry(&mut self, id: StoryId) {
        let story = &mut self.stories[id.index()];
        if story.is_upcoming() {
            story.status = StoryStatus::Expired(self.now);
            self.metrics.expirations += 1;
            self.queue.remove(id);
        }
    }

    // ------------------------------------------------------- submissions

    /// Shared submission bookkeeping once submitter and quality are
    /// drawn: create the story, enqueue it, plant its expiry event,
    /// expose the submitter's fans.
    fn admit_story(&mut self, submitter: UserId, quality: f64) {
        let id = StoryId::from_index(self.stories.len());
        let story = Story::new(id, submitter, self.now, quality);
        self.stories.push(story);
        self.promo_states.push(self.promoter.new_state());
        self.queue.push(id, self.now);
        self.metrics.submissions += 1;
        self.events.schedule(
            self.now.0 + self.cfg.queue_lifetime + 1,
            CLASS_EXPIRY,
            Ev::Expiry(id),
        );
        // "See the stories your friends submitted": expose the
        // submitter's fans.
        self.schedule_fan_exposures(submitter, id, true);
        if self.kernel == Kernel::EventStreams {
            let srng = self.root.derive(SALT_EXTERNAL).derive(id.index() as u64);
            let tau = self.now.0 as f64 - 1.0;
            self.schedule_external_arrival(id, srng, tau);
        }
    }

    fn compat_submissions(&mut self) {
        let n = poisson(&mut self.rng, self.cfg.submissions_per_minute);
        for _ in 0..n {
            let submitter = UserId::from_index(self.submit_table.sample(&mut self.rng));
            let quality = {
                let activity = self.pop.activity[submitter.index()];
                draw_quality(&mut self.rng, &self.cfg, &self.niche_quality, activity)
            };
            self.admit_story(submitter, quality);
        }
    }

    fn on_submit(&mut self) {
        let mut body = self
            .root
            .derive(SALT_STORY_BODY)
            .derive(self.stories.len() as u64);
        let submitter = UserId::from_index(self.submit_table.sample(&mut body));
        let activity = self.pop.activity[submitter.index()];
        let quality = draw_quality(&mut body, &self.cfg, &self.niche_quality, activity);
        self.admit_story(submitter, quality);
        self.schedule_next_submission();
    }

    /// EventStreams: next submission from the exponential-gap arrival
    /// process; a continuous arrival at `tau` lands in minute
    /// `ceil(tau)` (the minute interval `(m-1, m]`), matching the tick
    /// loop's per-minute Poisson bucketing in distribution.
    fn schedule_next_submission(&mut self) {
        let rate = self.cfg.submissions_per_minute;
        if rate <= 0.0 {
            return;
        }
        self.sub_tau += exponential(&mut self.sub_gap, rate);
        let m = (self.sub_tau.ceil() as u64).max(1);
        self.events.schedule(m, CLASS_SUBMIT, Ev::Submit);
    }

    // --------------------------------------------------------- exposures

    fn on_exposure(
        &mut self,
        fan: UserId,
        story_id: StoryId,
        triggered_at: Minute,
        from_submitter: bool,
    ) {
        self.metrics.exposures_fired += 1;
        // Feed entries lapse 48h after the triggering activity.
        if self.now.since(triggered_at) > self.cfg.feed_lifetime {
            return;
        }
        let story = &self.stories[story_id.index()];
        if story.has_voted(fan) {
            return;
        }
        // Fans back their friends' own submissions loyally; for
        // stories a friend merely dugg, interest dominates.
        let p = if from_submitter {
            self.cfg.friend_vote_submitted
        } else {
            self.cfg.friend_vote_base + self.cfg.friend_vote_quality_slope * story.quality
        };
        let votes = match self.kernel {
            Kernel::Compat => coin(&mut self.rng, p),
            Kernel::EventStreams => {
                let mut s = self
                    .root
                    .derive(SALT_EXPOSE_FIRE)
                    .derive(story_id.index() as u64)
                    .derive(fan.index() as u64);
                coin(&mut s, p)
            }
        };
        if votes {
            self.cast_vote(story_id, fan, VoteChannel::Friends);
        }
    }

    // ---------------------------------------------------------- browsing

    // Compat browsing uses `self.rng` directly: the session draws and
    // the exposure draws nested under each cast_vote must interleave
    // on the one tick-loop RNG in the seed's exact call order.

    fn compat_frontpage_browsing(&mut self) {
        let sessions = poisson(&mut self.rng, self.cfg.frontpage_sessions_per_minute);
        for _ in 0..sessions {
            let user = UserId::from_index(self.browse_table.sample(&mut self.rng));
            let pages = sample_pages_viewed(&mut self.rng, self.cfg.page_stop_prob);
            for p in 0..pages.min(self.front.page_count()) {
                for id in self.front.page(p) {
                    let story = &self.stories[id.index()];
                    if story.has_voted(user) {
                        continue;
                    }
                    let age = match story.status {
                        StoryStatus::FrontPage(t) => self.now.since(t),
                        _ => continue,
                    };
                    let prob = self.cfg.frontpage_vote_prob
                        * story.quality
                        * novelty(age, self.cfg.novelty_tau);
                    if coin(&mut self.rng, prob) {
                        self.cast_vote(id, user, VoteChannel::FrontPage);
                    }
                }
            }
        }
    }

    fn compat_upcoming_browsing(&mut self) {
        let sessions = poisson(&mut self.rng, self.cfg.upcoming_sessions_per_minute);
        for _ in 0..sessions {
            let user = UserId::from_index(self.browse_table.sample(&mut self.rng));
            let pages = sample_pages_viewed(&mut self.rng, self.cfg.page_stop_prob);
            for p in 0..pages.min(self.queue.page_count()) {
                for id in self.queue.page(p) {
                    let story = &self.stories[id.index()];
                    if story.has_voted(user) || !story.is_upcoming() {
                        continue;
                    }
                    let prob = self.cfg.upcoming_vote_prob * story.quality;
                    if coin(&mut self.rng, prob) {
                        self.cast_vote(id, user, VoteChannel::Upcoming);
                    }
                }
            }
        }
    }

    /// One front-page browsing session (EventStreams), drawing the
    /// user, the page depth, and every vote coin from the session's
    /// own stream.
    fn browse_frontpage(&mut self, rng: &mut StreamRng) {
        let user = UserId::from_index(self.browse_table.sample(rng));
        let pages = sample_pages_viewed(rng, self.cfg.page_stop_prob);
        for p in 0..pages.min(self.front.page_count()) {
            for id in self.front.page(p) {
                let story = &self.stories[id.index()];
                if story.has_voted(user) {
                    continue;
                }
                let age = match story.status {
                    StoryStatus::FrontPage(t) => self.now.since(t),
                    _ => continue,
                };
                let prob = self.cfg.frontpage_vote_prob
                    * story.quality
                    * novelty(age, self.cfg.novelty_tau);
                if coin(rng, prob) {
                    self.cast_vote(id, user, VoteChannel::FrontPage);
                }
            }
        }
    }

    /// One upcoming-queue browsing session (EventStreams).
    fn browse_upcoming(&mut self, rng: &mut StreamRng) {
        let user = UserId::from_index(self.browse_table.sample(rng));
        let pages = sample_pages_viewed(rng, self.cfg.page_stop_prob);
        for p in 0..pages.min(self.queue.page_count()) {
            for id in self.queue.page(p) {
                let story = &self.stories[id.index()];
                if story.has_voted(user) || !story.is_upcoming() {
                    continue;
                }
                let prob = self.cfg.upcoming_vote_prob * story.quality;
                if coin(rng, prob) {
                    self.cast_vote(id, user, VoteChannel::Upcoming);
                }
            }
        }
    }

    fn schedule_next_front_session(&mut self) {
        let rate = self.cfg.frontpage_sessions_per_minute;
        if rate <= 0.0 {
            return;
        }
        self.front_tau += exponential(&mut self.front_gap, rate);
        let m = (self.front_tau.ceil() as u64).max(1);
        self.events.schedule(m, CLASS_FRONT, Ev::FrontSession);
    }

    fn schedule_next_up_session(&mut self) {
        let rate = self.cfg.upcoming_sessions_per_minute;
        if rate <= 0.0 {
            return;
        }
        self.up_tau += exponential(&mut self.up_gap, rate);
        let m = (self.up_tau.ceil() as u64).max(1);
        self.events.schedule(m, CLASS_UPCOMING, Ev::UpSession);
    }

    // ---------------------------------------------------------- external

    fn compat_external(&mut self) {
        // Advance the window start past stories that left the
        // external-discovery window.
        while self.external_lo < self.stories.len()
            && self.stories[self.external_lo].age_at(self.now) > self.cfg.external_window
        {
            self.external_lo += 1;
        }
        for idx in self.external_lo..self.stories.len() {
            let (quality, id) = {
                let s = &self.stories[idx];
                (s.quality, s.id)
            };
            let rate = self.cfg.external_rate * quality;
            let n = poisson(&mut self.rng, rate);
            for _ in 0..n {
                let user = UserId::from_index(self.browse_table.sample(&mut self.rng));
                if !self.stories[idx].has_voted(user) {
                    self.cast_vote(id, user, VoteChannel::External);
                }
            }
        }
    }

    /// EventStreams: one external reader arrives for `story` now.
    fn on_external_arrival(&mut self, story: StoryId, mut rng: StreamRng, tau: f64) {
        let user = UserId::from_index(self.browse_table.sample(&mut rng));
        if !self.stories[story.index()].has_voted(user) {
            self.cast_vote(story, user, VoteChannel::External);
        }
        self.schedule_external_arrival(story, rng, tau);
    }

    /// EventStreams: per-story external discovery as an exponential-gap
    /// arrival process at rate `external_rate * quality`, starting at
    /// the submission minute and dying when the story leaves the
    /// discovery window.
    fn schedule_external_arrival(&mut self, story: StoryId, mut rng: StreamRng, mut tau: f64) {
        let s = &self.stories[story.index()];
        let rate = self.cfg.external_rate * s.quality;
        if rate <= 0.0 {
            return;
        }
        let last = (s.submitted_at + self.cfg.external_window).0;
        tau += exponential(&mut rng, rate);
        let m = tau.ceil() as u64;
        if m > last {
            return;
        }
        self.events
            .schedule(m, CLASS_EXTERNAL, Ev::ExternalArrival { story, rng, tau });
    }

    // ------------------------------------------------------------ voting

    /// Record a vote, schedule the voter's fans' exposures, update
    /// channel metrics, and re-check promotion.
    fn cast_vote(&mut self, id: StoryId, user: UserId, channel: VoteChannel) {
        let added = self.stories[id.index()].add_vote(user, self.now, channel);
        if !added {
            return;
        }
        match channel {
            VoteChannel::Friends => self.metrics.votes_friends += 1,
            VoteChannel::FrontPage => self.metrics.votes_frontpage += 1,
            VoteChannel::Upcoming => self.metrics.votes_upcoming += 1,
            VoteChannel::External => self.metrics.votes_external += 1,
        }
        self.schedule_fan_exposures(user, id, false);
        self.maybe_promote(id);
    }

    /// Expose `actor`'s fans to `story` ("see the stories my friends
    /// dugg / submitted").
    fn schedule_fan_exposures(&mut self, actor: UserId, story: StoryId, from_submitter: bool) {
        // Collect the fan list first to appease the borrow checker;
        // fan lists are small.
        let fans: Vec<UserId> = self.pop.graph.fans(actor).to_vec();
        for fan in fans {
            if self.stories[story.index()].has_voted(fan) {
                continue;
            }
            if self.scheduled.contains(&(fan, story)) {
                continue;
            }
            // Exposure = (fan visits the site during the window) x
            // (fan notices this entry in their feed). The first factor
            // grows with activity; the second is diluted by how many
            // friends the fan watches — the Friends interface of a
            // user watching hundreds of people scrolls any single
            // story out of attention quickly. Together these keep
            // social cascades subcritical (refs [12, 23]: most
            // recommendation cascades terminate after a few steps).
            let a = self.pop.activity[fan.index()];
            let f = self.pop.graph.friend_count(fan).max(1) as f64;
            let visits = (a / self.cfg.attention_ref).min(1.0);
            // The submissions view is far less crowded than the diggs
            // view, so its congestion dilution is gentler.
            let dilution_exp = if from_submitter {
                self.cfg.submitted_dilution
            } else {
                self.cfg.feed_dilution
            };
            let dilution = f.powf(-dilution_exp);
            let p = (self.cfg.fan_exposure_prob * visits * dilution).min(1.0);
            let delay_mean = 1.0 / self.cfg.fan_exposure_delay_mean;
            // Each (story, fan) pair passes here at most once (the
            // `scheduled` dedup), so the per-pair stream below is
            // drawn at most once — its values depend only on the pair,
            // never on event interleaving.
            let scheduled_delay = match self.kernel {
                Kernel::Compat => {
                    if coin(&mut self.rng, p) {
                        Some(1.0 + exponential(&mut self.rng, delay_mean))
                    } else {
                        None
                    }
                }
                Kernel::EventStreams => {
                    let mut s = self
                        .root
                        .derive(SALT_EXPOSE_SCHED)
                        .derive(story.index() as u64)
                        .derive(fan.index() as u64);
                    if coin(&mut s, p) {
                        Some(1.0 + exponential(&mut s, delay_mean))
                    } else {
                        None
                    }
                }
            };
            // Consume the pair either way, so another friend's vote
            // doesn't grant a second chance; the interface shows a
            // story once.
            self.scheduled.insert((fan, story));
            if let Some(delay) = scheduled_delay {
                let delay = (delay as u64).min(self.cfg.feed_lifetime);
                self.events.schedule(
                    (self.now + delay).0,
                    CLASS_EXPOSE,
                    Ev::Exposure {
                        fan,
                        story,
                        triggered_at: self.now,
                        from_submitter,
                    },
                );
                self.metrics.exposures_scheduled += 1;
            }
        }
    }

    fn maybe_promote(&mut self, id: StoryId) {
        let story = &self.stories[id.index()];
        if !story.is_upcoming() || story.age_at(self.now) > self.cfg.queue_lifetime {
            return;
        }
        let state = &mut self.promo_states[id.index()];
        if self
            .promoter
            .should_promote_with(state, story, &self.pop.graph, self.now)
        {
            self.stories[id.index()].status = StoryStatus::FrontPage(self.now);
            self.queue.remove(id);
            self.front.promote(id, self.now);
            self.metrics.promotions += 1;
        }
    }
}

// ------------------------------------------------- checkpoint/replay

impl Codec for Ev {
    fn encode(&self, out: &mut ByteWriter) {
        match *self {
            Ev::Expiry(id) => {
                out.put_u8(0);
                out.put_u32(id.0);
            }
            Ev::SubmitBatch => out.put_u8(1),
            Ev::FrontBatch => out.put_u8(2),
            Ev::UpcomingBatch => out.put_u8(3),
            Ev::ExternalBatch => out.put_u8(4),
            Ev::Submit => out.put_u8(5),
            Ev::FrontSession => out.put_u8(6),
            Ev::UpSession => out.put_u8(7),
            Ev::ExternalArrival { story, rng, tau } => {
                out.put_u8(8);
                out.put_u32(story.0);
                rng.encode(out);
                out.put_f64(tau);
            }
            Ev::Exposure {
                fan,
                story,
                triggered_at,
                from_submitter,
            } => {
                out.put_u8(9);
                out.put_u32(fan.0);
                out.put_u32(story.0);
                out.put_u64(triggered_at.0);
                out.put_u8(u8::from(from_submitter));
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Ev, SnapshotError> {
        Ok(match r.get_u8()? {
            0 => Ev::Expiry(StoryId(r.get_u32()?)),
            1 => Ev::SubmitBatch,
            2 => Ev::FrontBatch,
            3 => Ev::UpcomingBatch,
            4 => Ev::ExternalBatch,
            5 => Ev::Submit,
            6 => Ev::FrontSession,
            7 => Ev::UpSession,
            8 => Ev::ExternalArrival {
                story: StoryId(r.get_u32()?),
                rng: StreamRng::decode(r)?,
                tau: r.get_f64()?,
            },
            9 => Ev::Exposure {
                fan: UserId(r.get_u32()?),
                story: StoryId(r.get_u32()?),
                triggered_at: Minute(r.get_u64()?),
                from_submitter: match r.get_u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(SnapshotError::Malformed(format!("from_submitter flag {b}"))),
                },
            },
            t => return Err(SnapshotError::Malformed(format!("event tag {t}"))),
        })
    }
}

/// What a [`Sim`] snapshot carries vs rebuilds (DESIGN.md §15):
///
/// **Serialized** — everything whose value is path-dependent: stories
/// (votes, statuses, qualities), per-story [`PromoterState`] partial
/// sums, both listings, the pending event queue (as a nested
/// [`EventQueue`] container, tombstones dropped), the exposure-dedup
/// pair set (sorted), the tick-loop `StdRng` core, the four engine
/// [`StreamRng`] streams with their continuous clocks, metrics, the
/// clock, and the full [`SimConfig`].
///
/// **Rebuilt on restore** — pure functions of serialized state or of
/// the context population: alias tables (from population weights), the
/// promoter object (from `cfg.promoter`), the niche-quality sampler
/// (from cfg), and every story's `voter_pos` index (from its votes).
/// The population itself is the restore *context*: it is a pure
/// function of `(PopulationConfig, seed)` and is only fingerprinted,
/// not stored.
impl Snapshot for Sim {
    fn snapshot(&self) -> Vec<u8> {
        let mut c = SnapshotWriter::new();

        let mut w = ByteWriter::new();
        self.cfg.encode(&mut w);
        c.section("config", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u8(match self.kernel {
            Kernel::Compat => 0,
            Kernel::EventStreams => 1,
        });
        w.put_u64(self.now.0);
        w.put_usize(self.external_lo);
        w.put_u64(self.front_sessions);
        w.put_u64(self.up_sessions);
        w.put_f64(self.sub_tau);
        w.put_f64(self.front_tau);
        w.put_f64(self.up_tau);
        c.section("state", w.into_bytes());

        let mut w = ByteWriter::new();
        self.metrics.encode(&mut w);
        c.section("metrics", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.pop.len());
        w.put_u64(self.pop.fingerprint());
        c.section("pop", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.stories.len());
        for s in &self.stories {
            s.encode(&mut w);
        }
        c.section("stories", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.promo_states.len());
        for p in &self.promo_states {
            p.encode(&mut w);
        }
        c.section("promo", w.into_bytes());

        let mut w = ByteWriter::new();
        let entries: Vec<_> = self.queue.snapshot_entries().collect();
        w.put_usize(entries.len());
        for (id, t) in entries {
            w.put_u32(id.0);
            w.put_u64(t.0);
        }
        c.section("queue", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.front.all().len());
        for &(id, t) in self.front.all() {
            w.put_u32(id.0);
            w.put_u64(t.0);
        }
        c.section("front", w.into_bytes());

        // HashSet iteration order is arbitrary: sort the pairs so the
        // bytes are a pure function of the logical state.
        let mut pairs: Vec<(u32, u32)> = self.scheduled.iter().map(|&(u, s)| (u.0, s.0)).collect();
        pairs.sort_unstable();
        let mut w = ByteWriter::new();
        w.put_usize(pairs.len());
        for (u, s) in pairs {
            w.put_u32(u);
            w.put_u32(s);
        }
        c.section("scheduled", w.into_bytes());

        c.section("events", self.events.snapshot());

        let mut w = ByteWriter::new();
        for word in self.rng.state() {
            w.put_u64(word);
        }
        c.section("rng", w.into_bytes());

        let mut w = ByteWriter::new();
        self.root.encode(&mut w);
        self.sub_gap.encode(&mut w);
        self.front_gap.encode(&mut w);
        self.up_gap.encode(&mut w);
        c.section("streams", w.into_bytes());

        c.finish()
    }
}

impl Restore for Sim {
    /// The regenerated population — from the same
    /// `(PopulationConfig, seed)` the snapshotted sim was built with.
    /// Checked against the stored fingerprint before anything else is
    /// trusted.
    type Context<'a> = Population;

    fn restore(bytes: &[u8], pop: Population) -> Result<Sim, SnapshotError> {
        let c = SnapshotReader::parse(bytes)?;

        let mut r = c.section_reader("config")?;
        let cfg = SimConfig::decode(&mut r)?;
        cfg.validate()
            .map_err(|e| SnapshotError::Malformed(format!("invalid config in snapshot: {e}")))?;

        let mut r = c.section_reader("pop")?;
        let users = r.get_usize()?;
        let fingerprint = r.get_u64()?;
        if users != pop.len() || fingerprint != pop.fingerprint() {
            return Err(SnapshotError::Malformed(
                "population does not match the snapshot fingerprint — regenerate it from the \
                 same (PopulationConfig, seed) the snapshotted run used"
                    .into(),
            ));
        }

        let mut r = c.section_reader("state")?;
        let kernel = match r.get_u8()? {
            0 => Kernel::Compat,
            1 => Kernel::EventStreams,
            t => return Err(SnapshotError::Malformed(format!("kernel tag {t}"))),
        };
        let now = Minute(r.get_u64()?);
        let external_lo = r.get_usize()?;
        let front_sessions = r.get_u64()?;
        let up_sessions = r.get_u64()?;
        let sub_tau = r.get_f64()?;
        let front_tau = r.get_f64()?;
        let up_tau = r.get_f64()?;

        let metrics = SimMetrics::decode(&mut c.section_reader("metrics")?)?;

        let mut r = c.section_reader("stories")?;
        let n = r.get_usize()?;
        let mut stories = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            stories.push(Story::decode(&mut r)?);
        }
        if external_lo > stories.len() {
            return Err(SnapshotError::Malformed(format!(
                "external_lo {external_lo} beyond {} stories",
                stories.len()
            )));
        }

        let mut r = c.section_reader("promo")?;
        let np = r.get_usize()?;
        if np != stories.len() {
            return Err(SnapshotError::Malformed(format!(
                "{np} promoter states for {} stories",
                stories.len()
            )));
        }
        let mut promo_states = Vec::with_capacity(np.min(1 << 20));
        for _ in 0..np {
            promo_states.push(PromoterState::decode(&mut r)?);
        }

        let mut r = c.section_reader("queue")?;
        let nq = r.get_usize()?;
        let mut queue_entries = Vec::with_capacity(nq.min(1 << 20));
        for _ in 0..nq {
            queue_entries.push((StoryId(r.get_u32()?), Minute(r.get_u64()?)));
        }

        let mut r = c.section_reader("front")?;
        let nf = r.get_usize()?;
        let mut front_entries = Vec::with_capacity(nf.min(1 << 20));
        for _ in 0..nf {
            front_entries.push((StoryId(r.get_u32()?), Minute(r.get_u64()?)));
        }

        let mut r = c.section_reader("scheduled")?;
        let ns = r.get_usize()?;
        let mut scheduled = HashSet::with_capacity(ns.min(1 << 20));
        for _ in 0..ns {
            scheduled.insert((UserId(r.get_u32()?), StoryId(r.get_u32()?)));
        }

        let events: EventQueue<Ev> = EventQueue::restore(c.section("events")?, ())?;

        let mut r = c.section_reader("rng")?;
        let rng = StdRng::from_state([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?]);

        let mut r = c.section_reader("streams")?;
        let root = StreamRng::decode(&mut r)?;
        let sub_gap = StreamRng::decode(&mut r)?;
        let front_gap = StreamRng::decode(&mut r)?;
        let up_gap = StreamRng::decode(&mut r)?;

        let browse_table = AliasTable::new(&pop.browse_weight).ok_or_else(|| {
            SnapshotError::Malformed("population browse weights yield no alias table".into())
        })?;
        let submit_table = AliasTable::new(&pop.submit_weight).ok_or_else(|| {
            SnapshotError::Malformed("population submit weights yield no alias table".into())
        })?;

        Ok(Sim {
            queue: UpcomingQueue::from_snapshot(cfg.page_size, cfg.queue_lifetime, queue_entries),
            front: FrontPage::from_snapshot(cfg.page_size, front_entries),
            events,
            scheduled,
            stories,
            promo_states,
            now,
            metrics,
            browse_table,
            submit_table,
            promoter: promotion::from_kind(cfg.promoter),
            niche_quality: LogNormal::new(cfg.niche_quality_mu, cfg.niche_quality_sigma),
            rng,
            external_lo,
            root,
            sub_gap,
            sub_tau,
            front_gap,
            front_tau,
            front_sessions,
            up_gap,
            up_tau,
            up_sessions,
            events_fired: 0,
            kernel,
            cfg,
            pop,
        })
    }
}

/// Story quality: a coin between the broad-appeal regime (uniform above
/// `broad_quality_min`, likelier for skilled submitters) and the niche
/// regime (log-normal, clamped into `(0, 1]`).
fn draw_quality<R: RngCore>(
    rng: &mut R,
    cfg: &SimConfig,
    niche_quality: &LogNormal,
    activity: f64,
) -> f64 {
    let skill = (activity / cfg.skill_activity_ref).min(1.0);
    let p_broad = cfg.high_quality_fraction + cfg.high_quality_skill * skill;
    if coin(rng, p_broad) {
        let lo = cfg.broad_quality_min;
        lo + (1.0 - lo) * rng.random::<f64>()
    } else {
        niche_quality.sample(rng).clamp(1e-4, 1.0)
    }
}

/// Convenience: build a population and run a simulation for `minutes`,
/// returning the finished [`Sim`].
pub fn run_simulation(cfg: SimConfig, pop: Population, minutes: u64) -> Sim {
    let mut sim = Sim::new(cfg, pop);
    sim.run(minutes);
    sim
}

/// Promotion-boundary invariant check used by tests and the dataset
/// validator: with a threshold promoter of `min_votes`, no story that
/// is currently in the queue may have reached `min_votes`.
pub fn queue_boundary_violations(sim: &Sim) -> usize {
    let min_votes = match sim.config().promoter {
        PromoterKind::Threshold { min_votes } => min_votes,
        PromoterKind::Diversity { .. } => return 0, // boundary is weighted
    };
    sim.upcoming_queue()
        .all()
        .into_iter()
        .filter(|id| sim.story(*id).vote_count() >= min_votes)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    fn toy_sim(seed: u64) -> Sim {
        let cfg = SimConfig::toy(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        Sim::new(cfg, pop)
    }

    fn toy_streams_sim(seed: u64) -> Sim {
        let cfg = SimConfig::toy(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        Sim::with_kernel(cfg, pop, Kernel::EventStreams)
    }

    #[test]
    fn runs_and_submits() {
        let mut sim = toy_sim(1);
        sim.run(600);
        assert_eq!(sim.now(), Minute(600));
        assert!(sim.metrics().submissions > 0, "no submissions in 10h");
        assert_eq!(sim.metrics().submissions as usize, sim.stories().len());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = toy_sim(42);
        let mut b = toy_sim(42);
        a.run(300);
        b.run(300);
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.stories().len(), b.stories().len());
        for (x, y) in a.stories().iter().zip(b.stories()) {
            assert_eq!(x.votes, y.votes);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = toy_sim(1);
        let mut b = toy_sim(2);
        a.run(300);
        b.run(300);
        // Overwhelmingly likely to differ somewhere.
        assert_ne!(
            (a.metrics().submissions, a.metrics().total_votes()),
            (b.metrics().submissions, b.metrics().total_votes())
        );
    }

    #[test]
    fn promotion_boundary_holds() {
        let mut sim = toy_sim(7);
        sim.run(1200);
        assert!(sim.metrics().promotions > 0, "nothing promoted");
        assert_eq!(queue_boundary_violations(&sim), 0);
        // Every promoted story crossed the threshold.
        for (id, _) in sim.front_page().all() {
            assert!(sim.story(*id).vote_count() >= 10);
        }
    }

    #[test]
    fn promoted_stories_leave_queue() {
        let mut sim = toy_sim(3);
        sim.run(1200);
        for (id, _) in sim.front_page().all() {
            assert!(!sim.upcoming_queue().contains(*id));
            assert!(sim.story(*id).is_front_page());
        }
    }

    #[test]
    fn expired_stories_are_marked() {
        // Make promotion unattainable so stories can only expire.
        let mut cfg = SimConfig::toy(4);
        cfg.promoter = PromoterKind::Threshold { min_votes: 100_000 };
        let mut rng = StdRng::seed_from_u64(4 ^ 0xABCD);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        let mut sim = Sim::new(cfg, pop);
        sim.run(1500);
        assert!(sim.metrics().expirations > 0);
        let expired = sim
            .stories()
            .iter()
            .filter(|s| matches!(s.status, StoryStatus::Expired(_)))
            .count();
        assert_eq!(expired as u64, sim.metrics().expirations);
    }

    #[test]
    fn votes_are_unique_per_user() {
        let mut sim = toy_sim(5);
        sim.run(800);
        for s in sim.stories() {
            let mut users: Vec<UserId> = s.votes.iter().map(|v| v.user).collect();
            users.sort_unstable();
            let before = users.len();
            users.dedup();
            assert_eq!(users.len(), before, "duplicate votes on {}", s.id);
        }
    }

    #[test]
    fn vote_times_are_monotone() {
        let mut sim = toy_sim(6);
        sim.run(800);
        for s in sim.stories() {
            assert!(s.votes.ats().windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(s.votes.get(0).user, s.submitter);
        }
    }

    #[test]
    fn social_channel_is_active() {
        let mut sim = toy_sim(8);
        sim.run(1200);
        assert!(
            sim.metrics().votes_friends > 0,
            "friends channel never fired: {:?}",
            sim.metrics()
        );
        assert!(sim.metrics().votes_frontpage > 0);
    }

    #[test]
    fn config_accessible() {
        let sim = toy_sim(9);
        assert_eq!(sim.config().users, 400);
        assert_eq!(sim.population().len(), 400);
        assert_eq!(sim.kernel(), Kernel::Compat);
    }

    #[test]
    #[should_panic(expected = "must match population size")]
    fn population_size_mismatch_panics() {
        let cfg = SimConfig::toy(1);
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(10));
        let _ = Sim::new(cfg, pop);
    }

    #[test]
    fn event_streams_kernel_is_deterministic() {
        let mut a = toy_streams_sim(42);
        let mut b = toy_streams_sim(42);
        a.run(600);
        b.run(600);
        assert_eq!(a.metrics(), b.metrics());
        for (x, y) in a.stories().iter().zip(b.stories()) {
            assert_eq!(x.votes, y.votes);
            assert_eq!(x.quality, y.quality);
        }
    }

    #[test]
    fn event_streams_kernel_upholds_core_invariants() {
        let mut sim = toy_streams_sim(11);
        sim.run(1200);
        assert_eq!(sim.now(), Minute(1200));
        assert!(sim.metrics().submissions > 0);
        assert_eq!(sim.metrics().submissions as usize, sim.stories().len());
        assert!(sim.metrics().promotions > 0, "nothing promoted");
        assert_eq!(queue_boundary_violations(&sim), 0);
        for s in sim.stories() {
            assert!(s.votes.ats().windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(s.votes.get(0).user, s.submitter);
            let mut users: Vec<UserId> = s.votes.iter().map(|v| v.user).collect();
            users.sort_unstable();
            let before = users.len();
            users.dedup();
            assert_eq!(users.len(), before, "duplicate votes on {}", s.id);
        }
        let story_votes: u64 = sim
            .stories()
            .iter()
            .map(|s| s.vote_count() as u64 - 1)
            .sum();
        assert_eq!(sim.metrics().total_votes(), story_votes);
    }

    #[test]
    fn event_streams_kernel_tracks_the_tick_loop_statistically() {
        // Same model, different sample path: aggregate activity should
        // land in the same ballpark as the Compat kernel.
        let mut compat = toy_sim(2024);
        let mut streams = toy_streams_sim(2024);
        compat.run(2880);
        streams.run(2880);
        let (c, s) = (compat.metrics(), streams.metrics());
        let ratio = s.submissions as f64 / c.submissions as f64;
        assert!((0.7..1.4).contains(&ratio), "submission ratio {ratio}");
        let vr = (s.total_votes().max(1)) as f64 / (c.total_votes().max(1)) as f64;
        assert!((0.5..2.0).contains(&vr), "vote ratio {vr}");
        assert!(s.votes_friends > 0 && s.votes_frontpage > 0);
    }

    #[test]
    fn incremental_runs_match_one_shot() {
        // run(a); run(b) must equal run(a + b) — the heartbeats and
        // pending events survive across run() calls.
        let mut split = toy_sim(13);
        split.run(200);
        split.run(400);
        let mut whole = toy_sim(13);
        whole.run(600);
        assert_eq!(split.metrics(), whole.metrics());
        for (x, y) in split.stories().iter().zip(whole.stories()) {
            assert_eq!(x.votes, y.votes);
        }

        let mut split = toy_streams_sim(13);
        split.run(200);
        split.run(400);
        let mut whole = toy_streams_sim(13);
        whole.run(600);
        assert_eq!(split.metrics(), whole.metrics());
    }

    fn toy_pop(seed: u64, users: usize) -> Population {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        Population::generate(&mut rng, &PopulationConfig::toy(users))
    }

    fn assert_same_trajectory(a: &Sim, b: &Sim) {
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stories().len(), b.stories().len());
        for (x, y) in a.stories().iter().zip(b.stories()) {
            assert_eq!(x.votes, y.votes);
            assert_eq!(x.status, y.status);
            assert_eq!(x.quality.to_bits(), y.quality.to_bits());
        }
        assert_eq!(a.front_page().all(), b.front_page().all());
        assert_eq!(a.snapshot(), b.snapshot(), "snapshot bytes diverge");
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        for streams in [false, true] {
            let mut straight = if streams {
                toy_streams_sim(21)
            } else {
                toy_sim(21)
            };
            let mut paused = if streams {
                toy_streams_sim(21)
            } else {
                toy_sim(21)
            };
            paused.run(350);
            let bytes = paused.snapshot();
            let mut resumed =
                Sim::restore(&bytes, toy_pop(21, paused.config().users)).expect("restore");
            // The restored sim snapshots back to the same bytes…
            assert_eq!(resumed.snapshot(), bytes);
            // …and the remainder of the run is bit-identical to never
            // having paused at all.
            straight.run(900);
            paused.run(550);
            resumed.run(550);
            assert_same_trajectory(&straight, &paused);
            assert_same_trajectory(&straight, &resumed);
        }
    }

    #[test]
    fn restore_rejects_the_wrong_population() {
        let mut sim = toy_sim(30);
        sim.run(100);
        let bytes = sim.snapshot();
        let err = match Sim::restore(&bytes, toy_pop(31, sim.config().users)) {
            Err(e) => e,
            Ok(_) => panic!("restore accepted a mismatched population"),
        };
        match err {
            SnapshotError::Malformed(msg) => assert!(msg.contains("fingerprint"), "{msg}"),
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn restore_of_corrupted_snapshot_is_a_typed_error() {
        let mut sim = toy_sim(33);
        sim.run(120);
        let mut bytes = sim.snapshot();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match Sim::restore(&bytes, toy_pop(33, sim.config().users)) {
            Err(_) => {}
            Ok(_) => panic!("restore accepted a corrupted snapshot"),
        }
    }

    #[test]
    fn run_budgeted_pauses_without_disturbing_the_trajectory() {
        // Drain the same horizon in tiny event budgets; state at the
        // end must match a single unbudgeted run — this is what lets a
        // sweep worker checkpoint every N events.
        let mut budgeted = toy_streams_sim(17);
        let mut straight = toy_streams_sim(17);
        let horizon = Minute(500);
        let mut slices = 0u32;
        while !budgeted.run_budgeted(horizon, 64) {
            slices += 1;
            assert!(slices < 100_000, "budgeted run failed to make progress");
        }
        straight.run(500);
        assert_same_trajectory(&straight, &budgeted);
        assert!(slices > 2, "budget was never exhausted mid-run");
    }
}
