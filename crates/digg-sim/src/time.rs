//! Simulation clock.
//!
//! The paper measures story age in minutes (Fig. 1's x-axis); the
//! simulator advances in one-minute ticks, the finest granularity any
//! reproduced observable needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Minutes in an hour.
pub const HOUR: u64 = 60;
/// Minutes in a day.
pub const DAY: u64 = 24 * HOUR;

/// A point in simulated time, in minutes since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Minute(pub u64);

impl Minute {
    /// Zero time.
    pub const ZERO: Minute = Minute(0);

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Minute {
        Minute(h * HOUR)
    }

    /// Construct from whole days.
    pub fn from_days(d: u64) -> Minute {
        Minute(d * DAY)
    }

    /// Time as fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Time as fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// Saturating difference `self - other` (0 when `other` is later).
    pub fn since(self, other: Minute) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl Add<u64> for Minute {
    type Output = Minute;
    fn add(self, rhs: u64) -> Minute {
        Minute(self.0 + rhs)
    }
}

impl Sub<u64> for Minute {
    type Output = Minute;
    fn sub(self, rhs: u64) -> Minute {
        Minute(self.0.saturating_sub(rhs))
    }
}

impl fmt::Display for Minute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}m", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Minute::from_hours(2), Minute(120));
        assert_eq!(Minute::from_days(1), Minute(1440));
        assert_eq!(Minute(90).as_hours(), 1.5);
        assert_eq!(Minute(720).as_days(), 0.5);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Minute(5) + 3, Minute(8));
        assert_eq!(Minute(5) - 10, Minute(0));
        assert_eq!(Minute(5).since(Minute(2)), 3);
        assert_eq!(Minute(2).since(Minute(5)), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Minute(7).to_string(), "t+7m");
    }
}
