//! The parallel scenario-sweep runner.
//!
//! A sweep is the cross product of scenario specs and seeds, each cell
//! an independent simulation run. Runs fan out across threads with
//! [`des_core::par_map`] — contiguous chunks, outputs concatenated in
//! chunk order — so a sweep's results are **bit-identical at any
//! `DIGG_THREADS`**. [`ScenarioRun`] deliberately carries no wall-time
//! (timing lives in the bench registry's run records), which is what
//! lets the thread-invariance test demand exact payload equality.

use crate::config::SimConfig;
use crate::engine::{Kernel, Sim};
use crate::metrics::SimMetrics;
use crate::population::{Population, PopulationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Salt mixed into each run's seed when generating its population, so
/// the population draw and the simulation draw streams differ.
const POPULATION_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One cell of a sweep grid: a named configuration to run for
/// `minutes` on `kernel`.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable name recorded on every run of this scenario.
    pub name: String,
    /// Simulator configuration; its `seed` field is overridden per run.
    pub cfg: SimConfig,
    /// Population to generate for each run.
    pub pop_cfg: PopulationConfig,
    /// Kernel to drive the run with.
    pub kernel: Kernel,
    /// Simulated minutes per run.
    pub minutes: u64,
}

/// The outcome of one `(scenario, seed)` run. Serializable into bench
/// payloads; contains no timings (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioRun {
    /// Name of the scenario that produced this run.
    pub scenario: String,
    /// The run seed.
    pub seed: u64,
    /// Simulated minutes.
    pub minutes: u64,
    /// Stories submitted over the run.
    pub stories: usize,
    /// Full metric counters.
    pub metrics: SimMetrics,
}

/// Run one `(spec, seed)` cell to completion.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> ScenarioRun {
    let mut cfg = spec.cfg.clone();
    cfg.seed = seed;
    let mut pop_rng = StdRng::seed_from_u64(seed ^ POPULATION_SALT);
    let pop = Population::generate(&mut pop_rng, &spec.pop_cfg);
    let mut sim = Sim::with_kernel(cfg, pop, spec.kernel);
    sim.run(spec.minutes);
    ScenarioRun {
        scenario: spec.name.clone(),
        seed,
        minutes: spec.minutes,
        stories: sim.stories().len(),
        metrics: sim.metrics().clone(),
    }
}

/// Run the full `specs x seeds` grid, fanned across `threads` worker
/// threads. Output order is the grid in row-major order (all seeds of
/// `specs[0]`, then `specs[1]`, …) regardless of thread count.
pub fn run_sweep(specs: &[ScenarioSpec], seeds: &[u64], threads: usize) -> Vec<ScenarioRun> {
    let cells: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    des_core::par_map(&cells, threads, |&(i, seed)| run_scenario(&specs[i], seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_specs() -> Vec<ScenarioSpec> {
        let mut quiet = SimConfig::toy(0);
        quiet.submissions_per_minute = 0.05;
        vec![
            ScenarioSpec {
                name: "toy-compat".into(),
                cfg: SimConfig::toy(0),
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::Compat,
                minutes: 240,
            },
            ScenarioSpec {
                name: "toy-streams".into(),
                cfg: quiet,
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::EventStreams,
                minutes: 240,
            },
        ]
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let specs = toy_specs();
        let seeds = [1u64, 2, 3];
        let one = run_sweep(&specs, &seeds, 1);
        for threads in [2, 3, 8] {
            assert_eq!(run_sweep(&specs, &seeds, threads), one);
        }
        assert_eq!(one.len(), 6);
    }

    #[test]
    fn runs_are_grid_ordered_and_seeded() {
        let specs = toy_specs();
        let runs = run_sweep(&specs, &[7, 8], 2);
        let labels: Vec<(&str, u64)> = runs.iter().map(|r| (r.scenario.as_str(), r.seed)).collect();
        assert_eq!(
            labels,
            vec![
                ("toy-compat", 7),
                ("toy-compat", 8),
                ("toy-streams", 7),
                ("toy-streams", 8),
            ]
        );
        // Each run actually simulated: the clock advanced and the
        // submission counter matches the story list.
        for r in &runs {
            assert_eq!(r.metrics.minutes, r.minutes);
            assert_eq!(r.metrics.submissions as usize, r.stories);
        }
    }
}
