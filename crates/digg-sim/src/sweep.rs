//! The parallel scenario-sweep runner.
//!
//! A sweep is the cross product of scenario specs and seeds, each cell
//! an independent simulation run. Runs fan out across threads with
//! [`des_core::par_map`] — contiguous chunks, outputs concatenated in
//! chunk order — so a sweep's results are **bit-identical at any
//! `DIGG_THREADS`**. [`ScenarioRun`] deliberately carries no wall-time
//! (timing lives in the bench registry's run records), which is what
//! lets the thread-invariance test demand exact payload equality.

use crate::config::SimConfig;
use crate::engine::{Kernel, Sim};
use crate::metrics::SimMetrics;
use crate::population::{Population, PopulationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Salt mixed into each run's seed when generating its population, so
/// the population draw and the simulation draw streams differ.
const POPULATION_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One cell of a sweep grid: a named configuration to run for
/// `minutes` on `kernel`. Serializable because the multi-process
/// supervisor ([`crate::supervisor`]) ships specs to worker
/// subprocesses over the frame protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Stable name recorded on every run of this scenario.
    pub name: String,
    /// Simulator configuration; its `seed` field is overridden per run.
    pub cfg: SimConfig,
    /// Population to generate for each run.
    pub pop_cfg: PopulationConfig,
    /// Kernel to drive the run with.
    pub kernel: Kernel,
    /// Simulated minutes per run.
    pub minutes: u64,
}

/// The outcome of one `(scenario, seed)` run. Serializable into bench
/// payloads; contains no timings (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioRun {
    /// Name of the scenario that produced this run.
    pub scenario: String,
    /// The run seed.
    pub seed: u64,
    /// Simulated minutes.
    pub minutes: u64,
    /// Stories submitted over the run.
    pub stories: usize,
    /// Full metric counters.
    pub metrics: SimMetrics,
}

/// The population a `(spec, seed)` cell runs against — a pure function
/// of the pair, which is what lets the checkpoint/replay machinery
/// regenerate it on restore instead of serializing it.
pub fn scenario_population(spec: &ScenarioSpec, seed: u64) -> Population {
    let mut pop_rng = StdRng::seed_from_u64(seed ^ POPULATION_SALT);
    Population::generate(&mut pop_rng, &spec.pop_cfg)
}

/// The fully-seeded [`Sim`] a `(spec, seed)` cell starts from.
pub fn scenario_sim(spec: &ScenarioSpec, seed: u64) -> Sim {
    let mut cfg = spec.cfg.clone();
    cfg.seed = seed;
    Sim::with_kernel(cfg, scenario_population(spec, seed), spec.kernel)
}

/// Package a finished cell simulation into its [`ScenarioRun`].
pub(crate) fn scenario_run(spec: &ScenarioSpec, seed: u64, sim: &Sim) -> ScenarioRun {
    ScenarioRun {
        scenario: spec.name.clone(),
        seed,
        minutes: spec.minutes,
        stories: sim.stories().len(),
        metrics: sim.metrics().clone(),
    }
}

/// Run one `(spec, seed)` cell to completion.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> ScenarioRun {
    let mut sim = scenario_sim(spec, seed);
    sim.run(spec.minutes);
    scenario_run(spec, seed, &sim)
}

/// The outcome of one sweep cell under the panic-isolating runner:
/// either the completed run, or the identity of the scenario that
/// panicked plus its rendered panic message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell ran to completion.
    Ok(ScenarioRun),
    /// The cell's simulation panicked; the rest of the batch is
    /// unaffected.
    Panicked {
        /// Name of the scenario that failed.
        scenario: String,
        /// The seed of the failed run.
        seed: u64,
        /// Rendered panic payload.
        message: String,
    },
}

impl CellOutcome {
    /// The completed run, if the cell succeeded.
    pub fn run(&self) -> Option<&ScenarioRun> {
        match self {
            CellOutcome::Ok(run) => Some(run),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// Did the cell fail?
    pub fn is_panicked(&self) -> bool {
        matches!(self, CellOutcome::Panicked { .. })
    }
}

/// Run the full `specs x seeds` grid, fanned across `threads` worker
/// threads. Output order is the grid in row-major order (all seeds of
/// `specs[0]`, then `specs[1]`, …) regardless of thread count.
///
/// A panic in any cell aborts the whole sweep (layered on
/// [`try_run_sweep`], which callers that must survive a poisoned
/// scenario should use instead).
pub fn run_sweep(specs: &[ScenarioSpec], seeds: &[u64], threads: usize) -> Vec<ScenarioRun> {
    let outcomes = match try_run_sweep(specs, seeds, threads) {
        Ok(outcomes) => outcomes,
        // digg-lint: allow(no-lib-unwrap) — infallible-layer contract: re-raise the aggregated WorkerPanic for fail-fast callers
        Err(e) => panic!("worker thread panicked: {e}"),
    };
    outcomes
        .into_iter()
        .map(|o| match o {
            CellOutcome::Ok(run) => run,
            CellOutcome::Panicked {
                scenario,
                seed,
                message,
                // digg-lint: allow(no-lib-unwrap) — infallible-layer contract: a poisoned cell is fatal here; survivors use try_run_sweep
            } => panic!("scenario '{scenario}' (seed {seed}) panicked: {message}"),
        })
        .collect()
}

/// Panic-isolated sweep: each `(scenario, seed)` cell runs under its
/// own `catch_unwind`, so one poisoned scenario fails *that cell* —
/// reported as [`CellOutcome::Panicked`] in grid position — while
/// every other cell completes normally. Cells fan out through
/// [`des_core::try_par_map`] (defense in depth: a panic escaping the
/// per-cell catch still only fails its shard, not the process).
///
/// With no panic anywhere the cell payloads are bit-identical to
/// [`run_sweep`] at any thread count.
pub fn try_run_sweep(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    threads: usize,
) -> Result<Vec<CellOutcome>, des_core::WorkerPanic> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let cells: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    des_core::try_par_map(&cells, threads, |&(i, seed)| {
        let spec = &specs[i];
        // AssertUnwindSafe: a panicking cell's partially built Sim is
        // dropped during the unwind; only the outcome value escapes.
        match catch_unwind(AssertUnwindSafe(|| run_scenario(spec, seed))) {
            Ok(run) => CellOutcome::Ok(run),
            Err(p) => CellOutcome::Panicked {
                scenario: spec.name.clone(),
                seed,
                message: des_core::panic_message(p.as_ref()),
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_specs() -> Vec<ScenarioSpec> {
        let mut quiet = SimConfig::toy(0);
        quiet.submissions_per_minute = 0.05;
        vec![
            ScenarioSpec {
                name: "toy-compat".into(),
                cfg: SimConfig::toy(0),
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::Compat,
                minutes: 240,
            },
            ScenarioSpec {
                name: "toy-streams".into(),
                cfg: quiet,
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::EventStreams,
                minutes: 240,
            },
        ]
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let specs = toy_specs();
        let seeds = [1u64, 2, 3];
        let one = run_sweep(&specs, &seeds, 1);
        for threads in [2, 3, 8] {
            assert_eq!(run_sweep(&specs, &seeds, threads), one);
        }
        assert_eq!(one.len(), 6);
    }

    #[test]
    fn try_sweep_matches_run_sweep_without_faults() {
        let specs = toy_specs();
        let seeds = [1u64, 2, 3];
        let plain = run_sweep(&specs, &seeds, 1);
        for threads in [1, 2, 8] {
            let outcomes = try_run_sweep(&specs, &seeds, threads).unwrap();
            let runs: Vec<&ScenarioRun> = outcomes.iter().filter_map(|o| o.run()).collect();
            assert_eq!(runs.len(), plain.len());
            for (a, b) in runs.iter().zip(&plain) {
                assert_eq!(*a, b);
            }
        }
    }

    #[test]
    fn poisoned_scenario_fails_only_its_cells() {
        // A zero-user population trips `Population::generate`'s
        // non-empty assert — a deterministic in-cell panic.
        let mut specs = toy_specs();
        specs.insert(
            1,
            ScenarioSpec {
                name: "poisoned".into(),
                cfg: SimConfig::toy(0),
                pop_cfg: PopulationConfig::toy(0),
                kernel: Kernel::Compat,
                minutes: 240,
            },
        );
        let seeds = [7u64, 8];
        let one = try_run_sweep(&specs, &seeds, 1).unwrap();
        assert_eq!(one.len(), 6);
        // Only the poisoned scenario's cells fail, in grid position,
        // carrying the cell identity and the panic message.
        for (k, outcome) in one.iter().enumerate() {
            if k == 2 || k == 3 {
                match outcome {
                    CellOutcome::Panicked {
                        scenario,
                        seed,
                        message,
                    } => {
                        assert_eq!(scenario, "poisoned");
                        assert_eq!(*seed, seeds[k - 2]);
                        assert!(
                            message.contains("population must be non-empty"),
                            "unexpected panic message: {message}"
                        );
                    }
                    CellOutcome::Ok(_) => panic!("poisoned cell {k} completed"),
                }
            } else {
                assert!(!outcome.is_panicked(), "healthy cell {k} failed");
            }
        }
        // The healthy cells are bit-identical to an all-healthy sweep,
        // and the whole outcome grid is thread-count invariant.
        let healthy = run_sweep(&toy_specs(), &seeds, 1);
        let survivors: Vec<&ScenarioRun> = one.iter().filter_map(|o| o.run()).collect();
        assert_eq!(survivors.len(), healthy.len());
        for (a, b) in survivors.iter().zip(&healthy) {
            assert_eq!(*a, b);
        }
        for threads in [2, 8] {
            assert_eq!(try_run_sweep(&specs, &seeds, threads).unwrap(), one);
        }
    }

    #[test]
    fn runs_are_grid_ordered_and_seeded() {
        let specs = toy_specs();
        let runs = run_sweep(&specs, &[7, 8], 2);
        let labels: Vec<(&str, u64)> = runs.iter().map(|r| (r.scenario.as_str(), r.seed)).collect();
        assert_eq!(
            labels,
            vec![
                ("toy-compat", 7),
                ("toy-compat", 8),
                ("toy-streams", 7),
                ("toy-streams", 8),
            ]
        );
        // Each run actually simulated: the clock advanced and the
        // submission counter matches the story list.
        for r in &runs {
            assert_eq!(r.metrics.minutes, r.minutes);
            assert_eq!(r.metrics.submissions as usize, r.stories);
        }
    }
}
