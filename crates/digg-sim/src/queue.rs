//! The upcoming-stories queue.
//!
//! Paper §3: "Each new story goes to the upcoming stories queue. The
//! new submissions … are displayed in reverse chronological order, 15
//! to the page, with the most recent story at the top." Stories leave
//! the queue either by promotion or by expiring after the queue
//! lifetime (24 h on Digg).

use crate::story::StoryId;
use crate::time::Minute;
use std::collections::VecDeque;

/// Reverse-chronological listing of unpromoted stories.
#[derive(Debug, Clone, Default)]
pub struct UpcomingQueue {
    /// Newest first.
    entries: VecDeque<(StoryId, Minute)>,
    page_size: usize,
    lifetime: u64,
}

impl UpcomingQueue {
    /// Create a queue with the given page size and story lifetime
    /// (minutes).
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize, lifetime: u64) -> UpcomingQueue {
        assert!(page_size > 0, "page size must be positive");
        UpcomingQueue {
            entries: VecDeque::new(),
            page_size,
            lifetime,
        }
    }

    /// Number of stories currently listed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Push a newly submitted story (must be the newest so far).
    pub fn push(&mut self, id: StoryId, at: Minute) {
        debug_assert!(
            self.entries.front().map(|&(_, t)| t <= at).unwrap_or(true),
            "stories must be pushed in submission order"
        );
        self.entries.push_front((id, at));
    }

    /// Remove a story (on promotion). Returns whether it was present.
    pub fn remove(&mut self, id: StoryId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(s, _)| s == id) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drop stories older than the lifetime; returns the expired ids
    /// (oldest first).
    pub fn expire(&mut self, now: Minute) -> Vec<StoryId> {
        let mut out = Vec::new();
        while let Some(&(id, t)) = self.entries.back() {
            if now.since(t) > self.lifetime {
                out.push(id);
                self.entries.pop_back();
            } else {
                break;
            }
        }
        out
    }

    /// Stories on page `p` (0-based), newest first.
    pub fn page(&self, p: usize) -> Vec<StoryId> {
        self.entries
            .iter()
            .skip(p * self.page_size)
            .take(self.page_size)
            .map(|&(id, _)| id)
            .collect()
    }

    /// Number of (possibly partial) pages.
    pub fn page_count(&self) -> usize {
        self.entries.len().div_ceil(self.page_size)
    }

    /// All listed stories, newest first.
    pub fn all(&self) -> Vec<StoryId> {
        self.entries.iter().map(|&(id, _)| id).collect()
    }

    /// Is the story currently listed?
    pub fn contains(&self, id: StoryId) -> bool {
        self.entries.iter().any(|&(s, _)| s == id)
    }

    /// Snapshot support: the listing entries with submission times,
    /// newest first.
    pub(crate) fn snapshot_entries(&self) -> impl Iterator<Item = (StoryId, Minute)> + '_ {
        self.entries.iter().copied()
    }

    /// Snapshot support: rebuild a queue from captured entries (newest
    /// first); `page_size` and `lifetime` come from the restored
    /// configuration rather than the snapshot.
    pub(crate) fn from_snapshot(
        page_size: usize,
        lifetime: u64,
        entries: Vec<(StoryId, Minute)>,
    ) -> UpcomingQueue {
        let mut q = UpcomingQueue::new(page_size, lifetime);
        q.entries = entries.into();
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_first_and_paging() {
        let mut q = UpcomingQueue::new(2, 100);
        q.push(StoryId(0), Minute(1));
        q.push(StoryId(1), Minute(2));
        q.push(StoryId(2), Minute(3));
        assert_eq!(q.page(0), vec![StoryId(2), StoryId(1)]);
        assert_eq!(q.page(1), vec![StoryId(0)]);
        assert_eq!(q.page(2), Vec::<StoryId>::new());
        assert_eq!(q.page_count(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn remove_on_promotion() {
        let mut q = UpcomingQueue::new(15, 100);
        q.push(StoryId(0), Minute(1));
        q.push(StoryId(1), Minute(2));
        assert!(q.remove(StoryId(0)));
        assert!(!q.remove(StoryId(0)));
        assert_eq!(q.all(), vec![StoryId(1)]);
        assert!(!q.contains(StoryId(0)));
        assert!(q.contains(StoryId(1)));
    }

    #[test]
    fn expiry_drops_old_stories() {
        let mut q = UpcomingQueue::new(15, 10);
        q.push(StoryId(0), Minute(0));
        q.push(StoryId(1), Minute(5));
        q.push(StoryId(2), Minute(12));
        let expired = q.expire(Minute(11));
        assert_eq!(expired, vec![StoryId(0)]);
        assert_eq!(q.len(), 2);
        // Boundary: exactly lifetime-old stories stay.
        let expired = q.expire(Minute(15));
        assert_eq!(expired, Vec::<StoryId>::new());
        let expired = q.expire(Minute(16));
        assert_eq!(expired, vec![StoryId(1)]);
    }

    #[test]
    fn expire_on_empty_queue() {
        let mut q = UpcomingQueue::new(15, 10);
        assert!(q.expire(Minute(1000)).is_empty());
        assert!(q.is_empty());
    }
}
