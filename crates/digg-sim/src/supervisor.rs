//! The fault-tolerant multi-process sweep runner.
//!
//! [`run_sweep_supervised`] shards a `specs x seeds` grid across worker
//! **subprocesses** (DESIGN.md §15, hardened in §17). The supervisor
//! assigns each worker a static contiguous row-major shard of the grid
//! and drives it one cell at a time over a stdin/stdout frame
//! protocol; workers checkpoint their simulation every N events
//! through [`digg_snapshot`]'s versioned containers, and a worker that
//! dies, hangs, or emits garbage mid-cell is killed, re-spawned, and
//! resumes from the youngest readable checkpoint generation. Because a
//! restored [`Sim`] is bit-identical to the one that wrote the
//! snapshot, a sweep that lost workers produces output
//! **byte-identical to an uninterrupted run** — the property the
//! `checkpoint_sweep` and `chaos_sweep` benches assert end to end.
//!
//! ## Protocol
//!
//! Frames are `u32` little-endian length + JSON payload. The
//! supervisor sends one [`CellRequest`] per cell; the worker answers
//! with a stream of [`WorkerFrame`]s — a progress [`Heartbeat`]
//! immediately on receipt, one more after every checkpoint it writes,
//! and finally `Done` carrying the [`CellResponse`]. Decode failures
//! are typed ([`FrameError`]): an oversized or short length prefix, a
//! truncated payload, non-UTF-8 bytes, or unparseable JSON each name
//! themselves instead of masquerading as generic pipe failure.
//!
//! ## Watchdog
//!
//! A reader thread drains each worker's stdout into a channel; the
//! supervisor waits with `recv_timeout`. Silence longer than
//! [`WatchdogConfig::heartbeat_timeout`] marks the worker
//! [`FailureKind::Hung`]; a cell whose wall-clock run exceeds
//! [`WatchdogConfig::cell_deadline`] — even with heartbeats still
//! flowing — is [`FailureKind::DeadlineExceeded`]. Either way the
//! worker is SIGKILLed and re-spawned (counted against
//! [`SupervisorConfig::max_respawns`]), and the cell resumes from its
//! last good checkpoint. The timers gate only *recovery scheduling*;
//! results remain pure functions of `(spec, seed)`.
//!
//! ## Checkpoint generations
//!
//! Checkpoints are generational: `cell_<i>.snap.<gen>` with the last
//! [`GENERATIONS_KEPT`] generations retained. Restore walks the ladder
//! youngest-first — any typed [`SnapshotError`] (torn write, bit rot)
//! falls back one generation, and running out of generations
//! cold-restarts the cell from scratch as the final rung. Corrupt
//! generations are deleted on the way down so they are never retried.
//!
//! ## Failure taxonomy and lenient mode
//!
//! Every worker failure is classified as a [`FailureKind`]: `Hung`,
//! `Crashed`, `CorruptFrame`, `CorruptCheckpoint`, or
//! `DeadlineExceeded`. [`run_sweep_supervised`] fails the whole grid
//! when one cell exhausts its respawn budget;
//! [`run_sweep_supervised_lenient`] instead degrades that cell to a
//! [`CellFailure`] in its [`SweepDegradationReport`] and keeps every
//! surviving cell — the posture a long-horizon production sweep wants.
//!
//! ## Determinism
//!
//! Sharding is static (contiguous chunks, like [`des_core::par_map`])
//! and outcomes are reassembled in grid order, so results don't depend
//! on worker scheduling. Deterministic faults come from
//! [`CellRequest::fault`] (a [`ChaosFault`] drawn per cell by
//! `digg_data::ChaosPlan`): the worker injects its own death, stall,
//! corrupt frame, or damaged checkpoint at a plan-chosen point, so
//! where a fault lands in the event stream is a pure function of the
//! plan — no signal races. With no subprocess binary available the
//! supervisor falls back to running shards in-process (same sharding,
//! same checkpoint cadence, faults ignored), which keeps every
//! consumer runnable in environments that cannot spawn.

use crate::engine::Sim;
use crate::sweep::{
    scenario_population, scenario_run, scenario_sim, CellOutcome, ScenarioRun, ScenarioSpec,
};
use crate::time::Minute;
use digg_snapshot::{read_snapshot, write_snapshot, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::time::Duration;

/// Exit code a worker uses when a chaos plan tells it to die after a
/// checkpoint — distinguishable from a real crash in worker logs.
pub const WORKER_KILL_EXIT_CODE: i32 = 101;

/// Exit code a worker uses after injecting a non-kill chaos fault
/// (corrupt frame, torn or bit-flipped checkpoint): the fault has
/// landed and the process removes itself so the supervisor's recovery
/// path — not a half-poisoned worker — finishes the cell.
pub const WORKER_CHAOS_EXIT_CODE: i32 = 102;

/// Checkpoint generations retained per cell. Two is the minimum that
/// makes the fallback ladder useful: a fault that tears generation
/// `g` mid-write still leaves `g - 1` intact.
pub const GENERATIONS_KEPT: u32 = 2;

/// Ceiling on a single protocol frame; a length prefix beyond this is
/// a corrupt stream, not a real message.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

// ------------------------------------------------------------- errors

/// A typed frame-decode failure: the byte stream violated the length-
/// prefixed JSON framing. Distinct from [`SweepError::Io`] (the pipe
/// itself broke) so supervisors can tell a garbage-emitting worker
/// from a dead one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The enforced cap.
        cap: u32,
    },
    /// The stream ended inside the 4-byte length prefix (1–3 bytes
    /// short of a frame boundary).
    ShortLengthPrefix {
        /// Prefix bytes actually read before EOF.
        got: usize,
    },
    /// The stream ended before the declared payload did.
    TruncatedPayload {
        /// Declared payload length.
        expected: u32,
        /// Payload bytes actually read before EOF.
        got: usize,
    },
    /// The payload is not UTF-8.
    NotUtf8,
    /// The payload is not the expected JSON shape.
    BadJson(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, cap } => {
                write!(f, "frame length {len} exceeds the {cap}-byte cap")
            }
            FrameError::ShortLengthPrefix { got } => {
                write!(f, "stream ended {got} byte(s) into a length prefix")
            }
            FrameError::TruncatedPayload { expected, got } => {
                write!(f, "frame payload truncated: declared {expected}, got {got}")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::BadJson(why) => write!(f, "frame payload is not valid JSON: {why}"),
        }
    }
}

/// Everything that can go wrong driving a supervised sweep.
#[derive(Debug)]
pub enum SweepError {
    /// An I/O error on the worker pipe or a checkpoint file.
    Io(io::Error),
    /// A malformed frame on the worker pipe (typed decode failure).
    Frame(FrameError),
    /// An out-of-order or structurally invalid protocol exchange.
    Protocol(String),
    /// A checkpoint could not be written, read, or restored.
    Snapshot(SnapshotError),
    /// A worker died more times than the respawn budget allows.
    WorkerExhausted {
        /// Grid index of the cell being retried when the budget ran out.
        cell: usize,
        /// Respawns attempted for that cell.
        respawns: u32,
    },
    /// The configuration asked for checkpointing without a directory,
    /// or for subprocess workers without a command.
    BadConfig(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep i/o error: {e}"),
            SweepError::Frame(e) => write!(f, "sweep frame error: {e}"),
            SweepError::Protocol(msg) => write!(f, "sweep protocol error: {msg}"),
            SweepError::Snapshot(e) => write!(f, "sweep checkpoint error: {e}"),
            SweepError::WorkerExhausted { cell, respawns } => write!(
                f,
                "worker for cell {cell} died through all {respawns} respawns"
            ),
            SweepError::BadConfig(msg) => write!(f, "sweep config error: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> SweepError {
        SweepError::Io(e)
    }
}

impl From<SnapshotError> for SweepError {
    fn from(e: SnapshotError) -> SweepError {
        SweepError::Snapshot(e)
    }
}

/// Why a worker was declared dead on one cell attempt — the sweep's
/// failure taxonomy. Recovered failures are counted per kind in
/// [`FailureCounts`]; a cell that exhausts its respawn budget carries
/// the final kind in its [`CellFailure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The worker went silent past the heartbeat timeout.
    Hung,
    /// The worker's pipe closed or broke mid-cell (process death).
    Crashed,
    /// The worker emitted a frame that failed to decode
    /// ([`FrameError`]).
    CorruptFrame,
    /// A checkpoint generation failed to restore (typed
    /// [`SnapshotError`]) and the ladder fell back past it.
    CorruptCheckpoint,
    /// The cell's wall-clock deadline elapsed, heartbeats or not.
    DeadlineExceeded,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FailureKind::Hung => "hung",
            FailureKind::Crashed => "crashed",
            FailureKind::CorruptFrame => "corrupt-frame",
            FailureKind::CorruptCheckpoint => "corrupt-checkpoint",
            FailureKind::DeadlineExceeded => "deadline-exceeded",
        };
        f.write_str(name)
    }
}

// -------------------------------------------------------------- chaos

/// Which way a chaos-injected corrupt response frame is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptFrameKind {
    /// A well-framed payload of non-UTF-8 garbage bytes.
    Garbage,
    /// A length prefix beyond [`MAX_FRAME_BYTES`].
    Oversized,
    /// A declared payload cut off by EOF.
    Truncated,
}

/// One deterministic fault a worker injects into its own execution —
/// the generalization of the old kill-after-checkpoint plan into a
/// full chaos matrix. Drawn per grid cell by `digg_data::ChaosPlan`
/// and shipped in the [`CellRequest`]; never set on resume re-sends,
/// so each fault fires at most once per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosFault {
    /// Exit with [`WORKER_KILL_EXIT_CODE`] right after writing this
    /// many checkpoints (the original `SweepKillPlan` fault).
    Kill {
        /// Checkpoint count that triggers the exit.
        after_checkpoints: u32,
    },
    /// Go silent forever right after writing this many checkpoints:
    /// no heartbeats, no exit. Only the watchdog's SIGKILL ends it.
    Stall {
        /// Checkpoint count that triggers the stall.
        after_checkpoints: u32,
    },
    /// Keep heartbeating but stop progressing after this many
    /// checkpoints — alive by the heartbeat rule, dead by the cell
    /// deadline. Exercises [`FailureKind::DeadlineExceeded`].
    Dawdle {
        /// Checkpoint count that triggers the dawdle.
        after_checkpoints: u32,
    },
    /// Run the cell to completion, then replace the `Done` frame with
    /// a malformed one and exit.
    CorruptFrame {
        /// How the frame is malformed.
        kind: CorruptFrameKind,
    },
    /// Tear the Nth checkpoint: write only a prefix of the container
    /// straight to the generation file (no tmp/fsync/rename), then
    /// exit — the torn-write disk failure the atomic path prevents.
    TornCheckpoint {
        /// Checkpoint count whose write is torn.
        at_checkpoint: u32,
    },
    /// Flip one bit in the Nth checkpoint's bytes before they land,
    /// then exit — silent media corruption under the checksum.
    BitFlipCheckpoint {
        /// Checkpoint count whose bytes are damaged.
        at_checkpoint: u32,
        /// Bit to flip, taken modulo the container's bit length.
        bit: u64,
    },
}

// ---------------------------------------------------------- protocol

/// Supervisor → worker: run one grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRequest {
    /// Grid index of the cell (row-major over `specs x seeds`).
    pub cell: usize,
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// The cell's seed.
    pub seed: u64,
    /// Events between checkpoints; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Generation base path for this cell's checkpoints — generation
    /// `g` lives at `<path>.<g>` (absent = no checkpointing).
    pub checkpoint_path: Option<String>,
    /// Resume from the youngest readable checkpoint generation (set
    /// on re-sends after a worker death).
    pub resume: bool,
    /// Deterministic fault to self-inject. Never set on a resume
    /// re-send, so recovery always runs clean.
    pub fault: Option<ChaosFault>,
}

/// Worker → supervisor: the finished cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResponse {
    /// Echo of [`CellRequest::cell`].
    pub cell: usize,
    /// The cell's outcome (a worker-side checkpoint error is reported
    /// as a [`CellOutcome::Panicked`] carrying the rendered error).
    pub outcome: CellOutcome,
    /// Checkpoints the worker wrote while running this cell.
    pub checkpoints_written: u32,
    /// Whether the worker resumed from a checkpoint generation.
    pub resumed: bool,
    /// Checkpoint generations that failed to restore (typed
    /// [`SnapshotError`]) and were skipped by the fallback ladder
    /// during this execution's resume.
    pub fallbacks: u32,
}

/// Worker → supervisor progress signal: proof of life plus how far
/// the cell has advanced. Emitted on cell receipt and after every
/// checkpoint write, so heartbeat cadence tracks checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Grid index of the cell being run.
    pub cell: usize,
    /// Events fired so far in this cell's simulation.
    pub events_done: u64,
    /// Checkpoints written so far in this execution.
    pub checkpoints_written: u32,
}

/// Every frame a worker sends upstream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkerFrame {
    /// Progress signal; the watchdog's food.
    Heartbeat(Heartbeat),
    /// The cell finished (successfully or panicked).
    Done(CellResponse),
}

/// Write one length-prefixed JSON frame.
fn write_frame<T: Serialize, W: Write>(w: &mut W, msg: &T) -> io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode frame: {e}")))?;
    let len = u32::try_from(json.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

/// Fill `buf` from `r`, tolerating short reads. Returns the bytes
/// actually read; fewer than `buf.len()` means EOF landed mid-buffer.
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, SweepError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(SweepError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one length-prefixed JSON frame; `Ok(None)` on clean EOF at a
/// frame boundary (the shutdown signal). Every malformed-stream path —
/// a partial length prefix, an oversized declared length, a truncated
/// payload, garbage bytes — is a typed [`FrameError`], never a generic
/// pipe failure.
fn read_frame<T: serde::Deserialize, R: Read>(r: &mut R) -> Result<Option<T>, SweepError> {
    let mut len_buf = [0u8; 4];
    match read_up_to(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(SweepError::Frame(FrameError::ShortLengthPrefix { got })),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(SweepError::Frame(FrameError::Oversized {
            len,
            cap: MAX_FRAME_BYTES,
        }));
    }
    let mut buf = vec![0u8; len as usize];
    let got = read_up_to(r, &mut buf)?;
    if got < buf.len() {
        return Err(SweepError::Frame(FrameError::TruncatedPayload {
            expected: len,
            got,
        }));
    }
    let text = String::from_utf8(buf).map_err(|_| SweepError::Frame(FrameError::NotUtf8))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| SweepError::Frame(FrameError::BadJson(e.to_string())))
}

// ------------------------------------------------- checkpoint ladder

/// The file holding generation `g` of a cell's checkpoint.
fn generation_path(base: &Path, generation: u32) -> PathBuf {
    let name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!("{name}.{generation}"))
}

/// Existing checkpoint generations for `base`, ascending. Unreadable
/// directories yield the empty ladder (treated as "no checkpoints").
fn list_generations(base: &Path) -> Vec<u32> {
    let (Some(parent), Some(name)) = (base.parent(), base.file_name()) else {
        return Vec::new();
    };
    let prefix = format!("{}.", name.to_string_lossy());
    let mut gens = Vec::new();
    if let Ok(entries) = std::fs::read_dir(parent) {
        for entry in entries.flatten() {
            let file = entry.file_name().to_string_lossy().into_owned();
            if let Some(suffix) = file.strip_prefix(&prefix) {
                if let Ok(g) = suffix.parse::<u32>() {
                    gens.push(g);
                }
            }
        }
    }
    gens.sort_unstable();
    gens
}

/// Delete every generation of a cell's checkpoint.
fn remove_generations(base: &Path) {
    for g in list_generations(base) {
        let _ = std::fs::remove_file(generation_path(base, g));
    }
}

/// Write one checkpoint generation, applying any checkpoint-targeting
/// chaos fault: a torn write lands a prefix of the container straight
/// at the generation file (bypassing the atomic tmp/fsync/rename
/// discipline, as a disk-level tear would), a bit flip lands the full
/// length with one damaged bit. Both then exit the process — the
/// fault is only observable to a *recovering* worker.
fn write_checkpoint_generation(
    base: &Path,
    generation: u32,
    sim: &Sim,
    written: u32,
    fault: Option<ChaosFault>,
) -> Result<(), SweepError> {
    let path = generation_path(base, generation);
    let mut bytes = sim.snapshot();
    match fault {
        Some(ChaosFault::TornCheckpoint { at_checkpoint }) if at_checkpoint == written => {
            let keep = bytes.len() / 3;
            std::fs::write(&path, &bytes[..keep])?;
            std::process::exit(WORKER_CHAOS_EXIT_CODE);
        }
        Some(ChaosFault::BitFlipCheckpoint { at_checkpoint, bit }) if at_checkpoint == written => {
            if !bytes.is_empty() {
                let at = (bit % (bytes.len() as u64 * 8)) as usize;
                bytes[at / 8] ^= 1 << (at % 8);
            }
            std::fs::write(&path, &bytes)?;
            std::process::exit(WORKER_CHAOS_EXIT_CODE);
        }
        _ => write_snapshot(&path, &bytes).map_err(SweepError::from),
    }
}

// ------------------------------------------------------------ worker

/// How one cell execution should checkpoint (and misbehave).
#[derive(Debug, Clone, Default)]
pub struct CellCheckpointing<'a> {
    /// Events between checkpoints; 0 disables checkpointing.
    pub every_events: u64,
    /// Generation base path for this cell — generation `g` is written
    /// to `<path>.<g>`, keeping the last [`GENERATIONS_KEPT`].
    pub path: Option<&'a Path>,
    /// Restore from the youngest readable generation, falling back
    /// one generation per typed restore failure, cold-starting when
    /// the ladder runs out.
    pub resume: bool,
    /// Deterministic chaos fault to self-inject. Kill/stall/torn/
    /// bit-flip faults end or hang the *process* and are only
    /// meaningful in subprocess workers.
    pub fault: Option<ChaosFault>,
}

/// What [`run_cell_checkpointed`] did besides the run itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCheckpointReport {
    /// Checkpoints written during this execution.
    pub checkpoints_written: u32,
    /// Whether execution started from a restored checkpoint.
    pub resumed: bool,
    /// Checkpoint generations skipped (typed restore failure) on the
    /// way to the one that loaded — each is a fallback rung taken.
    pub fallbacks: u32,
}

/// Run one `(spec, seed)` cell with checkpointing, invoking `progress`
/// with `(checkpoints_written, events_fired)` after every checkpoint
/// lands — the hook the worker protocol turns into heartbeats. See
/// [`run_cell_checkpointed`] for the semantics.
pub fn run_cell_with(
    spec: &ScenarioSpec,
    seed: u64,
    ckpt: &CellCheckpointing<'_>,
    progress: &mut dyn FnMut(u32, u64) -> Result<(), SweepError>,
) -> Result<(ScenarioRun, CellCheckpointReport), SweepError> {
    let mut resumed = false;
    let mut fallbacks = 0u32;
    let mut generation = 0u32;
    let mut sim: Option<Sim> = None;
    if let Some(base) = ckpt.path {
        let gens = list_generations(base);
        generation = gens.last().copied().unwrap_or(0);
        if ckpt.resume {
            // The fallback ladder: youngest generation first; any
            // typed restore failure deletes the corrupt rung and
            // falls back one generation; running out of rungs
            // cold-restarts the cell from scratch below.
            for &g in gens.iter().rev() {
                let path = generation_path(base, g);
                let restored = read_snapshot(&path)
                    .and_then(|bytes| Sim::restore(&bytes, scenario_population(spec, seed)));
                match restored {
                    Ok(s) => {
                        sim = Some(s);
                        resumed = true;
                        break;
                    }
                    Err(_) => {
                        fallbacks += 1;
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
    }
    let mut sim = match sim {
        Some(sim) => sim,
        None => scenario_sim(spec, seed),
    };
    let horizon = Minute(spec.minutes);
    let mut written = 0u32;
    match (ckpt.every_events, ckpt.path) {
        (0, _) | (_, None) => {
            sim.run_budgeted(horizon, u64::MAX);
        }
        (every, Some(base)) => {
            while !sim.run_budgeted(horizon, every) {
                generation += 1;
                written += 1;
                write_checkpoint_generation(base, generation, &sim, written, ckpt.fault)?;
                if generation > GENERATIONS_KEPT {
                    let _ =
                        std::fs::remove_file(generation_path(base, generation - GENERATIONS_KEPT));
                }
                match ckpt.fault {
                    Some(ChaosFault::Kill { after_checkpoints })
                        if after_checkpoints == written =>
                    {
                        std::process::exit(WORKER_KILL_EXIT_CODE);
                    }
                    Some(ChaosFault::Stall { after_checkpoints })
                        if after_checkpoints == written =>
                    {
                        // Hang silently: the checkpoint above survives,
                        // heartbeats stop, and only the watchdog's
                        // SIGKILL ends this loop.
                        loop {
                            std::thread::sleep(Duration::from_secs(3600));
                        }
                    }
                    _ => {}
                }
                progress(written, sim.events_fired())?;
            }
        }
    }
    Ok((
        scenario_run(spec, seed, &sim),
        CellCheckpointReport {
            checkpoints_written: written,
            resumed,
            fallbacks,
        },
    ))
}

/// Run one `(spec, seed)` cell with generational checkpointing:
/// resume from the youngest readable generation when asked, then
/// alternate `run_budgeted` slices of `every_events` with atomic
/// snapshot writes until the horizon is drained. The result is
/// bit-identical to [`crate::sweep::run_scenario`] — checkpointing
/// only pauses the simulation, never perturbs it, and a resume that
/// fell down the whole ladder replays from scratch to the same bytes.
pub fn run_cell_checkpointed(
    spec: &ScenarioSpec,
    seed: u64,
    ckpt: &CellCheckpointing<'_>,
) -> Result<(ScenarioRun, CellCheckpointReport), SweepError> {
    run_cell_with(spec, seed, ckpt, &mut |_, _| Ok(()))
}

/// Emit a deliberately malformed frame in place of a `Done` response.
fn write_corrupt_frame<W: Write>(w: &mut W, kind: CorruptFrameKind) -> io::Result<()> {
    match kind {
        CorruptFrameKind::Garbage => {
            const GARBAGE_LEN: u32 = 16;
            w.write_all(&GARBAGE_LEN.to_le_bytes())?;
            w.write_all(&[0xFFu8; GARBAGE_LEN as usize])?;
        }
        CorruptFrameKind::Oversized => {
            w.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())?;
        }
        CorruptFrameKind::Truncated => {
            w.write_all(&64u32.to_le_bytes())?;
            w.write_all(b"short")?;
        }
    }
    w.flush()
}

/// Serve one [`CellRequest`]: heartbeat immediately, run the cell
/// (panic-isolated — a poisoned scenario yields
/// [`CellOutcome::Panicked`], not a dead worker) with a heartbeat
/// after every checkpoint, then send `Done` — or, under a
/// corrupt-frame chaos fault, garbage instead.
fn serve_cell<W: Write>(req: &CellRequest, output: &mut W) -> Result<(), SweepError> {
    write_frame(
        output,
        &WorkerFrame::Heartbeat(Heartbeat {
            cell: req.cell,
            events_done: 0,
            checkpoints_written: 0,
        }),
    )?;
    let path = req.checkpoint_path.as_ref().map(PathBuf::from);
    let ckpt = CellCheckpointing {
        every_events: req.checkpoint_every,
        path: path.as_deref(),
        resume: req.resume,
        fault: req.fault,
    };
    // AssertUnwindSafe: a panicking cell's partially built Sim is
    // dropped during the unwind; only the outcome value escapes. The
    // output stream is reused after the unwind only for the complete
    // Done frame, never a partial one.
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_cell_with(&req.spec, req.seed, &ckpt, &mut |written, events| {
            if let Some(ChaosFault::Dawdle { after_checkpoints }) = req.fault {
                if written >= after_checkpoints {
                    // Alive but useless: heartbeats keep flowing while
                    // progress stops. Only the cell deadline (and its
                    // SIGKILL) ends this loop.
                    loop {
                        write_frame(
                            output,
                            &WorkerFrame::Heartbeat(Heartbeat {
                                cell: req.cell,
                                events_done: events,
                                checkpoints_written: written,
                            }),
                        )?;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            write_frame(
                output,
                &WorkerFrame::Heartbeat(Heartbeat {
                    cell: req.cell,
                    events_done: events,
                    checkpoints_written: written,
                }),
            )
            .map_err(SweepError::Io)
        })
    }));
    let (outcome, report) = match result {
        Ok(Ok((run, report))) => (CellOutcome::Ok(run), Some(report)),
        Ok(Err(e)) => (
            CellOutcome::Panicked {
                scenario: req.spec.name.clone(),
                seed: req.seed,
                message: format!("checkpoint error: {e}"),
            },
            None,
        ),
        Err(p) => (
            CellOutcome::Panicked {
                scenario: req.spec.name.clone(),
                seed: req.seed,
                message: des_core::panic_message(p.as_ref()),
            },
            None,
        ),
    };
    if let Some(ChaosFault::CorruptFrame { kind }) = req.fault {
        write_corrupt_frame(output, kind)?;
        std::process::exit(WORKER_CHAOS_EXIT_CODE);
    }
    write_frame(
        output,
        &WorkerFrame::Done(CellResponse {
            cell: req.cell,
            outcome,
            checkpoints_written: report.as_ref().map_or(0, |r| r.checkpoints_written),
            resumed: report.as_ref().is_some_and(|r| r.resumed),
            fallbacks: report.as_ref().map_or(0, |r| r.fallbacks),
        }),
    )
    .map_err(SweepError::Io)
}

/// The worker side of the protocol: serve cells until EOF. Generic
/// over the transport so tests can drive it over in-memory buffers.
pub fn worker_main<R: Read, W: Write>(input: &mut R, output: &mut W) -> Result<(), SweepError> {
    while let Some(req) = read_frame::<CellRequest, _>(input)? {
        serve_cell(&req, output)?;
    }
    Ok(())
}

/// [`worker_main`] over stdin/stdout — the body of the `sweep_worker`
/// binary. Returns the process exit code.
pub fn worker_main_stdio() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    match worker_main(&mut stdin.lock(), &mut stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("sweep_worker: {e}");
            1
        }
    }
}

// -------------------------------------------------------- supervisor

/// Liveness deadlines the supervisor enforces per cell attempt. Both
/// timers gate only recovery scheduling — which attempt finishes a
/// cell — never the cell's result, so results stay pure functions of
/// `(spec, seed)` at any timeout setting.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Maximum silence between worker frames before the worker is
    /// declared [`FailureKind::Hung`] and SIGKILLed. Heartbeats flow
    /// on checkpoint cadence, so this must comfortably exceed the
    /// wall time of `checkpoint_every` events.
    pub heartbeat_timeout: Duration,
    /// Wall-clock ceiling for one cell across all its heartbeats;
    /// exceeding it is [`FailureKind::DeadlineExceeded`]. `None`
    /// disables the ceiling.
    pub cell_deadline: Option<Duration>,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            heartbeat_timeout: Duration::from_secs(60),
            cell_deadline: None,
        }
    }
}

/// How [`run_sweep_supervised`] shards, checkpoints, and recovers.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker count — the grid is split into this many contiguous
    /// row-major shards (clamped to the cell count).
    pub workers: usize,
    /// Events between worker checkpoints; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Directory for per-cell checkpoint generations
    /// (`cell_<index>.snap.<gen>`). Required when
    /// `checkpoint_every > 0`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Respawn budget per cell; a worker that dies more often than
    /// this on one cell fails the sweep (strict) or degrades the cell
    /// (lenient).
    pub max_respawns: u32,
    /// Worker subprocess command (program + fixed args). `None` runs
    /// shards in-process (no faults possible, checkpoints still
    /// written).
    pub worker_cmd: Option<Vec<String>>,
    /// Deterministic chaos plan: per grid cell, the fault its worker
    /// self-injects. Empty = no faults. Only meaningful with
    /// subprocess workers.
    pub chaos: Vec<Option<ChaosFault>>,
    /// Liveness deadlines per cell attempt.
    pub watchdog: WatchdogConfig,
}

impl SupervisorConfig {
    /// In-process sharded execution, no checkpointing — behaviourally
    /// the panic-isolated [`crate::sweep::try_run_sweep`], reshaped
    /// through the supervisor path.
    pub fn in_process(workers: usize) -> SupervisorConfig {
        SupervisorConfig {
            workers,
            checkpoint_every: 0,
            checkpoint_dir: None,
            max_respawns: 3,
            worker_cmd: None,
            chaos: Vec::new(),
            watchdog: WatchdogConfig::default(),
        }
    }

    /// Subprocess workers running `cmd`, checkpointing every
    /// `checkpoint_every` events into `dir`.
    pub fn subprocess(
        cmd: Vec<String>,
        workers: usize,
        checkpoint_every: u64,
        dir: PathBuf,
    ) -> SupervisorConfig {
        SupervisorConfig {
            workers,
            checkpoint_every,
            checkpoint_dir: Some(dir),
            max_respawns: 3,
            worker_cmd: Some(cmd),
            chaos: Vec::new(),
            watchdog: WatchdogConfig::default(),
        }
    }

    fn cell_checkpoint_path(&self, cell: usize) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("cell_{cell}.snap")))
    }

    fn fault_for(&self, cell: usize) -> Option<ChaosFault> {
        self.chaos.get(cell).copied().flatten()
    }
}

/// One grid cell: its global row-major index and coordinates.
#[derive(Debug, Clone, Copy)]
struct Cell {
    index: usize,
    spec_idx: usize,
    seed: u64,
}

/// A cell that exhausted its respawn budget under the lenient runner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Grid index of the failed cell.
    pub cell: usize,
    /// Name of its scenario.
    pub scenario: String,
    /// Its seed.
    pub seed: u64,
    /// The failure kind of the final, budget-exhausting attempt.
    pub kind: FailureKind,
    /// Respawns spent before giving up (== `max_respawns`).
    pub respawns: u32,
}

/// The lenient runner's per-cell verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellResult {
    /// The cell's worker produced a response (possibly a panicked
    /// outcome) within the respawn budget.
    Completed(CellOutcome),
    /// The cell exhausted its respawn budget.
    Failed(CellFailure),
}

impl CellResult {
    /// The completed run, if the cell succeeded end to end.
    pub fn run(&self) -> Option<&ScenarioRun> {
        match self {
            CellResult::Completed(o) => o.run(),
            CellResult::Failed(_) => None,
        }
    }

    /// The failure, if the cell exhausted its budget.
    pub fn failure(&self) -> Option<&CellFailure> {
        match self {
            CellResult::Completed(_) => None,
            CellResult::Failed(f) => Some(f),
        }
    }
}

/// Observed worker-failure events by kind, recovered or not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureCounts {
    /// Heartbeat-timeout expiries.
    pub hung: u32,
    /// Pipe closures / process deaths.
    pub crashed: u32,
    /// Undecodable frames.
    pub corrupt_frame: u32,
    /// Checkpoint generations skipped by the fallback ladder.
    pub corrupt_checkpoint: u32,
    /// Cell-deadline expiries.
    pub deadline_exceeded: u32,
}

impl FailureCounts {
    fn note(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::Hung => self.hung += 1,
            FailureKind::Crashed => self.crashed += 1,
            FailureKind::CorruptFrame => self.corrupt_frame += 1,
            FailureKind::CorruptCheckpoint => self.corrupt_checkpoint += 1,
            FailureKind::DeadlineExceeded => self.deadline_exceeded += 1,
        }
    }

    fn merge(&mut self, other: &FailureCounts) {
        self.hung += other.hung;
        self.crashed += other.crashed;
        self.corrupt_frame += other.corrupt_frame;
        self.corrupt_checkpoint += other.corrupt_checkpoint;
        self.deadline_exceeded += other.deadline_exceeded;
    }

    /// Total failure events observed.
    pub fn total(&self) -> u32 {
        self.hung
            + self.crashed
            + self.corrupt_frame
            + self.corrupt_checkpoint
            + self.deadline_exceeded
    }
}

/// What the lenient sweep survived: the degradation ledger returned
/// beside the per-cell results.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepDegradationReport {
    /// Cells in the grid.
    pub cells: usize,
    /// Cells that completed (possibly with a panicked outcome).
    pub completed: usize,
    /// Cells that exhausted their respawn budget.
    pub failed: Vec<CellFailure>,
    /// Worker respawns across the whole sweep.
    pub respawns: u32,
    /// Every observed failure event by kind, recovered or terminal.
    pub observed: FailureCounts,
}

/// A live worker subprocess: its pipes plus the reader thread that
/// turns its stdout into a frame channel the watchdog can wait on
/// with a timeout.
struct Worker {
    child: Child,
    stdin: std::process::ChildStdin,
    frames: Receiver<Result<WorkerFrame, SweepError>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn spawn(cmd: &[String]) -> Result<Worker, SweepError> {
        let program = cmd
            .first()
            .ok_or_else(|| SweepError::BadConfig("empty worker command".into()))?;
        let mut child = Command::new(program)
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| SweepError::Protocol("worker stdin not piped".into()))?;
        let mut stdout = child
            .stdout
            .take()
            .ok_or_else(|| SweepError::Protocol("worker stdout not piped".into()))?;
        let (tx, frames) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name("sweep-worker-reader".into())
            .spawn(move || loop {
                match read_frame::<WorkerFrame, _>(&mut stdout) {
                    Ok(Some(frame)) => {
                        if tx.send(Ok(frame)).is_err() {
                            return;
                        }
                    }
                    // Clean EOF: hang up by dropping the sender.
                    Ok(None) => return,
                    // A decode failure poisons the stream position;
                    // report it and stop reading.
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            })?;
        Ok(Worker {
            child,
            stdin,
            frames,
            reader: Some(reader),
        })
    }

    /// Send one request and await its `Done` response under the
    /// watchdog: heartbeats reset the silence timer, silence past the
    /// heartbeat timeout is `Hung`, blowing the cell deadline (even
    /// with heartbeats flowing) is `DeadlineExceeded`, a decode
    /// failure is `CorruptFrame`, and a broken or closed pipe is
    /// `Crashed`. On `Err` the caller must `kill_and_reap`.
    fn exchange(
        &mut self,
        req: &CellRequest,
        wd: &WatchdogConfig,
    ) -> Result<CellResponse, FailureKind> {
        if write_frame(&mut self.stdin, req).is_err() {
            return Err(FailureKind::Crashed);
        }
        let started = std::time::Instant::now();
        loop {
            let elapsed = started.elapsed();
            let mut wait = wd.heartbeat_timeout;
            let mut deadline_is_nearer = false;
            if let Some(deadline) = wd.cell_deadline {
                let Some(remaining) = deadline.checked_sub(elapsed) else {
                    return Err(FailureKind::DeadlineExceeded);
                };
                if remaining < wait {
                    wait = remaining;
                    deadline_is_nearer = true;
                }
            }
            match self.frames.recv_timeout(wait) {
                Ok(Ok(WorkerFrame::Done(resp))) => return Ok(resp),
                Ok(Ok(WorkerFrame::Heartbeat(_))) => {}
                Ok(Err(SweepError::Frame(_))) => return Err(FailureKind::CorruptFrame),
                Ok(Err(_)) => return Err(FailureKind::Crashed),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(if deadline_is_nearer {
                        FailureKind::DeadlineExceeded
                    } else {
                        FailureKind::Hung
                    });
                }
                Err(RecvTimeoutError::Disconnected) => return Err(FailureKind::Crashed),
            }
        }
    }

    /// SIGKILL the worker and reap it. Safe on an already-dead child;
    /// never blocks (the kill guarantees the wait returns).
    fn kill_and_reap(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }

    /// Grace ticks a clean shutdown waits before escalating to
    /// SIGKILL (at [`SHUTDOWN_POLL`] per tick).
    const SHUTDOWN_GRACE_POLLS: u32 = 200;

    /// Shut the worker down: closing stdin is the clean-exit signal;
    /// a worker that ignores it (hung, stalled, mid-chaos) is
    /// SIGKILLed after a bounded grace period — this path must never
    /// block forever on a child that will not exit.
    fn shutdown(mut self) {
        drop(self.stdin);
        for _ in 0..Self::SHUTDOWN_GRACE_POLLS {
            match self.child.try_wait() {
                Ok(Some(_)) => {
                    if let Some(reader) = self.reader.take() {
                        let _ = reader.join();
                    }
                    return;
                }
                Ok(None) => std::thread::sleep(SHUTDOWN_POLL),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Poll interval of the bounded shutdown grace loop.
const SHUTDOWN_POLL: Duration = Duration::from_millis(10);

/// One shard's lenient results plus its slice of the degradation
/// ledger.
struct ShardOutcome {
    results: Vec<CellResult>,
    respawns: u32,
    observed: FailureCounts,
}

/// Build the row-major cell list.
fn grid_cells(specs: &[ScenarioSpec], seeds: &[u64]) -> Vec<Cell> {
    specs
        .iter()
        .enumerate()
        .flat_map(|(spec_idx, _)| seeds.iter().map(move |&seed| (spec_idx, seed)))
        .enumerate()
        .map(|(index, (spec_idx, seed))| Cell {
            index,
            spec_idx,
            seed,
        })
        .collect()
}

/// Run the full `specs x seeds` grid under the supervisor, failing
/// the whole sweep if any cell exhausts its respawn budget. Outcomes
/// come back in row-major grid order; with no faults anywhere the
/// cell payloads are bit-identical to [`crate::sweep::try_run_sweep`]
/// at any worker count, and with faults they are *still*
/// bit-identical — recovery resumes each killed, hung, or corrupted
/// cell from its youngest readable checkpoint generation.
pub fn run_sweep_supervised(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    cfg: &SupervisorConfig,
) -> Result<Vec<CellOutcome>, SweepError> {
    let (results, report) = run_sweep_supervised_lenient(specs, seeds, cfg)?;
    if let Some(f) = report.failed.first() {
        return Err(SweepError::WorkerExhausted {
            cell: f.cell,
            respawns: f.respawns,
        });
    }
    Ok(results
        .into_iter()
        .filter_map(|r| match r {
            CellResult::Completed(o) => Some(o),
            CellResult::Failed(_) => None,
        })
        .collect())
}

/// The lenient supervised sweep: identical recovery machinery to
/// [`run_sweep_supervised`], but a cell that exhausts its respawn
/// budget degrades to a [`CellFailure`] in grid position instead of
/// sinking the batch — every surviving cell's payload is still
/// byte-identical to a clean sweep's. Returns the per-cell results in
/// row-major order plus the [`SweepDegradationReport`] ledger.
pub fn run_sweep_supervised_lenient(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    cfg: &SupervisorConfig,
) -> Result<(Vec<CellResult>, SweepDegradationReport), SweepError> {
    if cfg.checkpoint_every > 0 && cfg.checkpoint_dir.is_none() {
        return Err(SweepError::BadConfig(
            "checkpoint_every > 0 requires checkpoint_dir".into(),
        ));
    }
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }
    let cells = grid_cells(specs, seeds);
    if cells.is_empty() {
        return Ok((Vec::new(), SweepDegradationReport::default()));
    }
    let workers = cfg.workers.clamp(1, cells.len());
    let chunk = cells.len().div_ceil(workers);
    let shards: Vec<&[Cell]> = cells.chunks(chunk).collect();
    let shard_results = des_core::par_map(&shards, shards.len(), |shard| match &cfg.worker_cmd {
        Some(cmd) => drive_shard_subprocess(cmd, shard, specs, cfg),
        None => Ok(drive_shard_in_process(shard, specs, cfg)),
    });
    let mut results = Vec::with_capacity(cells.len());
    let mut report = SweepDegradationReport {
        cells: cells.len(),
        ..SweepDegradationReport::default()
    };
    for shard_result in shard_results {
        let shard = shard_result?;
        report.respawns += shard.respawns;
        report.observed.merge(&shard.observed);
        for result in shard.results {
            match &result {
                CellResult::Completed(_) => report.completed += 1,
                CellResult::Failed(f) => report.failed.push(f.clone()),
            }
            results.push(result);
        }
    }
    Ok((results, report))
}

/// In-process fallback shard driver: same sharding and checkpoint
/// cadence as the subprocess path, faults ignored (there is no
/// separate process to lose).
fn drive_shard_in_process(
    shard: &[Cell],
    specs: &[ScenarioSpec],
    cfg: &SupervisorConfig,
) -> ShardOutcome {
    let results = shard
        .iter()
        .map(|cell| {
            let spec = &specs[cell.spec_idx];
            let path = cfg.cell_checkpoint_path(cell.index);
            let ckpt = CellCheckpointing {
                every_events: cfg.checkpoint_every,
                path: path.as_deref(),
                resume: false,
                fault: None,
            };
            // AssertUnwindSafe: as in `serve_cell` — only the outcome
            // value escapes the unwind.
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                run_cell_checkpointed(spec, cell.seed, &ckpt)
            })) {
                Ok(Ok((run, _))) => CellOutcome::Ok(run),
                Ok(Err(e)) => CellOutcome::Panicked {
                    scenario: spec.name.clone(),
                    seed: cell.seed,
                    message: format!("checkpoint error: {e}"),
                },
                Err(p) => CellOutcome::Panicked {
                    scenario: spec.name.clone(),
                    seed: cell.seed,
                    message: des_core::panic_message(p.as_ref()),
                },
            };
            if let Some(path) = &path {
                remove_generations(path);
            }
            CellResult::Completed(outcome)
        })
        .collect();
    ShardOutcome {
        results,
        respawns: 0,
        observed: FailureCounts::default(),
    }
}

/// Subprocess shard driver: one worker serves the shard's cells in
/// order; a failure of any [`FailureKind`] SIGKILLs and re-spawns the
/// worker and re-sends the current cell with `resume = true` and the
/// chaos fault stripped. A cell that exhausts the respawn budget
/// becomes a [`CellResult::Failed`] and the driver moves on.
fn drive_shard_subprocess(
    cmd: &[String],
    shard: &[Cell],
    specs: &[ScenarioSpec],
    cfg: &SupervisorConfig,
) -> Result<ShardOutcome, SweepError> {
    let mut worker = Worker::spawn(cmd)?;
    let mut out = ShardOutcome {
        results: Vec::with_capacity(shard.len()),
        respawns: 0,
        observed: FailureCounts::default(),
    };
    for cell in shard {
        let spec = &specs[cell.spec_idx];
        let path = cfg.cell_checkpoint_path(cell.index);
        let mut respawns = 0u32;
        let result = loop {
            let resuming = respawns > 0;
            let req = CellRequest {
                cell: cell.index,
                spec: spec.clone(),
                seed: cell.seed,
                checkpoint_every: cfg.checkpoint_every,
                checkpoint_path: path.as_ref().map(|p| p.to_string_lossy().into_owned()),
                resume: resuming,
                fault: if resuming {
                    None
                } else {
                    cfg.fault_for(cell.index)
                },
            };
            match worker.exchange(&req, &cfg.watchdog) {
                Ok(resp) => {
                    if resp.cell != cell.index {
                        worker.kill_and_reap();
                        return Err(SweepError::Protocol(format!(
                            "worker answered cell {} while running cell {}",
                            resp.cell, cell.index
                        )));
                    }
                    // Fallback rungs the worker took are the
                    // supervisor's only view of checkpoint corruption.
                    out.observed.corrupt_checkpoint += resp.fallbacks;
                    break CellResult::Completed(resp.outcome);
                }
                Err(kind) => {
                    worker.kill_and_reap();
                    out.observed.note(kind);
                    respawns += 1;
                    out.respawns += 1;
                    if respawns > cfg.max_respawns {
                        worker = Worker::spawn(cmd)?;
                        break CellResult::Failed(CellFailure {
                            cell: cell.index,
                            scenario: spec.name.clone(),
                            seed: cell.seed,
                            kind,
                            respawns: respawns - 1,
                        });
                    }
                    worker = Worker::spawn(cmd)?;
                }
            }
        };
        if let Some(path) = &path {
            remove_generations(path);
        }
        out.results.push(result);
    }
    worker.shutdown();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Kernel;
    use crate::population::PopulationConfig;
    use crate::sweep::{run_scenario, try_run_sweep};

    fn toy_specs() -> Vec<ScenarioSpec> {
        let mut quiet = SimConfig::toy(0);
        quiet.submissions_per_minute = 0.05;
        vec![
            ScenarioSpec {
                name: "toy-compat".into(),
                cfg: SimConfig::toy(0),
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::Compat,
                minutes: 240,
            },
            ScenarioSpec {
                name: "toy-streams".into(),
                cfg: quiet,
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::EventStreams,
                minutes: 240,
            },
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("digg-supervisor-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let req = CellRequest {
            cell: 7,
            spec: toy_specs().remove(1),
            seed: 99,
            checkpoint_every: 5_000,
            checkpoint_path: Some("/tmp/cell_7.snap".into()),
            resume: true,
            fault: Some(ChaosFault::BitFlipCheckpoint {
                at_checkpoint: 2,
                bit: 12345,
            }),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let back: CellRequest = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(back.cell, 7);
        assert_eq!(back.seed, 99);
        assert_eq!(back.spec.name, "toy-streams");
        assert_eq!(
            back.spec.cfg.submissions_per_minute.to_bits(),
            0.05f64.to_bits()
        );
        assert!(back.resume);
        assert_eq!(
            back.fault,
            Some(ChaosFault::BitFlipCheckpoint {
                at_checkpoint: 2,
                bit: 12345,
            })
        );
        // The next read hits EOF at a frame boundary: clean shutdown.
        assert!(read_frame::<CellRequest, _>(&mut cursor).unwrap().is_none());
    }

    fn sample_response_frame() -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &WorkerFrame::Done(CellResponse {
                cell: 0,
                outcome: CellOutcome::Ok(run_scenario(&toy_specs()[0], 1)),
                checkpoints_written: 0,
                resumed: false,
                fallbacks: 0,
            }),
        )
        .unwrap();
        buf
    }

    #[test]
    fn truncated_payload_is_a_typed_frame_error() {
        let mut buf = sample_response_frame();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        match read_frame::<WorkerFrame, _>(&mut cursor) {
            Err(SweepError::Frame(FrameError::TruncatedPayload { expected, got })) => {
                assert!(got + 3 == expected as usize);
            }
            other => panic!("expected TruncatedPayload, got {other:?}"),
        }
    }

    #[test]
    fn short_length_prefix_is_a_typed_frame_error_not_clean_eof() {
        for cut in 1..4usize {
            let mut cursor = io::Cursor::new(vec![0x10u8; cut]);
            match read_frame::<WorkerFrame, _>(&mut cursor) {
                Err(SweepError::Frame(FrameError::ShortLengthPrefix { got })) => {
                    assert_eq!(got, cut)
                }
                other => panic!("cut {cut}: expected ShortLengthPrefix, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_a_typed_frame_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        match read_frame::<WorkerFrame, _>(&mut cursor) {
            Err(SweepError::Frame(FrameError::Oversized { len, cap })) => {
                assert_eq!(len, MAX_FRAME_BYTES + 1);
                assert_eq!(cap, MAX_FRAME_BYTES);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_is_a_typed_frame_error() {
        let mut buf = Vec::new();
        write_corrupt_frame(&mut buf, CorruptFrameKind::Garbage).unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame::<WorkerFrame, _>(&mut cursor) {
            Err(SweepError::Frame(FrameError::NotUtf8)) => {}
            other => panic!("expected NotUtf8, got {other:?}"),
        }
        // Valid UTF-8 that isn't the expected JSON shape.
        let mut buf = Vec::new();
        write_frame(&mut buf, &42u32).unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame::<WorkerFrame, _>(&mut cursor) {
            Err(SweepError::Frame(FrameError::BadJson(_))) => {}
            other => panic!("expected BadJson, got {other:?}"),
        }
    }

    #[test]
    fn worker_main_serves_cells_over_buffers() {
        let specs = toy_specs();
        let mut input = Vec::new();
        for (i, seed) in [(0usize, 5u64), (1, 6)] {
            write_frame(
                &mut input,
                &CellRequest {
                    cell: i,
                    spec: specs[i].clone(),
                    seed,
                    checkpoint_every: 0,
                    checkpoint_path: None,
                    resume: false,
                    fault: None,
                },
            )
            .unwrap();
        }
        let mut output = Vec::new();
        worker_main(&mut io::Cursor::new(input), &mut output).unwrap();
        let mut cursor = io::Cursor::new(output);
        let mut done = Vec::new();
        let mut heartbeats = 0usize;
        while let Some(frame) = read_frame::<WorkerFrame, _>(&mut cursor).unwrap() {
            match frame {
                WorkerFrame::Heartbeat(hb) => {
                    assert_eq!(hb.cell, done.len());
                    heartbeats += 1;
                }
                WorkerFrame::Done(resp) => done.push(resp),
            }
        }
        assert_eq!(heartbeats, 2, "one receipt heartbeat per cell");
        for ((i, seed), resp) in [(0usize, 5u64), (1, 6)].into_iter().zip(&done) {
            assert_eq!(resp.cell, i);
            assert_eq!(resp.outcome.run(), Some(&run_scenario(&specs[i], seed)));
            assert!(!resp.resumed);
            assert_eq!(resp.fallbacks, 0);
        }
    }

    #[test]
    fn in_process_supervision_matches_try_run_sweep() {
        let specs = toy_specs();
        let seeds = [1u64, 2, 3];
        let plain = try_run_sweep(&specs, &seeds, 1).unwrap();
        for workers in [1, 2, 5, 16] {
            let cfg = SupervisorConfig::in_process(workers);
            let supervised = run_sweep_supervised(&specs, &seeds, &cfg).unwrap();
            assert_eq!(supervised, plain, "workers = {workers}");
        }
    }

    #[test]
    fn checkpointed_cell_matches_the_uninterrupted_run() {
        let dir = temp_dir("gen-roundtrip");
        let specs = toy_specs();
        let spec = &specs[0];
        let base = dir.join("cell_0.snap");
        let ckpt = CellCheckpointing {
            every_events: 200,
            path: Some(&base),
            resume: false,
            fault: None,
        };
        let (run, report) = run_cell_checkpointed(spec, 11, &ckpt).unwrap();
        assert!(report.checkpoints_written > 0, "cadence never fired");
        assert_eq!(run, run_scenario(spec, 11));
        // Only the youngest GENERATIONS_KEPT generations survive.
        let gens = list_generations(&base);
        assert!(gens.len() <= GENERATIONS_KEPT as usize, "gens: {gens:?}");
        assert_eq!(
            gens.last().copied(),
            Some(report.checkpoints_written),
            "youngest generation tracks the checkpoint count"
        );
        // The youngest generation is a usable resume point: restoring
        // it and draining the horizon reproduces the same run.
        let bytes = read_snapshot(&generation_path(&base, *gens.last().unwrap())).unwrap();
        let mut resumed = Sim::restore(&bytes, scenario_population(spec, 11)).unwrap();
        resumed.run_budgeted(Minute(spec.minutes), u64::MAX);
        assert_eq!(scenario_run(spec, 11, &resumed), run);
        // And the resume path of run_cell_checkpointed takes it.
        let ckpt = CellCheckpointing {
            every_events: 200,
            path: Some(&base),
            resume: true,
            fault: None,
        };
        let (rerun, report) = run_cell_checkpointed(spec, 11, &ckpt).unwrap();
        assert!(report.resumed);
        assert_eq!(report.fallbacks, 0);
        assert_eq!(rerun, run);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_generation_falls_back_one_rung_bit_identically() {
        let dir = temp_dir("gen-fallback");
        let specs = toy_specs();
        let spec = &specs[0];
        let base = dir.join("cell_0.snap");
        let clean = run_scenario(spec, 13);
        let ckpt = CellCheckpointing {
            every_events: 150,
            path: Some(&base),
            resume: false,
            fault: None,
        };
        let (_, report) = run_cell_checkpointed(spec, 13, &ckpt).unwrap();
        let gens = list_generations(&base);
        assert!(
            report.checkpoints_written >= 2 && gens.len() == 2,
            "need a two-rung ladder, got {gens:?}"
        );
        // Flip one bit in the youngest generation: resume must fall
        // back to the older one and still finish bit-identically.
        let youngest = generation_path(&base, gens[1]);
        let mut bytes = std::fs::read(&youngest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&youngest, &bytes).unwrap();
        let resume = CellCheckpointing {
            every_events: 150,
            path: Some(&base),
            resume: true,
            fault: None,
        };
        let (rerun, report) = run_cell_checkpointed(spec, 13, &resume).unwrap();
        assert!(report.resumed, "older generation must restore");
        assert_eq!(report.fallbacks, 1, "exactly one rung skipped");
        assert_eq!(rerun, clean);
        assert!(!youngest.exists(), "corrupt generation must be deleted");

        // Corrupt the whole ladder: the final rung is a cold restart,
        // still bit-identical.
        remove_generations(&base);
        let (_, _) = run_cell_checkpointed(spec, 13, &ckpt).unwrap();
        let gens = list_generations(&base);
        for g in &gens {
            let p = generation_path(&base, *g);
            let mut bytes = std::fs::read(&p).unwrap();
            bytes.truncate(bytes.len() / 4);
            std::fs::write(&p, &bytes).unwrap();
        }
        let (rerun, report) = run_cell_checkpointed(spec, 13, &resume).unwrap();
        assert!(!report.resumed, "whole ladder corrupt means cold restart");
        assert_eq!(report.fallbacks, gens.len() as u32);
        assert_eq!(rerun, clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_kills_a_child_that_ignores_eof() {
        // Regression for the unbounded `child.wait()` in the old
        // shutdown path: `sleep` never reads stdin, so closing it is
        // ignored and only the SIGKILL escalation ends the child. An
        // unfixed shutdown blocks ~5 minutes here and times the suite
        // out.
        let worker = Worker::spawn(&["sleep".to_string(), "300".to_string()]).unwrap();
        worker.shutdown();
    }

    #[test]
    fn watchdog_declares_a_silent_worker_hung_and_degrades_leniently() {
        // `sleep` accepts the request bytes into the pipe buffer but
        // never answers: the heartbeat timeout must trip, classify the
        // worker Hung, burn the respawn budget, and degrade the cell.
        let specs = toy_specs();
        let mut cfg = SupervisorConfig::in_process(1);
        cfg.worker_cmd = Some(vec!["sleep".to_string(), "300".to_string()]);
        cfg.max_respawns = 1;
        cfg.watchdog.heartbeat_timeout = Duration::from_millis(100);
        let (results, report) = run_sweep_supervised_lenient(&specs[..1], &[5], &cfg).unwrap();
        assert_eq!(results.len(), 1);
        let failure = results[0].failure().expect("cell must fail");
        assert_eq!(failure.kind, FailureKind::Hung);
        assert_eq!(failure.respawns, 1);
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.observed.hung, 2, "initial attempt + one respawn");
        assert_eq!(report.respawns, 2);
        // Strict mode surfaces the same situation as WorkerExhausted.
        match run_sweep_supervised(&specs[..1], &[5], &cfg) {
            Err(SweepError::WorkerExhausted {
                cell: 0,
                respawns: 1,
            }) => {}
            other => panic!("expected WorkerExhausted, got {other:?}"),
        }
    }

    #[test]
    fn cell_deadline_outranks_heartbeats() {
        // With the deadline shorter than the heartbeat timeout, a
        // silent worker is classified DeadlineExceeded, not Hung.
        let specs = toy_specs();
        let mut cfg = SupervisorConfig::in_process(1);
        cfg.worker_cmd = Some(vec!["sleep".to_string(), "300".to_string()]);
        cfg.max_respawns = 0;
        cfg.watchdog.heartbeat_timeout = Duration::from_secs(60);
        cfg.watchdog.cell_deadline = Some(Duration::from_millis(100));
        let (results, report) = run_sweep_supervised_lenient(&specs[..1], &[5], &cfg).unwrap();
        let failure = results[0].failure().expect("cell must fail");
        assert_eq!(failure.kind, FailureKind::DeadlineExceeded);
        assert_eq!(report.observed.deadline_exceeded, 1);
    }

    #[test]
    fn checkpointing_requires_a_directory() {
        let cfg = SupervisorConfig {
            checkpoint_every: 100,
            ..SupervisorConfig::in_process(2)
        };
        match run_sweep_supervised(&toy_specs(), &[1], &cfg) {
            Err(SweepError::BadConfig(_)) => {}
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_empty() {
        let cfg = SupervisorConfig::in_process(4);
        assert!(run_sweep_supervised(&[], &[1, 2], &cfg).unwrap().is_empty());
        assert!(run_sweep_supervised(&toy_specs(), &[], &cfg)
            .unwrap()
            .is_empty());
        let (results, report) = run_sweep_supervised_lenient(&[], &[1], &cfg).unwrap();
        assert!(results.is_empty());
        assert_eq!(report, SweepDegradationReport::default());
    }

    #[test]
    fn failure_counts_note_and_merge() {
        let mut a = FailureCounts::default();
        a.note(FailureKind::Hung);
        a.note(FailureKind::CorruptFrame);
        a.note(FailureKind::CorruptFrame);
        let mut b = FailureCounts::default();
        b.note(FailureKind::Crashed);
        b.note(FailureKind::DeadlineExceeded);
        b.note(FailureKind::CorruptCheckpoint);
        a.merge(&b);
        assert_eq!(a.hung, 1);
        assert_eq!(a.crashed, 1);
        assert_eq!(a.corrupt_frame, 2);
        assert_eq!(a.corrupt_checkpoint, 1);
        assert_eq!(a.deadline_exceeded, 1);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn generation_paths_and_listing_are_stable() {
        let dir = temp_dir("gen-list");
        let base = dir.join("cell_3.snap");
        assert!(list_generations(&base).is_empty());
        for g in [2u32, 1, 5] {
            std::fs::write(generation_path(&base, g), b"x").unwrap();
        }
        // Unrelated and non-numeric siblings are ignored.
        std::fs::write(dir.join("cell_3.snap.tmp"), b"x").unwrap();
        std::fs::write(dir.join("cell_30.snap.1"), b"x").unwrap();
        assert_eq!(list_generations(&base), vec![1, 2, 5]);
        remove_generations(&base);
        assert!(list_generations(&base).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
