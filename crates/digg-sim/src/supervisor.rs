//! The fault-tolerant multi-process sweep runner.
//!
//! [`run_sweep_supervised`] shards a `specs x seeds` grid across worker
//! **subprocesses** (DESIGN.md §15). The supervisor assigns each worker
//! a static contiguous row-major shard of the grid and drives it one
//! cell at a time over a stdin/stdout frame protocol; workers
//! checkpoint their simulation every N events through
//! [`digg_snapshot`]'s versioned containers, and a worker that dies
//! mid-cell is re-spawned and resumes from the last checkpoint. Because
//! a restored [`Sim`] is bit-identical to the one that wrote the
//! snapshot, a sweep that lost workers produces output **byte-identical
//! to an uninterrupted run** — the property the `checkpoint_sweep`
//! bench asserts end to end.
//!
//! ## Protocol
//!
//! Frames are `u32` little-endian length + JSON payload, one
//! [`CellRequest`] down / one [`CellResponse`] up per cell, strictly
//! ping-pong (one cell in flight per worker). A worker that reads EOF
//! exits cleanly; a supervisor that reads EOF mid-cell declares the
//! worker dead, re-spawns it (up to
//! [`SupervisorConfig::max_respawns`] per cell), and re-sends the cell
//! with `resume = true` and fault injection disabled.
//!
//! ## Determinism
//!
//! Sharding is static (contiguous chunks, like [`des_core::par_map`])
//! and outcomes are reassembled in grid order, so results don't depend
//! on worker scheduling. Deterministic worker deaths come from
//! [`CellRequest::kill_after_checkpoints`]: the worker kills *itself*
//! (`process::exit`) right after writing its k-th checkpoint, so where
//! a death lands in the event stream is a pure function of the plan —
//! no signal races. With no subprocess binary available the supervisor
//! falls back to running shards in-process (same sharding, same
//! checkpoint cadence, kills ignored), which keeps every consumer
//! runnable in environments that cannot spawn.

use crate::engine::Sim;
use crate::sweep::{
    scenario_population, scenario_run, scenario_sim, CellOutcome, ScenarioRun, ScenarioSpec,
};
use crate::time::Minute;
use digg_snapshot::{read_snapshot, write_snapshot, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Exit code a worker uses when a kill plan tells it to die after a
/// checkpoint — distinguishable from a real crash in worker logs.
pub const WORKER_KILL_EXIT_CODE: i32 = 101;

/// Ceiling on a single protocol frame; a length prefix beyond this is
/// a corrupt stream, not a real message.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Everything that can go wrong driving a supervised sweep.
#[derive(Debug)]
pub enum SweepError {
    /// An I/O error on the worker pipe or a checkpoint file.
    Io(io::Error),
    /// A malformed or out-of-order protocol frame.
    Protocol(String),
    /// A checkpoint could not be written, read, or restored.
    Snapshot(SnapshotError),
    /// A worker died more times than the respawn budget allows.
    WorkerExhausted {
        /// Grid index of the cell being retried when the budget ran out.
        cell: usize,
        /// Respawns attempted for that cell.
        respawns: u32,
    },
    /// The configuration asked for checkpointing without a directory,
    /// or for subprocess workers without a command.
    BadConfig(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep i/o error: {e}"),
            SweepError::Protocol(msg) => write!(f, "sweep protocol error: {msg}"),
            SweepError::Snapshot(e) => write!(f, "sweep checkpoint error: {e}"),
            SweepError::WorkerExhausted { cell, respawns } => write!(
                f,
                "worker for cell {cell} died through all {respawns} respawns"
            ),
            SweepError::BadConfig(msg) => write!(f, "sweep config error: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> SweepError {
        SweepError::Io(e)
    }
}

impl From<SnapshotError> for SweepError {
    fn from(e: SnapshotError) -> SweepError {
        SweepError::Snapshot(e)
    }
}

// ---------------------------------------------------------- protocol

/// Supervisor → worker: run one grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRequest {
    /// Grid index of the cell (row-major over `specs x seeds`).
    pub cell: usize,
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// The cell's seed.
    pub seed: u64,
    /// Events between checkpoints; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Where this cell's checkpoint lives (absent = no checkpointing).
    pub checkpoint_path: Option<String>,
    /// Resume from the checkpoint file if it exists (set on re-sends
    /// after a worker death).
    pub resume: bool,
    /// Fault injection: self-kill right after writing this many
    /// checkpoints. Never set on a resume re-send.
    pub kill_after_checkpoints: Option<u32>,
}

/// Worker → supervisor: the finished cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResponse {
    /// Echo of [`CellRequest::cell`].
    pub cell: usize,
    /// The cell's outcome (a worker-side checkpoint error is reported
    /// as a [`CellOutcome::Panicked`] carrying the rendered error).
    pub outcome: CellOutcome,
    /// Checkpoints the worker wrote while running this cell.
    pub checkpoints_written: u32,
    /// Whether the worker resumed from a checkpoint file.
    pub resumed: bool,
}

/// Write one length-prefixed JSON frame.
fn write_frame<T: Serialize, W: Write>(w: &mut W, msg: &T) -> io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode frame: {e}")))?;
    let len = u32::try_from(json.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed JSON frame; `Ok(None)` on clean EOF at a
/// frame boundary (the shutdown signal).
fn read_frame<T: serde::Deserialize, R: Read>(r: &mut R) -> Result<Option<T>, SweepError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(SweepError::Io(e)),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(SweepError::Protocol(format!(
            "frame length {len} exceeds cap"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let text =
        String::from_utf8(buf).map_err(|_| SweepError::Protocol("frame is not UTF-8".into()))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| SweepError::Protocol(format!("decode frame: {e}")))
}

// ------------------------------------------------------------ worker

/// How one cell execution should checkpoint (and die).
#[derive(Debug, Clone, Default)]
pub struct CellCheckpointing<'a> {
    /// Events between checkpoints; 0 disables checkpointing.
    pub every_events: u64,
    /// Checkpoint file for this cell.
    pub path: Option<&'a Path>,
    /// Restore from `path` if the file exists.
    pub resume: bool,
    /// Self-kill (`process::exit`) after writing this many
    /// checkpoints. Only honoured by subprocess workers.
    pub kill_after_checkpoints: Option<u32>,
}

/// What [`run_cell_checkpointed`] did besides the run itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCheckpointReport {
    /// Checkpoints written during this execution.
    pub checkpoints_written: u32,
    /// Whether execution started from a restored checkpoint.
    pub resumed: bool,
}

/// Run one `(spec, seed)` cell with checkpointing: resume from the
/// checkpoint file when asked (and present), then alternate
/// `run_budgeted` slices of `every_events` with atomic snapshot writes
/// until the horizon is drained. The result is bit-identical to
/// [`crate::sweep::run_scenario`] — checkpointing only pauses the
/// simulation, never perturbs it.
///
/// When `kill_after_checkpoints` is hit the process exits with
/// [`WORKER_KILL_EXIT_CODE`] immediately after the checkpoint lands —
/// the deterministic worker-death fault the recovery tests inject.
pub fn run_cell_checkpointed(
    spec: &ScenarioSpec,
    seed: u64,
    ckpt: &CellCheckpointing<'_>,
) -> Result<(ScenarioRun, CellCheckpointReport), SweepError> {
    let mut resumed = false;
    let mut sim: Option<Sim> = None;
    if ckpt.resume {
        if let Some(path) = ckpt.path {
            if path.exists() {
                let bytes = read_snapshot(path)?;
                sim = Some(Sim::restore(&bytes, scenario_population(spec, seed))?);
                resumed = true;
            }
        }
    }
    let mut sim = match sim {
        Some(sim) => sim,
        None => scenario_sim(spec, seed),
    };
    let horizon = Minute(spec.minutes);
    let mut written = 0u32;
    match (ckpt.every_events, ckpt.path) {
        (0, _) | (_, None) => {
            sim.run_budgeted(horizon, u64::MAX);
        }
        (every, Some(path)) => {
            while !sim.run_budgeted(horizon, every) {
                write_snapshot(path, &sim.snapshot())?;
                written += 1;
                if ckpt.kill_after_checkpoints == Some(written) {
                    std::process::exit(WORKER_KILL_EXIT_CODE);
                }
            }
        }
    }
    Ok((
        scenario_run(spec, seed, &sim),
        CellCheckpointReport {
            checkpoints_written: written,
            resumed,
        },
    ))
}

/// Serve one [`CellRequest`]: run the cell (panic-isolated — a
/// poisoned scenario yields [`CellOutcome::Panicked`], not a dead
/// worker) and package the response.
fn serve_cell(req: &CellRequest) -> CellResponse {
    let path = req.checkpoint_path.as_ref().map(PathBuf::from);
    let ckpt = CellCheckpointing {
        every_events: req.checkpoint_every,
        path: path.as_deref(),
        resume: req.resume,
        kill_after_checkpoints: req.kill_after_checkpoints,
    };
    // AssertUnwindSafe: a panicking cell's partially built Sim is
    // dropped during the unwind; only the outcome value escapes.
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_cell_checkpointed(&req.spec, req.seed, &ckpt)
    }));
    let (outcome, report) = match result {
        Ok(Ok((run, report))) => (CellOutcome::Ok(run), Some(report)),
        Ok(Err(e)) => (
            CellOutcome::Panicked {
                scenario: req.spec.name.clone(),
                seed: req.seed,
                message: format!("checkpoint error: {e}"),
            },
            None,
        ),
        Err(p) => (
            CellOutcome::Panicked {
                scenario: req.spec.name.clone(),
                seed: req.seed,
                message: des_core::panic_message(p.as_ref()),
            },
            None,
        ),
    };
    CellResponse {
        cell: req.cell,
        outcome,
        checkpoints_written: report.map_or(0, |r| r.checkpoints_written),
        resumed: report.is_some_and(|r| r.resumed),
    }
}

/// The worker side of the protocol: serve cells until EOF. Generic
/// over the transport so tests can drive it over in-memory buffers.
pub fn worker_main<R: Read, W: Write>(input: &mut R, output: &mut W) -> Result<(), SweepError> {
    while let Some(req) = read_frame::<CellRequest, _>(input)? {
        let resp = serve_cell(&req);
        write_frame(output, &resp)?;
    }
    Ok(())
}

/// [`worker_main`] over stdin/stdout — the body of the `sweep_worker`
/// binary. Returns the process exit code.
pub fn worker_main_stdio() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    match worker_main(&mut stdin.lock(), &mut stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("sweep_worker: {e}");
            1
        }
    }
}

// -------------------------------------------------------- supervisor

/// How [`run_sweep_supervised`] shards, checkpoints, and recovers.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker count — the grid is split into this many contiguous
    /// row-major shards (clamped to the cell count).
    pub workers: usize,
    /// Events between worker checkpoints; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Directory for per-cell checkpoint files (`cell_<index>.snap`).
    /// Required when `checkpoint_every > 0`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Respawn budget per cell; a worker that dies more often than
    /// this on one cell fails the sweep.
    pub max_respawns: u32,
    /// Worker subprocess command (program + fixed args). `None` runs
    /// shards in-process (no kills possible, checkpoints still
    /// written).
    pub worker_cmd: Option<Vec<String>>,
    /// Deterministic fault plan: per grid cell, self-kill after that
    /// many checkpoints. Empty = no kills. Only meaningful with
    /// subprocess workers.
    pub kill_after_checkpoints: Vec<Option<u32>>,
}

impl SupervisorConfig {
    /// In-process sharded execution, no checkpointing — behaviourally
    /// the panic-isolated [`crate::sweep::try_run_sweep`], reshaped
    /// through the supervisor path.
    pub fn in_process(workers: usize) -> SupervisorConfig {
        SupervisorConfig {
            workers,
            checkpoint_every: 0,
            checkpoint_dir: None,
            max_respawns: 3,
            worker_cmd: None,
            kill_after_checkpoints: Vec::new(),
        }
    }

    /// Subprocess workers running `cmd`, checkpointing every
    /// `checkpoint_every` events into `dir`.
    pub fn subprocess(
        cmd: Vec<String>,
        workers: usize,
        checkpoint_every: u64,
        dir: PathBuf,
    ) -> SupervisorConfig {
        SupervisorConfig {
            workers,
            checkpoint_every,
            checkpoint_dir: Some(dir),
            max_respawns: 3,
            worker_cmd: Some(cmd),
            kill_after_checkpoints: Vec::new(),
        }
    }

    fn cell_checkpoint_path(&self, cell: usize) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("cell_{cell}.snap")))
    }

    fn kill_for(&self, cell: usize) -> Option<u32> {
        self.kill_after_checkpoints.get(cell).copied().flatten()
    }
}

/// One grid cell: its global row-major index and coordinates.
#[derive(Debug, Clone, Copy)]
struct Cell {
    index: usize,
    spec_idx: usize,
    seed: u64,
}

/// Run the full `specs x seeds` grid under the supervisor. Outcomes
/// come back in row-major grid order; with no faults anywhere the cell
/// payloads are bit-identical to [`crate::sweep::try_run_sweep`] at
/// any worker count, and with faults they are *still* bit-identical —
/// recovery resumes each killed cell from its last checkpoint.
pub fn run_sweep_supervised(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    cfg: &SupervisorConfig,
) -> Result<Vec<CellOutcome>, SweepError> {
    if cfg.checkpoint_every > 0 && cfg.checkpoint_dir.is_none() {
        return Err(SweepError::BadConfig(
            "checkpoint_every > 0 requires checkpoint_dir".into(),
        ));
    }
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }
    let cells: Vec<Cell> = specs
        .iter()
        .enumerate()
        .flat_map(|(spec_idx, _)| seeds.iter().map(move |&seed| (spec_idx, seed)))
        .enumerate()
        .map(|(index, (spec_idx, seed))| Cell {
            index,
            spec_idx,
            seed,
        })
        .collect();
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    let workers = cfg.workers.clamp(1, cells.len());
    let chunk = cells.len().div_ceil(workers);
    let shards: Vec<&[Cell]> = cells.chunks(chunk).collect();
    let results = des_core::par_map(&shards, shards.len(), |shard| match &cfg.worker_cmd {
        Some(cmd) => drive_shard_subprocess(cmd, shard, specs, cfg),
        None => Ok(drive_shard_in_process(shard, specs, cfg)),
    });
    let mut outcomes = Vec::with_capacity(cells.len());
    for shard_result in results {
        outcomes.extend(shard_result?);
    }
    Ok(outcomes)
}

/// In-process fallback shard driver: same sharding and checkpoint
/// cadence as the subprocess path, kills ignored (there is no separate
/// process to lose).
fn drive_shard_in_process(
    shard: &[Cell],
    specs: &[ScenarioSpec],
    cfg: &SupervisorConfig,
) -> Vec<CellOutcome> {
    shard
        .iter()
        .map(|cell| {
            let spec = &specs[cell.spec_idx];
            let path = cfg.cell_checkpoint_path(cell.index);
            let ckpt = CellCheckpointing {
                every_events: cfg.checkpoint_every,
                path: path.as_deref(),
                resume: false,
                kill_after_checkpoints: None,
            };
            // AssertUnwindSafe: as in `serve_cell` — only the outcome
            // value escapes the unwind.
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                run_cell_checkpointed(spec, cell.seed, &ckpt)
            })) {
                Ok(Ok((run, _))) => CellOutcome::Ok(run),
                Ok(Err(e)) => CellOutcome::Panicked {
                    scenario: spec.name.clone(),
                    seed: cell.seed,
                    message: format!("checkpoint error: {e}"),
                },
                Err(p) => CellOutcome::Panicked {
                    scenario: spec.name.clone(),
                    seed: cell.seed,
                    message: des_core::panic_message(p.as_ref()),
                },
            };
            if let Some(path) = &path {
                let _ = std::fs::remove_file(path);
            }
            outcome
        })
        .collect()
}

/// A live worker subprocess with its pipe handles.
struct Worker {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: std::process::ChildStdout,
}

impl Worker {
    fn spawn(cmd: &[String]) -> Result<Worker, SweepError> {
        let program = cmd
            .first()
            .ok_or_else(|| SweepError::BadConfig("empty worker command".into()))?;
        let mut child = Command::new(program)
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| SweepError::Protocol("worker stdin not piped".into()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| SweepError::Protocol("worker stdout not piped".into()))?;
        Ok(Worker {
            child,
            stdin,
            stdout,
        })
    }

    /// Send one request and await its response. Any pipe failure —
    /// write error, EOF, read error — reports the worker as dead.
    fn exchange(&mut self, req: &CellRequest) -> Result<CellResponse, WorkerDeath> {
        write_frame(&mut self.stdin, req).map_err(|_| WorkerDeath)?;
        match read_frame::<CellResponse, _>(&mut self.stdout) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) | Err(SweepError::Io(_)) => Err(WorkerDeath),
            // A malformed frame is unrecoverable garbage, not a death:
            // surface it instead of respawning forever. Reported as a
            // death so the caller's respawn budget bounds it anyway.
            Err(_) => Err(WorkerDeath),
        }
    }

    fn shutdown(mut self) {
        // Closing stdin is the shutdown signal; reap the child so no
        // zombie outlives the sweep.
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

/// Marker: the worker's pipes broke (crash, kill, or malformed frame).
struct WorkerDeath;

/// Subprocess shard driver: one worker serves the shard's cells in
/// order; a death re-spawns the worker and re-sends the current cell
/// with `resume = true` and fault injection stripped.
fn drive_shard_subprocess(
    cmd: &[String],
    shard: &[Cell],
    specs: &[ScenarioSpec],
    cfg: &SupervisorConfig,
) -> Result<Vec<CellOutcome>, SweepError> {
    let mut worker = Worker::spawn(cmd)?;
    let mut outcomes = Vec::with_capacity(shard.len());
    for cell in shard {
        let spec = &specs[cell.spec_idx];
        let path = cfg.cell_checkpoint_path(cell.index);
        let mut respawns = 0u32;
        loop {
            let resuming = respawns > 0;
            let req = CellRequest {
                cell: cell.index,
                spec: spec.clone(),
                seed: cell.seed,
                checkpoint_every: cfg.checkpoint_every,
                checkpoint_path: path.as_ref().map(|p| p.to_string_lossy().into_owned()),
                resume: resuming,
                kill_after_checkpoints: if resuming {
                    None
                } else {
                    cfg.kill_for(cell.index)
                },
            };
            match worker.exchange(&req) {
                Ok(resp) => {
                    if resp.cell != cell.index {
                        return Err(SweepError::Protocol(format!(
                            "worker answered cell {} while running cell {}",
                            resp.cell, cell.index
                        )));
                    }
                    outcomes.push(resp.outcome);
                    if let Some(path) = &path {
                        let _ = std::fs::remove_file(path);
                    }
                    break;
                }
                Err(WorkerDeath) => {
                    let _ = worker.child.wait();
                    respawns += 1;
                    if respawns > cfg.max_respawns {
                        return Err(SweepError::WorkerExhausted {
                            cell: cell.index,
                            respawns: respawns - 1,
                        });
                    }
                    worker = Worker::spawn(cmd)?;
                }
            }
        }
    }
    worker.shutdown();
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Kernel;
    use crate::population::PopulationConfig;
    use crate::sweep::{run_scenario, try_run_sweep};

    fn toy_specs() -> Vec<ScenarioSpec> {
        let mut quiet = SimConfig::toy(0);
        quiet.submissions_per_minute = 0.05;
        vec![
            ScenarioSpec {
                name: "toy-compat".into(),
                cfg: SimConfig::toy(0),
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::Compat,
                minutes: 240,
            },
            ScenarioSpec {
                name: "toy-streams".into(),
                cfg: quiet,
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::EventStreams,
                minutes: 240,
            },
        ]
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let req = CellRequest {
            cell: 7,
            spec: toy_specs().remove(1),
            seed: 99,
            checkpoint_every: 5_000,
            checkpoint_path: Some("/tmp/cell_7.snap".into()),
            resume: true,
            kill_after_checkpoints: Some(2),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let back: CellRequest = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(back.cell, 7);
        assert_eq!(back.seed, 99);
        assert_eq!(back.spec.name, "toy-streams");
        assert_eq!(
            back.spec.cfg.submissions_per_minute.to_bits(),
            0.05f64.to_bits()
        );
        assert!(back.resume);
        assert_eq!(back.kill_after_checkpoints, Some(2));
        // The next read hits EOF at a frame boundary: clean shutdown.
        assert!(read_frame::<CellRequest, _>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &CellResponse {
                cell: 0,
                outcome: CellOutcome::Ok(run_scenario(&toy_specs()[0], 1)),
                checkpoints_written: 0,
                resumed: false,
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        match read_frame::<CellResponse, _>(&mut cursor) {
            Err(SweepError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn worker_main_serves_cells_over_buffers() {
        let specs = toy_specs();
        let mut input = Vec::new();
        for (i, seed) in [(0usize, 5u64), (1, 6)] {
            write_frame(
                &mut input,
                &CellRequest {
                    cell: i,
                    spec: specs[i].clone(),
                    seed,
                    checkpoint_every: 0,
                    checkpoint_path: None,
                    resume: false,
                    kill_after_checkpoints: None,
                },
            )
            .unwrap();
        }
        let mut output = Vec::new();
        worker_main(&mut io::Cursor::new(input), &mut output).unwrap();
        let mut cursor = io::Cursor::new(output);
        for (i, seed) in [(0usize, 5u64), (1, 6)] {
            let resp: CellResponse = read_frame(&mut cursor).unwrap().expect("response");
            assert_eq!(resp.cell, i);
            assert_eq!(resp.outcome.run(), Some(&run_scenario(&specs[i], seed)));
            assert!(!resp.resumed);
        }
        assert!(read_frame::<CellResponse, _>(&mut cursor)
            .unwrap()
            .is_none());
    }

    #[test]
    fn in_process_supervision_matches_try_run_sweep() {
        let specs = toy_specs();
        let seeds = [1u64, 2, 3];
        let plain = try_run_sweep(&specs, &seeds, 1).unwrap();
        for workers in [1, 2, 5, 16] {
            let cfg = SupervisorConfig::in_process(workers);
            let supervised = run_sweep_supervised(&specs, &seeds, &cfg).unwrap();
            assert_eq!(supervised, plain, "workers = {workers}");
        }
    }

    #[test]
    fn checkpointed_cell_matches_the_uninterrupted_run() {
        let dir = std::env::temp_dir().join(format!("digg-supervisor-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let specs = toy_specs();
        let spec = &specs[0];
        let path = dir.join("cell_0.snap");
        let ckpt = CellCheckpointing {
            every_events: 200,
            path: Some(&path),
            resume: false,
            kill_after_checkpoints: None,
        };
        let (run, report) = run_cell_checkpointed(spec, 11, &ckpt).unwrap();
        assert!(report.checkpoints_written > 0, "cadence never fired");
        assert_eq!(run, run_scenario(spec, 11));
        // The last checkpoint is a usable resume point: restoring it
        // and draining the horizon reproduces the same run.
        let bytes = read_snapshot(&path).unwrap();
        let mut resumed = Sim::restore(&bytes, scenario_population(spec, 11)).unwrap();
        resumed.run_budgeted(Minute(spec.minutes), u64::MAX);
        assert_eq!(scenario_run(spec, 11, &resumed), run);
        // And the resume path of run_cell_checkpointed takes it.
        let ckpt = CellCheckpointing {
            every_events: 200,
            path: Some(&path),
            resume: true,
            kill_after_checkpoints: None,
        };
        let (rerun, report) = run_cell_checkpointed(spec, 11, &ckpt).unwrap();
        assert!(report.resumed);
        assert_eq!(rerun, run);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn checkpointing_requires_a_directory() {
        let cfg = SupervisorConfig {
            checkpoint_every: 100,
            ..SupervisorConfig::in_process(2)
        };
        match run_sweep_supervised(&toy_specs(), &[1], &cfg) {
            Err(SweepError::BadConfig(_)) => {}
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_empty() {
        let cfg = SupervisorConfig::in_process(4);
        assert!(run_sweep_supervised(&[], &[1, 2], &cfg).unwrap().is_empty());
        assert!(run_sweep_supervised(&toy_specs(), &[], &cfg)
            .unwrap()
            .is_empty());
    }
}
