//! Promotion algorithms.
//!
//! Digg's real algorithm was secret and changed regularly (§3); the
//! paper pins down one hard observable — "we did not see any
//! front-page stories with fewer than 43 votes, nor … any stories in
//! the upcoming queue with more than 42 votes" — and discusses the
//! September 2006 change that added "unique digging diversity of the
//! individuals digging the story". We implement both:
//!
//! * [`ThresholdPromoter`] — promote when the raw vote count reaches
//!   the threshold (43) while the story is still queue-eligible;
//! * [`DiversityPromoter`] — weight each vote by whether it came from
//!   inside the network of prior voters (in-network votes count less),
//!   the post-controversy variant. Used by ablation ABL2.

use crate::story::Story;
use crate::time::Minute;
use digg_snapshot::{ByteReader, ByteWriter, Codec, SnapshotError};
use social_graph::SocialGraph;

/// Per-story incremental promoter state: what a rule has folded from
/// the vote prefix it has already seen, so a re-check after new votes
/// costs O(new votes), not O(all votes).
///
/// Owned by the engine (one per story), handed back to the promoter on
/// each [`Promoter::should_promote_with`] call. Rules that need no
/// state use [`PromoterState::Stateless`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PromoterState {
    /// The rule recomputes from story counts; nothing to fold.
    Stateless,
    /// Running state of [`DiversityPromoter`].
    Diversity {
        /// Diversity-weighted vote sum over the applied prefix.
        weighted: f64,
        /// Votes folded so far (prefix length).
        applied: usize,
    },
}

/// Checkpoint encoding. The `weighted` f64 is stored as its exact bit
/// pattern: a restored diversity fold continues from the identical
/// partial sum, which is what keeps resumed promotion decisions
/// bit-identical to an uninterrupted run.
impl Codec for PromoterState {
    fn encode(&self, out: &mut ByteWriter) {
        match *self {
            PromoterState::Stateless => out.put_u8(0),
            PromoterState::Diversity { weighted, applied } => {
                out.put_u8(1);
                out.put_f64(weighted);
                out.put_usize(applied);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<PromoterState, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(PromoterState::Stateless),
            1 => Ok(PromoterState::Diversity {
                weighted: r.get_f64()?,
                applied: r.get_usize()?,
            }),
            t => Err(SnapshotError::Malformed(format!("promoter state tag {t}"))),
        }
    }
}

/// Decides whether an upcoming story should be promoted right now.
///
/// `Send + Sync` so a finished [`Sim`](crate::Sim) can be shared
/// across threads (e.g. a `OnceLock` in the bench harness);
/// promoters are stateless decision rules — per-story *incremental*
/// state lives in a caller-owned [`PromoterState`].
pub trait Promoter: Send + Sync {
    /// Returns `true` when `story` should move to the front page.
    /// `graph` is the watch graph at decision time (Digg's algorithm
    /// had access to the live network).
    fn should_promote(&self, story: &Story, graph: &SocialGraph, now: Minute) -> bool;

    /// Fresh per-story state for the incremental
    /// [`should_promote_with`](Promoter::should_promote_with) path.
    fn new_state(&self) -> PromoterState {
        PromoterState::Stateless
    }

    /// Incremental promotion check: fold only the votes `state` has
    /// not seen yet, then decide. Must return exactly what
    /// [`should_promote`](Promoter::should_promote) returns on the
    /// same story — stateless rules simply delegate, and the
    /// tick-loop baseline (which stays on the batch path) holds the
    /// two answers against each other across whole simulations.
    fn should_promote_with(
        &self,
        _state: &mut PromoterState,
        story: &Story,
        graph: &SocialGraph,
        now: Minute,
    ) -> bool {
        self.should_promote(story, graph, now)
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Promote at a raw vote-count threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdPromoter {
    /// Votes required (43 reproduces the paper's boundary).
    pub min_votes: usize,
}

impl Promoter for ThresholdPromoter {
    fn should_promote(&self, story: &Story, _graph: &SocialGraph, _now: Minute) -> bool {
        story.vote_count() >= self.min_votes
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// Promote at a *diversity-weighted* vote threshold: the `k`-th vote
/// counts `in_network_weight` (< 1) if the voter was a fan of any
/// earlier voter (or the submitter), else 1. The submitter's implicit
/// vote counts 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityPromoter {
    /// Required weighted sum.
    pub min_weighted: f64,
    /// Weight of an in-network vote, in `[0, 1]`.
    pub in_network_weight: f64,
}

impl DiversityPromoter {
    /// The weighted vote sum for a story under this rule.
    ///
    /// Single pass: vote `k` is in-network iff one of the voter's
    /// friends voted at a position `< k` — a probe of the voter's
    /// friend row against the story's position index, replacing the
    /// per-vote clone of the growing prior-voter list (O(votes²)
    /// allocation) the rule used to make. The addition order is the
    /// vote order either way, so the f64 sum is bit-identical.
    pub fn weighted_votes(&self, story: &Story, graph: &SocialGraph) -> f64 {
        let mut state = PromoterState::Diversity {
            weighted: 0.0,
            applied: 0,
        };
        self.fold_new_votes(&mut state, story, graph)
    }

    /// Fold the votes `state` has not seen yet; returns the weighted
    /// sum over the story's full current vote list. O(Σ friend-degree
    /// of the *new* voters); the partial sums pass through exactly the
    /// additions a from-scratch [`weighted_votes`](Self::weighted_votes)
    /// performs, so folding in any number of installments yields the
    /// identical f64.
    fn fold_new_votes(&self, state: &mut PromoterState, story: &Story, graph: &SocialGraph) -> f64 {
        let PromoterState::Diversity { weighted, applied } = state else {
            // A mismatched state (another rule's, or stateless) can't
            // be resumed: fold from scratch.
            let mut fresh = PromoterState::Diversity {
                weighted: 0.0,
                applied: 0,
            };
            return self.fold_new_votes(&mut fresh, story, graph);
        };
        // Column scan: the fold touches only voter ids, so walk the
        // dense user column instead of materialising rows.
        let users = story.votes.users();
        while *applied < users.len() {
            let k = *applied;
            let voter = users[k];
            // `voted_before` is position-aware, so catching up on a
            // story that grew by several votes still classifies vote
            // k against exactly the k-prefix.
            let in_network = k > 0
                && graph
                    .friends(voter)
                    .iter()
                    .any(|&f| story.voted_before(f, k));
            *weighted += if in_network {
                self.in_network_weight
            } else {
                1.0 // submitter or out-of-network voter
            };
            *applied += 1;
        }
        *weighted
    }
}

impl Promoter for DiversityPromoter {
    fn should_promote(&self, story: &Story, graph: &SocialGraph, _now: Minute) -> bool {
        self.weighted_votes(story, graph) >= self.min_weighted
    }

    fn new_state(&self) -> PromoterState {
        PromoterState::Diversity {
            weighted: 0.0,
            applied: 0,
        }
    }

    fn should_promote_with(
        &self,
        state: &mut PromoterState,
        story: &Story,
        graph: &SocialGraph,
        _now: Minute,
    ) -> bool {
        self.fold_new_votes(state, story, graph) >= self.min_weighted
    }

    fn name(&self) -> &'static str {
        "diversity"
    }
}

/// Construct the promoter described by a
/// [`PromoterKind`](crate::config::PromoterKind).
pub fn from_kind(kind: crate::config::PromoterKind) -> Box<dyn Promoter> {
    match kind {
        crate::config::PromoterKind::Threshold { min_votes } => {
            Box::new(ThresholdPromoter { min_votes })
        }
        crate::config::PromoterKind::Diversity {
            min_weighted,
            in_network_weight,
        } => Box::new(DiversityPromoter {
            min_weighted,
            in_network_weight,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::story::{StoryId, VoteChannel};
    use social_graph::{GraphBuilder, UserId};

    fn fan_graph() -> SocialGraph {
        // Users 1 and 2 are fans of user 0; user 3 is unconnected.
        let mut b = GraphBuilder::new(4);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.build()
    }

    fn story_with_votes(voters: &[u32]) -> Story {
        let mut s = Story::new(StoryId(0), UserId(0), Minute(0), 0.5);
        for (i, &v) in voters.iter().enumerate() {
            s.add_vote(UserId(v), Minute(i as u64 + 1), VoteChannel::External);
        }
        s
    }

    #[test]
    fn threshold_counts_raw_votes() {
        let g = fan_graph();
        let p = ThresholdPromoter { min_votes: 3 };
        let s = story_with_votes(&[1, 2]);
        assert!(p.should_promote(&s, &g, Minute(10)));
        let s = story_with_votes(&[1]);
        assert!(!p.should_promote(&s, &g, Minute(10)));
        assert_eq!(p.name(), "threshold");
    }

    #[test]
    fn diversity_discounts_in_network_votes() {
        let g = fan_graph();
        let d = DiversityPromoter {
            min_weighted: 3.0,
            in_network_weight: 0.25,
        };
        // Votes by fans 1 and 2 (both in-network): 1 + 0.25 + 0.25.
        let s = story_with_votes(&[1, 2]);
        assert!((d.weighted_votes(&s, &g) - 1.5).abs() < 1e-12);
        assert!(!d.should_promote(&s, &g, Minute(10)));
        // An unconnected voter counts fully: + 1.0 -> 2.5, still short.
        let s = story_with_votes(&[1, 2, 3]);
        assert!((d.weighted_votes(&s, &g) - 2.5).abs() < 1e-12);
        assert_eq!(d.name(), "diversity");
    }

    #[test]
    fn diversity_equals_threshold_when_weight_is_one() {
        let g = fan_graph();
        let d = DiversityPromoter {
            min_weighted: 3.0,
            in_network_weight: 1.0,
        };
        let s = story_with_votes(&[1, 2]);
        assert_eq!(d.weighted_votes(&s, &g), 3.0);
        assert!(d.should_promote(&s, &g, Minute(5)));
    }

    #[test]
    fn weighted_votes_bit_identical_to_prior_list_scan() {
        // The pre-refactor definition: clone the prior-voter list per
        // vote and ask is_fan_of_any. The friends-row probe must
        // reproduce its f64 output bit for bit.
        let reference = |d: &DiversityPromoter, story: &Story, graph: &SocialGraph| -> f64 {
            let mut sum = 0.0;
            for (k, v) in story.votes.iter().enumerate() {
                if k == 0 {
                    sum += 1.0;
                    continue;
                }
                let prior: Vec<_> = story.votes.users()[..k].to_vec();
                sum += if graph.is_fan_of_any(v.user, &prior) {
                    d.in_network_weight
                } else {
                    1.0
                };
            }
            sum
        };
        // A denser graph than fan_graph: chains as well as the hub.
        let mut b = GraphBuilder::new(8);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.add_watch(UserId(3), UserId(2));
        b.add_watch(UserId(5), UserId(4));
        b.add_watch(UserId(6), UserId(5));
        let g = b.build();
        let d = DiversityPromoter {
            min_weighted: 10.0,
            in_network_weight: 0.3,
        };
        for voters in [
            vec![],
            vec![1u32],
            vec![3, 2, 1],
            vec![4, 5, 6, 1, 2, 3, 7],
            vec![7, 6, 5, 4, 3, 2, 1],
        ] {
            let s = story_with_votes(&voters);
            assert_eq!(
                d.weighted_votes(&s, &g).to_bits(),
                reference(&d, &s, &g).to_bits(),
                "voters {voters:?}"
            );
        }
    }

    #[test]
    fn incremental_state_matches_batch_at_every_prefix() {
        let g = fan_graph();
        let d = DiversityPromoter {
            min_weighted: 2.5,
            in_network_weight: 0.25,
        };
        let mut s = Story::new(StoryId(0), UserId(0), Minute(0), 0.5);
        let mut state = d.new_state();
        // Check after every vote: the folded decision and running sum
        // must equal a fresh batch recompute of the same story.
        for (i, &v) in [1u32, 2, 3].iter().enumerate() {
            s.add_vote(UserId(v), Minute(i as u64 + 1), VoteChannel::External);
            let incr = d.should_promote_with(&mut state, &s, &g, Minute(10));
            assert_eq!(incr, d.should_promote(&s, &g, Minute(10)), "after vote {v}");
            let PromoterState::Diversity { weighted, applied } = state else {
                panic!("diversity state expected");
            };
            assert_eq!(applied, s.votes.len());
            assert_eq!(weighted.to_bits(), d.weighted_votes(&s, &g).to_bits());
        }
    }

    #[test]
    fn incremental_state_catches_up_over_multi_vote_gaps() {
        let g = fan_graph();
        let d = DiversityPromoter {
            min_weighted: 99.0,
            in_network_weight: 0.25,
        };
        // Apply all votes first, then fold once: the catch-up fold
        // must classify each vote against its own prefix, not the
        // final voter set.
        let s = story_with_votes(&[3, 1, 2]);
        let mut state = d.new_state();
        d.should_promote_with(&mut state, &s, &g, Minute(10));
        let PromoterState::Diversity { weighted, .. } = state else {
            panic!("diversity state expected");
        };
        // 0 submits (1.0); 3 is nobody's fan (1.0); 1 and 2 are fans
        // of 0 (0.25 each): in-network despite 3 voting between.
        assert!((weighted - 2.5).abs() < 1e-12);
        assert_eq!(weighted.to_bits(), d.weighted_votes(&s, &g).to_bits());
    }

    #[test]
    fn stateless_rules_delegate_to_batch() {
        let g = fan_graph();
        let p = ThresholdPromoter { min_votes: 3 };
        assert_eq!(p.new_state(), PromoterState::Stateless);
        let s = story_with_votes(&[1, 2]);
        let mut state = p.new_state();
        assert!(p.should_promote_with(&mut state, &s, &g, Minute(10)));
        assert_eq!(state, PromoterState::Stateless);
        // A diversity fold handed the wrong state falls back cleanly.
        let d = DiversityPromoter {
            min_weighted: 3.0,
            in_network_weight: 1.0,
        };
        let mut wrong = PromoterState::Stateless;
        assert!(d.should_promote_with(&mut wrong, &s, &g, Minute(10)));
    }

    #[test]
    fn from_kind_dispatch() {
        let p = from_kind(crate::config::PromoterKind::Threshold { min_votes: 2 });
        assert_eq!(p.name(), "threshold");
        let p = from_kind(crate::config::PromoterKind::Diversity {
            min_weighted: 2.0,
            in_network_weight: 0.5,
        });
        assert_eq!(p.name(), "diversity");
    }
}
