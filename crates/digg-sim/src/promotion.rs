//! Promotion algorithms.
//!
//! Digg's real algorithm was secret and changed regularly (§3); the
//! paper pins down one hard observable — "we did not see any
//! front-page stories with fewer than 43 votes, nor … any stories in
//! the upcoming queue with more than 42 votes" — and discusses the
//! September 2006 change that added "unique digging diversity of the
//! individuals digging the story". We implement both:
//!
//! * [`ThresholdPromoter`] — promote when the raw vote count reaches
//!   the threshold (43) while the story is still queue-eligible;
//! * [`DiversityPromoter`] — weight each vote by whether it came from
//!   inside the network of prior voters (in-network votes count less),
//!   the post-controversy variant. Used by ablation ABL2.

use crate::story::Story;
use crate::time::Minute;
use social_graph::SocialGraph;

/// Decides whether an upcoming story should be promoted right now.
///
/// `Send + Sync` so a finished [`Sim`](crate::Sim) can be shared
/// across threads (e.g. a `OnceLock` in the bench harness);
/// promoters are stateless decision rules.
pub trait Promoter: Send + Sync {
    /// Returns `true` when `story` should move to the front page.
    /// `graph` is the watch graph at decision time (Digg's algorithm
    /// had access to the live network).
    fn should_promote(&self, story: &Story, graph: &SocialGraph, now: Minute) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Promote at a raw vote-count threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdPromoter {
    /// Votes required (43 reproduces the paper's boundary).
    pub min_votes: usize,
}

impl Promoter for ThresholdPromoter {
    fn should_promote(&self, story: &Story, _graph: &SocialGraph, _now: Minute) -> bool {
        story.vote_count() >= self.min_votes
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// Promote at a *diversity-weighted* vote threshold: the `k`-th vote
/// counts `in_network_weight` (< 1) if the voter was a fan of any
/// earlier voter (or the submitter), else 1. The submitter's implicit
/// vote counts 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityPromoter {
    /// Required weighted sum.
    pub min_weighted: f64,
    /// Weight of an in-network vote, in `[0, 1]`.
    pub in_network_weight: f64,
}

impl DiversityPromoter {
    /// The weighted vote sum for a story under this rule.
    pub fn weighted_votes(&self, story: &Story, graph: &SocialGraph) -> f64 {
        let mut sum = 0.0;
        let votes = &story.votes;
        for (k, v) in votes.iter().enumerate() {
            if k == 0 {
                sum += 1.0; // submitter
                continue;
            }
            let prior: Vec<_> = votes[..k].iter().map(|p| p.user).collect();
            let in_network = graph.is_fan_of_any(v.user, &prior);
            sum += if in_network {
                self.in_network_weight
            } else {
                1.0
            };
        }
        sum
    }
}

impl Promoter for DiversityPromoter {
    fn should_promote(&self, story: &Story, graph: &SocialGraph, _now: Minute) -> bool {
        self.weighted_votes(story, graph) >= self.min_weighted
    }

    fn name(&self) -> &'static str {
        "diversity"
    }
}

/// Construct the promoter described by a
/// [`PromoterKind`](crate::config::PromoterKind).
pub fn from_kind(kind: crate::config::PromoterKind) -> Box<dyn Promoter> {
    match kind {
        crate::config::PromoterKind::Threshold { min_votes } => {
            Box::new(ThresholdPromoter { min_votes })
        }
        crate::config::PromoterKind::Diversity {
            min_weighted,
            in_network_weight,
        } => Box::new(DiversityPromoter {
            min_weighted,
            in_network_weight,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::story::{StoryId, VoteChannel};
    use social_graph::{GraphBuilder, UserId};

    fn fan_graph() -> SocialGraph {
        // Users 1 and 2 are fans of user 0; user 3 is unconnected.
        let mut b = GraphBuilder::new(4);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.build()
    }

    fn story_with_votes(voters: &[u32]) -> Story {
        let mut s = Story::new(StoryId(0), UserId(0), Minute(0), 0.5);
        for (i, &v) in voters.iter().enumerate() {
            s.add_vote(UserId(v), Minute(i as u64 + 1), VoteChannel::External);
        }
        s
    }

    #[test]
    fn threshold_counts_raw_votes() {
        let g = fan_graph();
        let p = ThresholdPromoter { min_votes: 3 };
        let s = story_with_votes(&[1, 2]);
        assert!(p.should_promote(&s, &g, Minute(10)));
        let s = story_with_votes(&[1]);
        assert!(!p.should_promote(&s, &g, Minute(10)));
        assert_eq!(p.name(), "threshold");
    }

    #[test]
    fn diversity_discounts_in_network_votes() {
        let g = fan_graph();
        let d = DiversityPromoter {
            min_weighted: 3.0,
            in_network_weight: 0.25,
        };
        // Votes by fans 1 and 2 (both in-network): 1 + 0.25 + 0.25.
        let s = story_with_votes(&[1, 2]);
        assert!((d.weighted_votes(&s, &g) - 1.5).abs() < 1e-12);
        assert!(!d.should_promote(&s, &g, Minute(10)));
        // An unconnected voter counts fully: + 1.0 -> 2.5, still short.
        let s = story_with_votes(&[1, 2, 3]);
        assert!((d.weighted_votes(&s, &g) - 2.5).abs() < 1e-12);
        assert_eq!(d.name(), "diversity");
    }

    #[test]
    fn diversity_equals_threshold_when_weight_is_one() {
        let g = fan_graph();
        let d = DiversityPromoter {
            min_weighted: 3.0,
            in_network_weight: 1.0,
        };
        let s = story_with_votes(&[1, 2]);
        assert_eq!(d.weighted_votes(&s, &g), 3.0);
        assert!(d.should_promote(&s, &g, Minute(5)));
    }

    #[test]
    fn from_kind_dispatch() {
        let p = from_kind(crate::config::PromoterKind::Threshold { min_votes: 2 });
        assert_eq!(p.name(), "threshold");
        let p = from_kind(crate::config::PromoterKind::Diversity {
            min_weighted: 2.0,
            in_network_weight: 0.5,
        });
        assert_eq!(p.name(), "diversity");
    }
}
