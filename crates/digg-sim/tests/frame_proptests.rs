//! Fuzz/property tests for the sweep-worker frame decoder: a
//! length-prefixed JSON stream truncated at **any** byte or with
//! **any** single bit flipped must come back as a typed
//! [`FrameError`] (or decode cleanly when the damage is benign) —
//! never a panic, never a generic I/O error masquerading as a dead
//! pipe, and clean EOF only at a true frame boundary. The decoder is
//! driven through the public [`worker_main`] entry, the same path the
//! supervisor's reader thread uses.

use digg_sim::population::PopulationConfig;
use digg_sim::supervisor::{worker_main, CellRequest, FrameError, SweepError, MAX_FRAME_BYTES};
use digg_sim::sweep::ScenarioSpec;
use digg_sim::{Kernel, SimConfig};
use proptest::prelude::*;
use std::io::Cursor;

fn tiny_request() -> CellRequest {
    CellRequest {
        cell: 0,
        spec: ScenarioSpec {
            name: "frame-prop".into(),
            cfg: SimConfig::toy(0),
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::Compat,
            minutes: 120,
        },
        seed: 1,
        checkpoint_every: 0,
        checkpoint_path: None,
        resume: false,
        fault: None,
    }
}

/// Encode one request the way the supervisor frames it.
fn frame_bytes(req: &CellRequest) -> Vec<u8> {
    let json = serde_json::to_string(req).expect("encode request");
    let mut out = (json.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(json.as_bytes());
    out
}

fn run_worker(stream: Vec<u8>) -> Result<(), SweepError> {
    let mut output = Vec::new();
    worker_main(&mut Cursor::new(stream), &mut output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a frame at any byte yields exactly one of three
    /// typed outcomes: clean EOF at cut 0, a short length prefix
    /// inside the first four bytes, a truncated payload anywhere
    /// after — never a panic or an untyped error.
    #[test]
    fn truncation_at_every_cut_is_typed(cut_pick in any::<usize>()) {
        let frame = frame_bytes(&tiny_request());
        let cut = cut_pick % frame.len(); // strictly short of a full frame
        let result = run_worker(frame[..cut].to_vec());
        match (cut, result) {
            (0, Ok(())) => {}
            (c, Err(SweepError::Frame(FrameError::ShortLengthPrefix { got }))) if c < 4 => {
                prop_assert_eq!(got, c);
            }
            (c, Err(SweepError::Frame(FrameError::TruncatedPayload { expected, got }))) if c >= 4 => {
                prop_assert_eq!(expected as usize + 4, frame.len());
                prop_assert_eq!(got, c - 4);
            }
            (c, other) => prop_assert!(false, "cut {}: unexpected {:?}", c, other),
        }
    }

    /// Flipping any single bit never panics the decoder: the stream
    /// either still decodes (benign flips inside string or numeric
    /// payload bytes) or fails with a typed frame error. A flip that
    /// inflates the length prefix past the cap must be the typed
    /// oversize error, not an allocation attempt.
    #[test]
    fn single_bit_flips_never_panic_and_stay_typed(bit_pick in any::<u64>()) {
        let mut frame = frame_bytes(&tiny_request());
        let bit = (bit_pick % (frame.len() as u64 * 8)) as usize;
        frame[bit / 8] ^= 1 << (bit % 8);
        let oversized = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]])
            > MAX_FRAME_BYTES;
        match run_worker(frame) {
            Ok(()) => prop_assert!(!oversized, "oversized length must not decode"),
            Err(SweepError::Frame(e)) => {
                if oversized {
                    prop_assert!(
                        matches!(e, FrameError::Oversized { .. }),
                        "expected Oversized, got {:?}", e
                    );
                }
            }
            Err(other) => prop_assert!(false, "untyped decode failure: {:?}", other),
        }
    }

    /// Appending arbitrary garbage after a valid frame is caught as a
    /// typed error on the *next* read, while the first frame still
    /// serves — damage never travels backwards in the stream.
    #[test]
    fn trailing_garbage_is_contained(garbage in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut stream = frame_bytes(&tiny_request());
        stream.extend_from_slice(&garbage);
        match run_worker(stream) {
            Err(SweepError::Frame(_)) => {}
            Ok(()) => {
                // Only possible if the garbage happened to spell a
                // well-formed frame stream; with < 64 random bytes the
                // length prefix alone makes this astronomically rare,
                // but it is not *wrong* — the decoder owes typed
                // errors, not rejection of lucky inputs.
            }
            Err(other) => prop_assert!(false, "untyped decode failure: {:?}", other),
        }
    }
}
