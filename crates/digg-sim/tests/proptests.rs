//! Property-based tests for the platform simulator: invariants that
//! must hold for any configuration the validator accepts.

use digg_sim::config::PromoterKind;
use digg_sim::population::{Population, PopulationConfig};
use digg_sim::{Sim, SimConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random-but-valid toy configurations.
fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        any::<u64>(),
        0.05..0.5f64, // submissions per minute
        0.0..0.5f64,  // high quality fraction
        3usize..60,   // promotion threshold
        0.0..0.1f64,  // external rate
        0.0..0.4f64,  // friend vote base
        1.0..20.0f64, // frontpage sessions
    )
        .prop_map(|(seed, subs, hq, min_votes, ext, fvb, fps)| {
            let mut cfg = SimConfig::toy(seed);
            cfg.submissions_per_minute = subs;
            cfg.high_quality_fraction = hq;
            cfg.promoter = PromoterKind::Threshold { min_votes };
            cfg.external_rate = ext;
            cfg.friend_vote_base = fvb;
            cfg.friend_vote_quality_slope = 0.1;
            cfg.frontpage_sessions_per_minute = fps;
            cfg
        })
}

fn run_sim(cfg: SimConfig, minutes: u64) -> Sim {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF00D);
    let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
    let mut sim = Sim::new(cfg, pop);
    sim.run(minutes);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_config_upholds_core_invariants(cfg in config_strategy()) {
        prop_assert_eq!(cfg.validate(), Ok(()));
        let min_votes = match cfg.promoter {
            PromoterKind::Threshold { min_votes } => min_votes,
            PromoterKind::Diversity { .. } => unreachable!(),
        };
        let queue_lifetime = cfg.queue_lifetime;
        let sim = run_sim(cfg, 400);

        // Bookkeeping: stories vector matches the submission counter.
        prop_assert_eq!(sim.metrics().submissions as usize, sim.stories().len());

        let mut promotions = 0u64;
        let mut expirations = 0u64;
        for s in sim.stories() {
            // Votes unique per user, chronological, submitter first.
            let mut users: Vec<_> = s.votes.iter().map(|v| v.user).collect();
            prop_assert_eq!(users[0], s.submitter);
            prop_assert!(s.votes.ats().windows(2).all(|w| w[0] <= w[1]));
            users.sort_unstable();
            let n = users.len();
            users.dedup();
            prop_assert_eq!(users.len(), n, "duplicate voters on {}", s.id);

            // No vote precedes submission.
            prop_assert!(s.votes.iter().all(|v| v.at >= s.submitted_at));

            match s.status {
                digg_sim::story::StoryStatus::FrontPage(t) => {
                    promotions += 1;
                    // Promotion happened within the queue window and
                    // at exactly the threshold vote.
                    prop_assert!(t.since(s.submitted_at) <= queue_lifetime);
                    let at_promo = s.votes.iter().filter(|v| v.at <= t).count();
                    prop_assert!(at_promo >= min_votes);
                }
                digg_sim::story::StoryStatus::Expired(t) => {
                    expirations += 1;
                    prop_assert!(t.since(s.submitted_at) >= queue_lifetime);
                }
                digg_sim::story::StoryStatus::Upcoming => {
                    // Still-queued stories are below the threshold.
                    prop_assert!(s.vote_count() < min_votes);
                }
            }
        }
        prop_assert_eq!(promotions, sim.metrics().promotions);
        prop_assert_eq!(expirations, sim.metrics().expirations);

        // Channel metrics sum to the votes recorded on stories
        // (excluding the submitters' implicit votes).
        let story_votes: u64 = sim
            .stories()
            .iter()
            .map(|s| s.vote_count() as u64 - 1)
            .sum();
        prop_assert_eq!(sim.metrics().total_votes(), story_votes);

        // Front page and queue listings agree with story status.
        for (id, _) in sim.front_page().all() {
            prop_assert!(sim.story(*id).is_front_page());
        }
        for id in sim.upcoming_queue().all() {
            prop_assert!(sim.story(id).is_upcoming());
        }
    }

    #[test]
    fn determinism_across_identical_runs(cfg in config_strategy()) {
        let a = run_sim(cfg.clone(), 200);
        let b = run_sim(cfg, 200);
        prop_assert_eq!(a.metrics(), b.metrics());
        for (x, y) in a.stories().iter().zip(b.stories()) {
            prop_assert_eq!(&x.votes, &y.votes);
            prop_assert_eq!(x.quality, y.quality);
        }
    }

    #[test]
    fn zero_rate_channels_stay_silent(seed in any::<u64>()) {
        let mut cfg = SimConfig::toy(seed);
        cfg.external_rate = 0.0;
        cfg.upcoming_sessions_per_minute = 0.0;
        cfg.frontpage_sessions_per_minute = 0.0;
        cfg.fan_exposure_prob = 0.0;
        let sim = run_sim(cfg, 300);
        prop_assert_eq!(sim.metrics().total_votes(), 0);
        prop_assert_eq!(sim.metrics().promotions, 0);
    }

    #[test]
    fn submissions_scale_with_rate(seed in any::<u64>()) {
        let mut lo_cfg = SimConfig::toy(seed);
        lo_cfg.submissions_per_minute = 0.05;
        let mut hi_cfg = SimConfig::toy(seed);
        hi_cfg.submissions_per_minute = 1.0;
        let lo = run_sim(lo_cfg, 600);
        let hi = run_sim(hi_cfg, 600);
        prop_assert!(hi.metrics().submissions > lo.metrics().submissions);
    }
}
