//! Property tests for the simulator checkpoint contract: a `Sim`
//! snapshotted at an arbitrary rest point — a minute boundary or an
//! arbitrary event-budget instant mid-minute — and restored against a
//! regenerated population must finish the run bit-identically to an
//! uninterrupted sim, and the in-process supervised sweep with
//! checkpointing on must be worker-count invariant (1/2/8). Damaged
//! snapshots and mismatched populations come back as typed errors.

use digg_sim::population::PopulationConfig;
use digg_sim::supervisor::{run_sweep_supervised, SupervisorConfig};
use digg_sim::sweep::{run_scenario, scenario_population, scenario_sim, ScenarioSpec};
use digg_sim::{Kernel, Minute, Sim, SimConfig};
use digg_snapshot::{Restore, Snapshot};
use proptest::prelude::*;

const MINUTES: u64 = 240;

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        any::<u64>(),
        0.05..0.4f64, // submissions per minute
        0.0..0.3f64,  // external rate
        any::<bool>(),
    )
        .prop_map(|(seed, subs, ext, streams)| {
            let mut cfg = SimConfig::toy(seed);
            cfg.submissions_per_minute = subs;
            cfg.external_rate = ext;
            ScenarioSpec {
                name: "ckpt-prop".into(),
                cfg,
                pop_cfg: PopulationConfig::toy(400),
                kernel: if streams {
                    Kernel::EventStreams
                } else {
                    Kernel::Compat
                },
                minutes: MINUTES,
            }
        })
}

/// Fingerprint of a finished sim: its own snapshot bytes. Two sims
/// with equal bytes agree on every serialized field — stories, votes,
/// listings, rng streams, event queue, metrics, clock.
fn final_bytes(sim: &Sim) -> Vec<u8> {
    sim.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Checkpoint at an arbitrary minute: restore from the snapshot
    /// (against a freshly regenerated population) and run to the end;
    /// the final state is byte-identical to an uninterrupted run.
    #[test]
    fn minute_checkpoint_resume_is_bit_identical(
        spec in spec_strategy(),
        seed in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let cut = cut_pick % MINUTES;

        let mut straight = scenario_sim(&spec, seed);
        straight.run(MINUTES);

        let mut first = scenario_sim(&spec, seed);
        first.run(cut);
        let bytes = first.snapshot();
        // The worker's situation after a crash: nothing survives but
        // the snapshot file, so the population is regenerated from the
        // spec, never carried over.
        let pop = scenario_population(&spec, seed);
        let mut resumed = Sim::restore(&bytes, pop).map_err(|e| format!("{e:?}"))?;
        prop_assert_eq!(resumed.snapshot(), bytes, "re-snapshot must be byte-stable");
        resumed.run(MINUTES - cut);

        prop_assert_eq!(final_bytes(&resumed), final_bytes(&straight));
        prop_assert_eq!(resumed.metrics(), straight.metrics());
    }

    /// Checkpoint at an arbitrary *event-budget* instant (mid-minute
    /// rest point, the supervisor's checkpoint cadence): resume and
    /// drain; byte-identical to the uninterrupted run.
    #[test]
    fn event_budget_checkpoint_resume_is_bit_identical(
        spec in spec_strategy(),
        seed in any::<u64>(),
        budget in 1..4000u64,
    ) {
        let mut straight = scenario_sim(&spec, seed);
        straight.run(MINUTES);

        let horizon = Minute(MINUTES);
        let mut first = scenario_sim(&spec, seed);
        let done = first.run_budgeted(horizon, budget);
        let bytes = first.snapshot();
        let pop = scenario_population(&spec, seed);
        let mut resumed = Sim::restore(&bytes, pop).map_err(|e| format!("{e:?}"))?;
        if !done {
            while !resumed.run_budgeted(horizon, budget) {}
        }

        prop_assert_eq!(final_bytes(&resumed), final_bytes(&straight));
    }

    /// Any single flipped byte in a sim snapshot is a typed error from
    /// restore — never a panic; and a population regenerated from the
    /// wrong seed is refused by the fingerprint guard.
    #[test]
    fn damaged_snapshot_or_wrong_population_is_a_typed_error(
        spec in spec_strategy(),
        seed in any::<u64>(),
        at_pick in any::<usize>(),
        mask in 1..=255u8,
    ) {
        let mut sim = scenario_sim(&spec, seed);
        sim.run(60);
        let bytes = sim.snapshot();

        let mut corrupt = bytes.clone();
        let at = at_pick % corrupt.len();
        corrupt[at] ^= mask;
        let pop = scenario_population(&spec, seed);
        prop_assert!(Sim::restore(&corrupt, pop).is_err());

        let wrong_pop = scenario_population(&spec, seed ^ 1);
        prop_assert!(Sim::restore(&bytes, wrong_pop).is_err());
    }

    /// The in-process supervised sweep with checkpointing enabled is
    /// worker-count invariant: 1, 2 and 8 workers produce cell rows
    /// equal to straight single-process runs, byte for byte.
    #[test]
    fn supervised_sweep_is_worker_count_invariant(seed in any::<u64>()) {
        let mut quiet = SimConfig::toy(seed);
        quiet.submissions_per_minute = 0.05;
        let specs = vec![
            ScenarioSpec {
                name: "prop-compat".into(),
                cfg: SimConfig::toy(seed),
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::Compat,
                minutes: MINUTES,
            },
            ScenarioSpec {
                name: "prop-streams".into(),
                cfg: quiet,
                pop_cfg: PopulationConfig::toy(400),
                kernel: Kernel::EventStreams,
                minutes: MINUTES,
            },
        ];
        let seeds = [seed ^ 0xA5, seed ^ 0x5A];

        let mut expected = Vec::new();
        for spec in &specs {
            for &s in &seeds {
                expected.push(run_scenario(spec, s));
            }
        }
        let reference = serde_json::to_string(&expected).map_err(|e| e.to_string())?;

        for workers in [1usize, 2, 8] {
            let dir = std::env::temp_dir().join(format!(
                "digg-ckpt-prop-{}-{}",
                std::process::id(),
                workers
            ));
            let mut cfg = SupervisorConfig::in_process(workers);
            cfg.checkpoint_every = 500;
            cfg.checkpoint_dir = Some(dir.clone());
            let outcomes =
                run_sweep_supervised(&specs, &seeds, &cfg).map_err(|e| format!("{e:?}"))?;
            let _ = std::fs::remove_dir_all(&dir);
            let rows: Vec<_> = outcomes.iter().filter_map(|o| o.run()).collect();
            prop_assert_eq!(rows.len(), expected.len(), "{} workers", workers);
            let got = serde_json::to_string(&rows).map_err(|e| e.to_string())?;
            prop_assert_eq!(&got, &reference, "{} workers", workers);
        }
    }
}
