//! The event-driven engine must reproduce the seed tick loop exactly.
//!
//! `baseline::TickSim` is an independent copy of the per-minute loop;
//! `Sim` (Compat kernel) replays it on the `des-core` event queue. The
//! two implementations share no scheduling code, so agreement here —
//! exact `SimMetrics`, exact vote logs, across seeds, configs, and
//! incremental run() splits — pins the port.

use digg_sim::baseline::TickSim;
use digg_sim::config::PromoterKind;
use digg_sim::population::{Population, PopulationConfig};
use digg_sim::{Kernel, Sim, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn population(seed: u64, users: usize) -> Population {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    Population::generate(&mut rng, &PopulationConfig::toy(users))
}

/// Assert full observable equality between the two engines.
fn assert_equivalent(tick: &TickSim, event: &Sim) {
    assert_eq!(tick.metrics(), event.metrics(), "metrics diverged");
    assert_eq!(tick.now(), event.now());
    assert_eq!(tick.stories().len(), event.stories().len());
    for (a, b) in tick.stories().iter().zip(event.stories()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.submitter, b.submitter);
        assert_eq!(a.quality, b.quality, "quality diverged on {}", a.id);
        assert_eq!(a.status, b.status, "status diverged on {}", a.id);
        assert_eq!(a.votes, b.votes, "vote log diverged on {}", a.id);
    }
    assert_eq!(tick.front_page().all(), event.front_page().all());
    assert_eq!(tick.upcoming_queue().all(), event.upcoming_queue().all());
}

fn run_both(cfg: SimConfig, minutes: u64) -> (TickSim, Sim) {
    let pop = population(cfg.seed, cfg.users);
    let mut tick = TickSim::new(cfg.clone(), pop.clone());
    let pop = population(cfg.seed, cfg.users);
    let mut event = Sim::with_kernel(cfg, pop, Kernel::Compat);
    tick.run(minutes);
    event.run(minutes);
    (tick, event)
}

#[test]
fn compat_kernel_matches_tick_loop_across_seeds() {
    // The issue's acceptance bar: identical SimMetrics on toy configs
    // for >= 3 seeds. We also demand identical vote logs and listings.
    for seed in [1u64, 2, 7, 42, 2006] {
        let (tick, event) = run_both(SimConfig::toy(seed), 1200);
        assert!(tick.metrics().submissions > 0, "dead scenario");
        assert_equivalent(&tick, &event);
    }
}

#[test]
fn compat_kernel_matches_under_config_variations() {
    // Knock the rates around so different code paths dominate.
    let mut busy = SimConfig::toy(5);
    busy.submissions_per_minute = 1.0;
    busy.frontpage_sessions_per_minute = 12.0;
    busy.external_rate = 0.2;

    let mut quiet = SimConfig::toy(6);
    quiet.submissions_per_minute = 0.02;
    quiet.upcoming_sessions_per_minute = 0.1;
    quiet.frontpage_sessions_per_minute = 0.1;

    let mut unpromotable = SimConfig::toy(9);
    unpromotable.promoter = PromoterKind::Threshold { min_votes: 100_000 };

    for cfg in [busy, quiet, unpromotable] {
        let (tick, event) = run_both(cfg, 1500);
        assert_equivalent(&tick, &event);
    }
}

#[test]
fn compat_kernel_matches_across_incremental_runs() {
    // digg-data drives the sim in stages (run to scrape, scrape, run
    // on); the staged schedule must not perturb equivalence.
    let cfg = SimConfig::toy(11);
    let pop = population(cfg.seed, cfg.users);
    let mut tick = TickSim::new(cfg.clone(), pop.clone());
    let pop = population(cfg.seed, cfg.users);
    let mut event = Sim::with_kernel(cfg, pop, Kernel::Compat);
    for span in [1u64, 59, 240, 7, 693, 200] {
        tick.run(span);
        event.run(span);
        assert_equivalent(&tick, &event);
    }
}

#[test]
fn submissions_invariant_holds_on_the_event_kernel() {
    // Regression for the `Sim::run` invariant that previously lived
    // only in the doctest: every submission creates exactly one story,
    // on both kernels.
    for kernel in [Kernel::Compat, Kernel::EventStreams] {
        let cfg = SimConfig::toy(123);
        let pop = population(cfg.seed, cfg.users);
        let mut sim = Sim::with_kernel(cfg, pop, kernel);
        sim.run(900);
        assert_eq!(
            sim.metrics().submissions as usize,
            sim.stories().len(),
            "submissions/stories mismatch on {kernel:?}"
        );
    }
}
