//! Dataset serialization.
//!
//! Datasets round-trip through JSON (the workspace's interchange
//! format; see DESIGN.md §5 for the dependency justification). The
//! bench binaries use this to generate a dataset once and share it
//! across experiments.

use crate::model::DiggDataset;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from dataset IO.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "dataset io error: {e}"),
            IoError::Json(e) => write!(f, "dataset json error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> IoError {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> IoError {
        IoError::Json(e)
    }
}

/// Serialize a dataset to a JSON string.
pub fn to_json(ds: &DiggDataset) -> Result<String, IoError> {
    Ok(serde_json::to_string(ds)?)
}

/// Deserialize a dataset from JSON.
pub fn from_json(json: &str) -> Result<DiggDataset, IoError> {
    Ok(serde_json::from_str(json)?)
}

/// Write a dataset to a file.
pub fn save(ds: &DiggDataset, path: &Path) -> Result<(), IoError> {
    fs::write(path, to_json(ds)?)?;
    Ok(())
}

/// Read a dataset from a file.
pub fn load(path: &Path) -> Result<DiggDataset, IoError> {
    from_json(&fs::read_to_string(path)?)
}

/// Export the per-story summary as CSV (one row per record):
/// `story,source,submitter,submitted_at,scraped_votes,final_votes`.
pub fn to_csv(ds: &DiggDataset) -> String {
    let mut out = String::from("story,source,submitter,submitted_at,scraped_votes,final_votes\n");
    for r in ds.all_records() {
        let source = match r.source {
            crate::model::SampleSource::FrontPage => "front_page",
            crate::model::SampleSource::Upcoming => "upcoming",
        };
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.story.0,
            source,
            r.submitter.0,
            r.submitted_at.0,
            r.voters.len(),
            r.final_votes.map(|v| v.to_string()).unwrap_or_default(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SampleSource, StoryRecord};
    use digg_sim::{Minute, StoryId};
    use social_graph::{SocialGraph, UserId};

    fn ds() -> DiggDataset {
        DiggDataset {
            scraped_at: Minute(500),
            front_page: vec![StoryRecord {
                story: StoryId(3),
                submitter: UserId(1),
                submitted_at: Minute(100),
                voters: vec![UserId(1), UserId(2)],
                source: SampleSource::FrontPage,
                final_votes: Some(700),
            }],
            upcoming: vec![StoryRecord {
                story: StoryId(9),
                submitter: UserId(4),
                submitted_at: Minute(480),
                voters: vec![UserId(4)],
                source: SampleSource::Upcoming,
                final_votes: None,
            }],
            network: SocialGraph::empty(5),
            top_users: vec![UserId(1)],
        }
    }

    #[test]
    fn json_roundtrip() {
        let d = ds();
        let json = to_json(&d).unwrap();
        let d2 = from_json(&json).unwrap();
        assert_eq!(d.front_page, d2.front_page);
        assert_eq!(d.upcoming, d2.upcoming);
        assert_eq!(d.scraped_at, d2.scraped_at);
    }

    #[test]
    fn file_roundtrip() {
        let d = ds();
        let dir = std::env::temp_dir().join("digg-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save(&d, &path).unwrap();
        let d2 = load(&path).unwrap();
        assert_eq!(d.front_page, d2.front_page);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn bad_json_is_json_error() {
        let err = from_json("{not json").unwrap_err();
        assert!(matches!(err, IoError::Json(_)));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&ds());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("story,"));
        assert!(lines[1].contains("front_page"));
        assert!(lines[1].ends_with("700"));
        assert!(lines[2].ends_with(",")); // missing final votes
    }
}
