//! End-to-end calibrated dataset generation.
//!
//! [`synthesize`] runs the full June-2006 pipeline:
//!
//! 1. generate the population and run the platform long enough for the
//!    front page to hold the required sample of promoted stories;
//! 2. scrape the story samples and the social network
//!    (June-30-2006 equivalent);
//! 3. keep simulating until votes saturate (paper: "after a few days,
//!    the story's vote count saturates");
//! 4. augment the records with final vote counts
//!    (February-2008 equivalent).
//!
//! The returned [`Synthesis`] keeps the finished simulator alongside
//! the dataset, so tests and ablations can compare the scraper's view
//! against ground truth (true network, latent qualities, vote
//! channels) — comparisons the original authors could not make.

use crate::model::DiggDataset;
use crate::scrape::{augment_final_votes, scrape_dataset, ScrapeConfig};
use digg_sim::scenario;
use digg_sim::time::DAY;
use digg_sim::{Sim, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters for dataset synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Seed for the whole pipeline (population, platform, scraper).
    pub seed: u64,
    /// Scrape parameters.
    pub scrape: ScrapeConfig,
    /// Keep simulating until at least this many stories are promoted
    /// (and at least `min_scrape_day` days have passed) before
    /// scraping.
    pub min_promotions: usize,
    /// Earliest scrape day (gives the queue time to reach steady
    /// state).
    pub min_scrape_days: u64,
    /// Days to continue after the scrape before augmenting final
    /// votes (votes saturate after a few days).
    pub saturation_days: u64,
    /// Hard cap on total simulated minutes (guards against a
    /// mis-calibrated config never reaching `min_promotions`).
    pub max_minutes: u64,
}

impl SynthConfig {
    /// The full-scale June-2006 pipeline.
    pub fn june2006(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            scrape: ScrapeConfig::default(),
            min_promotions: 220,
            min_scrape_days: 3,
            saturation_days: 4,
            max_minutes: 30 * DAY,
        }
    }

    /// A small variant for integration tests (uses
    /// [`scenario::june2006_small`] traffic).
    pub fn small(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            scrape: ScrapeConfig {
                front_page_stories: 60,
                upcoming_stories: 200,
                top_users: 300,
                ..ScrapeConfig::default()
            },
            min_promotions: 60,
            min_scrape_days: 2,
            saturation_days: 3,
            max_minutes: 30 * DAY,
        }
    }
}

/// A synthesized dataset plus the ground truth it was scraped from.
pub struct Synthesis {
    /// The scraper's view (what the paper had).
    pub dataset: DiggDataset,
    /// The finished simulation (what the paper could not see).
    pub sim: Sim,
    /// Spurious links the network reconstruction kept (§3.2 bias),
    /// measured against ground truth.
    pub network_excess_links: usize,
}

/// Run the pipeline with the calibrated June-2006 scenario.
pub fn synthesize(cfg: &SynthConfig) -> Synthesis {
    let sim_cfg = scenario::june2006(cfg.seed);
    let pop = scenario::june2006_population(cfg.seed ^ 0x9E37_79B9);
    synthesize_with(cfg, sim_cfg, pop)
}

/// Run the pipeline with the reduced-scale scenario (for tests).
pub fn synthesize_small(cfg: &SynthConfig) -> Synthesis {
    let (sim_cfg, pop) = scenario::june2006_small(cfg.seed);
    synthesize_with(cfg, sim_cfg, pop)
}

/// Run the pipeline over an arbitrary scenario.
pub fn synthesize_with(
    cfg: &SynthConfig,
    sim_cfg: SimConfig,
    pop: digg_sim::Population,
) -> Synthesis {
    let mut sim = Sim::new(sim_cfg, pop);
    // Phase 1: run to scrape condition.
    sim.run(cfg.min_scrape_days * DAY);
    while (sim.metrics().promotions as usize) < cfg.min_promotions && sim.now().0 < cfg.max_minutes
    {
        sim.run(60);
    }
    // Phase 2: scrape.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5C4A_9E11);
    let (front_page, upcoming) = crate::scrape::scrape_stories(&sim, &cfg.scrape);
    let (network, excess) = crate::scrape::scrape_network(&sim, &cfg.scrape, &mut rng);
    let top_users: Vec<_> = network
        .users_by_fans_desc()
        .into_iter()
        .take(cfg.scrape.top_users)
        .collect();
    let mut dataset = DiggDataset {
        scraped_at: sim.now(),
        front_page,
        upcoming,
        network,
        top_users,
    };
    // Phase 3: saturate.
    sim.run(cfg.saturation_days * DAY);
    // Phase 4: augment.
    augment_final_votes(&sim, &mut dataset.front_page);
    augment_final_votes(&sim, &mut dataset.upcoming);
    Synthesis {
        dataset,
        sim,
        network_excess_links: excess,
    }
}

/// Scrape-only variant over an existing, already-run simulation (used
/// by ablation benches that reuse one expensive run).
pub fn scrape_now(sim: &Sim, scrape: &ScrapeConfig, seed: u64) -> DiggDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    scrape_dataset(sim, scrape, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SampleSource;
    use digg_sim::population::{Population, PopulationConfig};

    /// A miniature synthesis over the toy scenario: exercises all four
    /// phases quickly.
    fn tiny() -> Synthesis {
        let cfg = SynthConfig {
            seed: 5,
            scrape: ScrapeConfig {
                front_page_stories: 10,
                upcoming_stories: 30,
                top_users: 50,
                network_cutoff: 1000,
                network_scraped: 1600,
                ..ScrapeConfig::default()
            },
            min_promotions: 5,
            min_scrape_days: 0,
            saturation_days: 1,
            max_minutes: 3 * DAY,
        };
        let sim_cfg = digg_sim::SimConfig::toy(5);
        let mut rng = StdRng::seed_from_u64(5);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(sim_cfg.users));
        synthesize_with(&cfg, sim_cfg, pop)
    }

    #[test]
    fn pipeline_produces_augmented_samples() {
        let out = tiny();
        assert!(!out.dataset.front_page.is_empty());
        for r in out.dataset.all_records() {
            assert!(r.final_votes.is_some(), "augmentation missed a record");
            let fin = r.final_votes.unwrap() as usize;
            assert!(fin >= r.voters.len());
        }
    }

    #[test]
    fn front_page_precedes_scrape_and_upcoming_is_fresh() {
        let out = tiny();
        let scraped_at = out.dataset.scraped_at;
        for r in &out.dataset.front_page {
            assert_eq!(r.source, SampleSource::FrontPage);
            assert!(r.submitted_at <= scraped_at);
        }
        for r in &out.dataset.upcoming {
            assert_eq!(r.source, SampleSource::Upcoming);
            // Queue lifetime bound: nothing older than 24h (toy: 12h).
            assert!(scraped_at.since(r.submitted_at) <= 12 * 60 + 1);
        }
    }

    #[test]
    fn some_upcoming_stories_get_promoted_after_scrape() {
        let out = tiny();
        let promoted_later = out
            .dataset
            .upcoming
            .iter()
            .filter(|r| out.sim.story(r.story).is_front_page())
            .count();
        // The holdout experiment depends on this phenomenon; the toy
        // scenario promotes readily so it must occur.
        assert!(
            promoted_later > 0,
            "no upcoming story was promoted after the scrape"
        );
    }

    #[test]
    fn ground_truth_is_retained() {
        let out = tiny();
        assert!(out.sim.stories().len() >= out.dataset.front_page.len());
        // The reconstruction bias was measured.
        assert!(out.network_excess_links > 0);
    }
}
