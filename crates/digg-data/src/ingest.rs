//! Strict and lenient dataset ingestion.
//!
//! [`crate::io`] deserializes bytes; this module decides what to do
//! when the deserialized dataset is *wrong*. Two modes:
//!
//! * **Strict** ([`load_strict`] / [`ingest_strict`]) — the current
//!   behaviour with a typed error: any [`crate::validate`] violation
//!   aborts ingestion with [`DataError::Invalid`] carrying the full
//!   violation list. For pipelines that must only ever see pristine
//!   data.
//! * **Lenient** ([`load_lenient`] / [`ingest_lenient`]) — malformed
//!   records are **repaired** where the fix is unambiguous (duplicate
//!   voters deduplicated keep-first, displaced submitters moved back to
//!   the front, out-of-range voters dropped, under-running final vote
//!   counts cleared, a stale Top Users list re-sorted) and
//!   **quarantined** where it is not (promotion-boundary violations:
//!   a front-page record below the threshold cannot be told apart from
//!   a mislabeled queue record). Every action is tagged with the rule
//!   id from the [`crate::validate`] taxonomy that motivated it, and
//!   ingestion returns a [`DegradationReport`] instead of aborting on
//!   the first bad record.
//!
//! The repair order matters and is fixed: per record, out-of-range
//! voters are dropped first, then duplicates, then the submitter is
//! restored to the front, then the final-vote count is checked —
//! so the boundary decision (quarantine) is made on the *repaired*
//! voter list, and a record is never quarantined for a violation a
//! repair would have fixed. The lenient output always passes
//! [`crate::validate::validate`] (see the round-trip proptest in
//! `tests/fault_roundtrip.rs`).

use crate::model::{DiggDataset, SampleSource, StoryRecord};
use crate::validate::{self, Violation};
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::path::Path;

/// Rule ids from the [`crate::validate`] taxonomy, re-used verbatim as
/// repair/quarantine reasons.
mod rules {
    pub const BOUNDARY_FP: &str = "promotion-boundary-fp";
    pub const BOUNDARY_UP: &str = "promotion-boundary-up";
    pub const SUBMITTER_FIRST: &str = "submitter-first";
    pub const NO_DUPLICATE_VOTERS: &str = "no-duplicate-voters";
    pub const FINAL_NOT_BELOW_SCRAPED: &str = "final-not-below-scraped";
    pub const VOTERS_IN_NETWORK: &str = "voters-in-network";
    pub const TOP_USERS_SORTED: &str = "top-users-sorted";
}

/// How to ingest a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Abort with [`DataError::Invalid`] on any violation.
    #[default]
    Strict,
    /// Repair or quarantine bad records, report degradation.
    Lenient,
}

/// Errors from dataset ingestion.
#[derive(Debug)]
pub enum DataError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The dataset deserialized but violates structural invariants
    /// (strict mode only; lenient mode repairs or quarantines
    /// instead).
    Invalid(Vec<Violation>),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "dataset io error: {e}"),
            DataError::Json(e) => write!(f, "dataset json error: {e}"),
            DataError::Invalid(v) => {
                write!(f, "dataset violates {} invariant(s)", v.len())?;
                if let Some(first) = v.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Json(e) => Some(e),
            DataError::Invalid(_) => None,
        }
    }
}

impl From<crate::io::IoError> for DataError {
    fn from(e: crate::io::IoError) -> DataError {
        match e {
            crate::io::IoError::Io(e) => DataError::Io(e),
            crate::io::IoError::Json(e) => DataError::Json(e),
        }
    }
}

/// One record the lenient ingester refused to keep, with the rule that
/// condemned it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QuarantinedRecord {
    /// The condemned story.
    pub story: u32,
    /// Which sample it came from.
    pub source: SampleSource,
    /// Rule id from the [`crate::validate`] taxonomy.
    pub rule: String,
    /// Human-readable details.
    pub detail: String,
}

/// What lenient ingestion did to a dataset: the ledger of kept,
/// repaired and quarantined records, per-rule counts, and the
/// `fan-coverage` informational measurement.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradationReport {
    /// Records in the input (front page + upcoming).
    pub records_seen: usize,
    /// Records in the output.
    pub records_kept: usize,
    /// Records that needed at least one repair (and were kept).
    pub records_repaired: usize,
    /// Records dropped, with reasons.
    pub quarantined: Vec<QuarantinedRecord>,
    /// Individual repairs applied, keyed by the rule id that motivated
    /// each (e.g. `no-duplicate-voters` → number of duplicate entries
    /// removed, `submitter-first` → submitters restored to the front).
    /// Repairs applied to a record that was *later* quarantined are
    /// still counted — every observable degradation lands under
    /// exactly one rule id, here or in [`DegradationReport::quarantined`].
    pub repairs_by_rule: BTreeMap<String, usize>,
    /// Was the Top Users list re-sorted (`top-users-sorted` repair)?
    pub top_users_resorted: bool,
    /// The `fan-coverage` informational measurement: fraction of
    /// distinct voters with at least one observed fan link
    /// ([`crate::validate::fan_coverage`]).
    pub fan_coverage: f64,
}

impl DegradationReport {
    /// Repairs recorded under one rule id.
    pub fn repairs(&self, rule: &str) -> usize {
        self.repairs_by_rule.get(rule).copied().unwrap_or(0)
    }

    /// Quarantined records condemned by one rule id.
    pub fn quarantined_by(&self, rule: &str) -> usize {
        self.quarantined.iter().filter(|q| q.rule == rule).count()
    }

    /// Did ingestion change anything at all?
    pub fn any_degradation(&self) -> bool {
        !self.quarantined.is_empty() || !self.repairs_by_rule.is_empty() || self.top_users_resorted
    }
}

/// Strict ingestion of an in-memory dataset: identity on valid data,
/// [`DataError::Invalid`] otherwise.
pub fn ingest_strict(ds: DiggDataset, threshold: usize) -> Result<DiggDataset, DataError> {
    let violations = validate::validate(&ds, threshold);
    if violations.is_empty() {
        Ok(ds)
    } else {
        Err(DataError::Invalid(violations))
    }
}

/// Lenient ingestion of an in-memory dataset: repair what is
/// unambiguous, quarantine what is not, and report. The returned
/// dataset passes [`crate::validate::validate`].
pub fn ingest_lenient(ds: DiggDataset, threshold: usize) -> (DiggDataset, DegradationReport) {
    let mut report = DegradationReport {
        records_seen: ds.front_page.len() + ds.upcoming.len(),
        ..DegradationReport::default()
    };
    let user_count = ds.network.user_count();
    let front_page = ingest_records(ds.front_page, threshold, user_count, &mut report);
    let upcoming = ingest_records(ds.upcoming, threshold, user_count, &mut report);
    report.records_kept = front_page.len() + upcoming.len();

    // A stale Top Users list (published before the fan lists were
    // re-fetched) is re-derived from the network actually observed.
    let top_users = if is_sorted_by_fans(&ds.network, &ds.top_users) {
        ds.top_users
    } else {
        report.top_users_resorted = true;
        *report
            .repairs_by_rule
            .entry(rules::TOP_USERS_SORTED.to_string())
            .or_insert(0) += 1;
        ds.network
            .users_by_fans_desc()
            .into_iter()
            .take(ds.top_users.len())
            .collect()
    };

    let out = DiggDataset {
        scraped_at: ds.scraped_at,
        front_page,
        upcoming,
        network: ds.network,
        top_users,
    };
    report.fan_coverage = validate::fan_coverage(&out);
    (out, report)
}

/// Dispatch on [`IngestMode`]. In strict mode the report is the empty
/// ledger (nothing was repaired — or the call failed).
pub fn ingest(
    ds: DiggDataset,
    threshold: usize,
    mode: IngestMode,
) -> Result<(DiggDataset, DegradationReport), DataError> {
    match mode {
        IngestMode::Strict => {
            let seen = ds.front_page.len() + ds.upcoming.len();
            let ds = ingest_strict(ds, threshold)?;
            let report = DegradationReport {
                records_seen: seen,
                records_kept: seen,
                fan_coverage: validate::fan_coverage(&ds),
                ..DegradationReport::default()
            };
            Ok((ds, report))
        }
        IngestMode::Lenient => Ok(ingest_lenient(ds, threshold)),
    }
}

/// Load a dataset file strictly: typed errors, no panics, no repairs.
pub fn load_strict(path: &Path, threshold: usize) -> Result<DiggDataset, DataError> {
    let ds = crate::io::load(path)?;
    ingest_strict(ds, threshold)
}

/// Load a dataset file leniently: malformed records are repaired or
/// quarantined and the degradation reported. IO and JSON failures are
/// still hard errors — there is nothing to repair without a dataset.
pub fn load_lenient(
    path: &Path,
    threshold: usize,
) -> Result<(DiggDataset, DegradationReport), DataError> {
    let ds = crate::io::load(path)?;
    Ok(ingest_lenient(ds, threshold))
}

fn is_sorted_by_fans(network: &social_graph::SocialGraph, top: &[social_graph::UserId]) -> bool {
    top.windows(2)
        .all(|w| network.fan_count(w[0]) >= network.fan_count(w[1]))
}

fn ingest_records(
    records: Vec<StoryRecord>,
    threshold: usize,
    user_count: usize,
    report: &mut DegradationReport,
) -> Vec<StoryRecord> {
    let mut out = Vec::with_capacity(records.len());
    for mut r in records {
        let mut repaired = false;
        let mut repair = |report: &mut DegradationReport, rule: &str, n: usize| {
            repaired = true;
            *report.repairs_by_rule.entry(rule.to_string()).or_insert(0) += n;
        };

        // 1. Out-of-range voters cannot be mapped to the observed
        //    network; drop them.
        let before = r.voters.len();
        r.voters.retain(|v| v.index() < user_count);
        if r.voters.len() < before {
            repair(report, rules::VOTERS_IN_NETWORK, before - r.voters.len());
        }

        // 2. Duplicate voters: keep the first occurrence (the earliest
        //    vote is the real one; later copies are fetch artifacts).
        let before = r.voters.len();
        let mut seen = HashSet::with_capacity(r.voters.len());
        r.voters.retain(|&v| seen.insert(v));
        if r.voters.len() < before {
            repair(report, rules::NO_DUPLICATE_VOTERS, before - r.voters.len());
        }

        // 3. Submitter first. A displaced submitter is moved back; a
        //    missing in-range submitter is restored (their submission
        //    *is* a vote); an out-of-range submitter condemns the
        //    record — it cannot be attributed within the network.
        if r.voters.first() != Some(&r.submitter) {
            if r.submitter.index() >= user_count {
                report.quarantined.push(QuarantinedRecord {
                    story: r.story.0,
                    source: r.source,
                    rule: rules::SUBMITTER_FIRST.to_string(),
                    detail: format!(
                        "story {} submitter {} outside the scraped network",
                        r.story, r.submitter
                    ),
                });
                continue;
            }
            if let Some(pos) = r.voters.iter().position(|&v| v == r.submitter) {
                r.voters.remove(pos);
            }
            r.voters.insert(0, r.submitter);
            repair(report, rules::SUBMITTER_FIRST, 1);
        }

        // 4. Final votes below the (repaired) scraped count: the
        //    augmentation pass is untrustworthy for this record; clear
        //    it rather than keep a contradiction.
        if let Some(fin) = r.final_votes {
            if (fin as usize) < r.voters.len() {
                r.final_votes = None;
                repair(report, rules::FINAL_NOT_BELOW_SCRAPED, 1);
            }
        }

        // 5. Promotion boundary, judged on the repaired list. No
        //    repair exists: a short front-page record is
        //    indistinguishable from a mislabeled queue record.
        let (rule, bad) = match r.source {
            SampleSource::FrontPage => (rules::BOUNDARY_FP, r.voters.len() < threshold),
            SampleSource::Upcoming => (rules::BOUNDARY_UP, r.voters.len() >= threshold),
        };
        if bad {
            report.quarantined.push(QuarantinedRecord {
                story: r.story.0,
                source: r.source,
                rule: rule.to_string(),
                detail: format!(
                    "story {} has {} votes after repair (threshold {threshold})",
                    r.story,
                    r.voters.len()
                ),
            });
            continue;
        }

        if repaired {
            report.records_repaired += 1;
        }
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, SocialGraph, UserId};

    fn record(id: u32, voters: Vec<u32>, source: SampleSource, fin: Option<u32>) -> StoryRecord {
        StoryRecord {
            story: StoryId(id),
            submitter: UserId(voters[0]),
            submitted_at: Minute(0),
            voters: voters.into_iter().map(UserId).collect(),
            source,
            final_votes: fin,
        }
    }

    fn dataset(front: Vec<StoryRecord>, upcoming: Vec<StoryRecord>) -> DiggDataset {
        let mut b = GraphBuilder::new(10);
        b.add_watch(UserId(1), UserId(0));
        DiggDataset {
            scraped_at: Minute(100),
            front_page: front,
            upcoming,
            network: b.build(),
            top_users: vec![UserId(0)],
        }
    }

    #[test]
    fn strict_passes_clean_data_through() {
        let ds = dataset(
            vec![record(0, vec![0, 1, 2], SampleSource::FrontPage, Some(5))],
            vec![record(1, vec![3, 4], SampleSource::Upcoming, None)],
        );
        let (out, report) = ingest(ds.clone(), 3, IngestMode::Strict).unwrap();
        assert_eq!(out.front_page, ds.front_page);
        assert!(!report.any_degradation());
        assert_eq!(report.records_seen, 2);
        assert_eq!(report.records_kept, 2);
    }

    #[test]
    fn strict_rejects_bad_data_with_typed_error() {
        let ds = dataset(
            vec![record(0, vec![0, 1, 1], SampleSource::FrontPage, None)],
            vec![],
        );
        let err = ingest_strict(ds, 1).unwrap_err();
        match err {
            DataError::Invalid(v) => {
                assert!(v.iter().any(|x| x.rule == "no-duplicate-voters"))
            }
            other => panic!("expected Invalid, got {other}"),
        }
    }

    #[test]
    fn lenient_dedups_keep_first() {
        let ds = dataset(
            vec![record(
                0,
                vec![0, 1, 1, 2, 1],
                SampleSource::FrontPage,
                None,
            )],
            vec![],
        );
        let (out, report) = ingest_lenient(ds, 1);
        assert_eq!(
            out.front_page[0].voters,
            vec![UserId(0), UserId(1), UserId(2)]
        );
        assert_eq!(report.repairs("no-duplicate-voters"), 2);
        assert_eq!(report.records_repaired, 1);
        assert!(validate::validate(&out, 1).is_empty());
    }

    #[test]
    fn lenient_restores_displaced_submitter() {
        let mut r = record(0, vec![0, 1, 2], SampleSource::FrontPage, None);
        r.voters.swap(0, 1); // head reorder: [1, 0, 2]
        let ds = dataset(vec![r], vec![]);
        let (out, report) = ingest_lenient(ds, 1);
        assert_eq!(
            out.front_page[0].voters,
            vec![UserId(0), UserId(1), UserId(2)]
        );
        assert_eq!(report.repairs("submitter-first"), 1);
    }

    #[test]
    fn lenient_quarantines_boundary_violations() {
        let ds = dataset(
            vec![record(0, vec![0, 1], SampleSource::FrontPage, None)],
            vec![record(1, vec![2, 3, 4, 5], SampleSource::Upcoming, None)],
        );
        let (out, report) = ingest_lenient(ds, 3);
        assert!(out.front_page.is_empty());
        assert!(out.upcoming.is_empty());
        assert_eq!(report.quarantined_by("promotion-boundary-fp"), 1);
        assert_eq!(report.quarantined_by("promotion-boundary-up"), 1);
        assert_eq!(report.records_kept, 0);
    }

    #[test]
    fn lenient_drops_out_of_range_voters_and_clears_bad_finals() {
        let ds = dataset(
            vec![record(
                0,
                vec![0, 1, 2, 99],
                SampleSource::FrontPage,
                Some(2),
            )],
            vec![],
        );
        let (out, report) = ingest_lenient(ds, 1);
        assert_eq!(
            out.front_page[0].voters,
            vec![UserId(0), UserId(1), UserId(2)]
        );
        // final 2 < 3 scraped even after the out-of-range drop.
        assert_eq!(out.front_page[0].final_votes, None);
        assert_eq!(report.repairs("voters-in-network"), 1);
        assert_eq!(report.repairs("final-not-below-scraped"), 1);
        assert!(validate::validate(&out, 1).is_empty());
    }

    #[test]
    fn lenient_resorts_stale_top_users() {
        let mut ds = dataset(
            vec![record(0, vec![0, 1], SampleSource::FrontPage, None)],
            vec![],
        );
        ds.top_users = vec![UserId(2), UserId(0)]; // 0 has a fan, 2 has none
        let (out, report) = ingest_lenient(ds, 1);
        assert!(report.top_users_resorted);
        assert_eq!(out.top_users.len(), 2);
        assert_eq!(out.top_users[0], UserId(0));
        assert!(validate::validate(&out, 1).is_empty());
    }

    #[test]
    fn quarantines_record_with_unattributable_submitter() {
        let mut r = record(0, vec![0, 1], SampleSource::FrontPage, None);
        r.submitter = UserId(99); // outside the 10-user network
        let ds = dataset(vec![r], vec![]);
        let (out, report) = ingest_lenient(ds, 1);
        assert!(out.front_page.is_empty());
        assert_eq!(report.quarantined_by("submitter-first"), 1);
    }

    #[test]
    fn load_strict_reports_missing_file_as_io_error() {
        let err = load_strict(Path::new("/nonexistent/nope.json"), 1).unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_lenient_roundtrips_a_saved_dataset() {
        let ds = dataset(
            vec![record(0, vec![0, 1, 1], SampleSource::FrontPage, None)],
            vec![],
        );
        let dir = std::env::temp_dir().join("digg-data-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        crate::io::save(&ds, &path).unwrap();
        let (out, report) = load_lenient(&path, 1).unwrap();
        assert_eq!(out.front_page[0].voters, vec![UserId(0), UserId(1)]);
        assert_eq!(report.repairs("no-duplicate-voters"), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_serializes() {
        let ds = dataset(
            vec![record(0, vec![0, 1, 1], SampleSource::FrontPage, None)],
            vec![],
        );
        let (_, report) = ingest_lenient(ds, 1);
        let json = serde_json::to_string(&report).unwrap();
        let back: DegradationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn empty_network_has_full_coverage_report() {
        let ds = DiggDataset {
            scraped_at: Minute(0),
            front_page: vec![],
            upcoming: vec![],
            network: SocialGraph::empty(0),
            top_users: vec![],
        };
        let (_, report) = ingest_lenient(ds, 1);
        assert_eq!(report.fan_coverage, 1.0);
        assert!(!report.any_degradation());
    }
}
