//! The scraper: a fidelity-limited observer of a running simulation.
//!
//! Everything here deliberately sees *less* than the simulator knows,
//! matching the paper's collection limits:
//!
//! * voter lists are taken in order, timestamps dropped;
//! * story quality and vote channels are invisible;
//! * the social network is read through the join-date reconstruction
//!   of [`social_graph::temporal`], including its one-sided bias.

use crate::model::{DiggDataset, SampleSource, StoryRecord};
use digg_sim::Sim;
use rand::Rng;
use social_graph::temporal::Day;
use social_graph::SocialGraph;

/// Scrape parameters, mirroring §3.1–3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrapeConfig {
    /// How many recently promoted stories to take (paper: ~200).
    pub front_page_stories: usize,
    /// How many newest queue stories to take (paper: 900).
    pub upcoming_stories: usize,
    /// Length of the Top Users list (paper: 1020).
    pub top_users: usize,
    /// The study cutoff day for network reconstruction ("June 30,
    /// 2006").
    pub network_cutoff: Day,
    /// The later day the fan lists are actually scraped ("February
    /// 2008").
    pub network_scraped: Day,
    /// Fraction of extra watch links created between cutoff and scrape
    /// (network growth the reconstruction must undo), relative to the
    /// existing edge count.
    pub post_cutoff_growth: f64,
    /// Of the growth links, the fraction whose fan had already joined
    /// before the cutoff. Only these survive the join-date filter and
    /// bias the reconstruction; the rest come from users who joined
    /// later (Digg's user base grew ~10x over 2006-2008) and are
    /// correctly dropped.
    pub growth_from_pre_cutoff_fans: f64,
}

impl Default for ScrapeConfig {
    fn default() -> ScrapeConfig {
        ScrapeConfig {
            front_page_stories: 200,
            upcoming_stories: 900,
            top_users: 1020,
            network_cutoff: 600,
            network_scraped: 1200,
            // "Many of these users acquired new fans between June 2006
            // and February 2008": the network roughly doubled…
            post_cutoff_growth: 1.0,
            // …but mostly through newly joined users, whom the
            // join-date reconstruction removes again.
            growth_from_pre_cutoff_fans: 0.15,
        }
    }
}

/// Capture the two story samples at the simulation's current time.
/// Voter lists are cloned as of *now*; final votes are left
/// unaugmented.
pub fn scrape_stories(sim: &Sim, cfg: &ScrapeConfig) -> (Vec<StoryRecord>, Vec<StoryRecord>) {
    let front: Vec<StoryRecord> = sim
        .front_page()
        .most_recent(cfg.front_page_stories)
        .into_iter()
        .map(|id| {
            let s = sim.story(id);
            StoryRecord {
                story: s.id,
                submitter: s.submitter,
                submitted_at: s.submitted_at,
                voters: s.voters_chronological(),
                source: SampleSource::FrontPage,
                final_votes: None,
            }
        })
        .collect();
    let upcoming: Vec<StoryRecord> = sim
        .upcoming_queue()
        .all()
        .into_iter()
        .take(cfg.upcoming_stories)
        .map(|id| {
            let s = sim.story(id);
            StoryRecord {
                story: s.id,
                submitter: s.submitter,
                submitted_at: s.submitted_at,
                voters: s.voters_chronological(),
                source: SampleSource::Upcoming,
                final_votes: None,
            }
        })
        .collect();
    (front, upcoming)
}

/// Fill `final_votes` from the simulation's (later) state — the
/// paper's February-2008 augmentation pass.
pub fn augment_final_votes(sim: &Sim, records: &mut [StoryRecord]) {
    for r in records {
        // Saturating, not truncating: a count beyond u32::MAX (never
        // reachable with a u32-id population) pins instead of wrapping.
        r.final_votes = Some(
            sim.story(r.story)
                .vote_count()
                .try_into()
                .unwrap_or(u32::MAX),
        );
    }
}

/// Reconstruct the study-window social network the way the paper did:
/// export the (grown) network as dated fan lists, then keep only fans
/// who joined by the cutoff.
///
/// Returns `(reconstructed, excess_links)` where `excess_links` counts
/// the links the reconstruction keeps that did not exist at the
/// cutoff (the §3.2 bias; the paper could not measure this, we can).
pub fn scrape_network<R: Rng + ?Sized>(
    sim: &Sim,
    cfg: &ScrapeConfig,
    rng: &mut R,
) -> (SocialGraph, usize) {
    let pop = sim.population();
    // Dated fan lists as of the late scrape: true study-window edges…
    let mut temporal = pop.to_temporal(rng, cfg.network_cutoff);
    // …plus growth after the cutoff: new links among existing users,
    // some from users who joined before the cutoff (these are the
    // ones the join-date filter cannot remove).
    let n = pop.len();
    let extra = (pop.graph.edge_count() as f64 * cfg.post_cutoff_growth) as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < extra && guard < extra * 20 {
        guard += 1;
        let fan = social_graph::UserId::from_index(rng.random_range(0..n));
        let watched = social_graph::UserId::from_index(rng.random_range(0..n));
        if fan == watched {
            continue;
        }
        let created = rng.random_range(cfg.network_cutoff + 1..=cfg.network_scraped);
        // Most growth comes from users who joined after the cutoff;
        // the scraper sees only the fan's join date, so we record the
        // date of the (late-joining) account behind the link.
        let fan_joined = if rng.random::<f64>() < cfg.growth_from_pre_cutoff_fans {
            pop.join_day[fan.index()]
        } else {
            rng.random_range(cfg.network_cutoff + 1..=created.max(cfg.network_cutoff + 1))
        };
        temporal.add_link(watched, fan, fan_joined, created);
        added += 1;
    }
    let excess = temporal.reconstruction_excess(cfg.network_cutoff);
    (temporal.snapshot(cfg.network_cutoff), excess)
}

/// Run the full scrape at the simulation's current time: stories,
/// network, Top Users list.
pub fn scrape_dataset<R: Rng + ?Sized>(sim: &Sim, cfg: &ScrapeConfig, rng: &mut R) -> DiggDataset {
    let (front_page, upcoming) = scrape_stories(sim, cfg);
    let (network, _excess) = scrape_network(sim, cfg, rng);
    let top_users = network
        .users_by_fans_desc()
        .into_iter()
        .take(cfg.top_users)
        .collect();
    DiggDataset {
        scraped_at: sim.now(),
        front_page,
        upcoming,
        network,
        top_users,
    }
}

/// Run the full scrape through a degraded observer: scrape as
/// [`scrape_dataset`] does, then inject the plan's faults. Returns the
/// degraded dataset and the injection ledger. With
/// [`crate::faults::FaultPlan::default`] this is exactly
/// [`scrape_dataset`] (identity injection, zero ledger).
pub fn scrape_dataset_with_faults<R: Rng + ?Sized>(
    sim: &Sim,
    cfg: &ScrapeConfig,
    plan: &crate::faults::FaultPlan,
    rng: &mut R,
) -> (DiggDataset, crate::faults::FaultLog) {
    let clean = scrape_dataset(sim, cfg, rng);
    plan.apply(&clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_sim::population::{Population, PopulationConfig};
    use digg_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_sim(minutes: u64) -> Sim {
        let cfg = SimConfig::toy(77);
        let mut rng = StdRng::seed_from_u64(77);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        let mut sim = Sim::new(cfg, pop);
        sim.run(minutes);
        sim
    }

    fn toy_scrape_cfg() -> ScrapeConfig {
        ScrapeConfig {
            front_page_stories: 20,
            upcoming_stories: 50,
            top_users: 100,
            // The toy population joins over 1000 days; place the study
            // cutoff after everyone has joined so the ground-truth
            // graph is fully active during the simulated window.
            network_cutoff: 1000,
            network_scraped: 1600,
            ..ScrapeConfig::default()
        }
    }

    #[test]
    fn story_samples_respect_limits_and_sources() {
        let sim = toy_sim(900);
        let cfg = toy_scrape_cfg();
        let (fp, up) = scrape_stories(&sim, &cfg);
        assert!(fp.len() <= 20);
        assert!(!fp.is_empty(), "toy sim should promote something");
        assert!(up.len() <= 50);
        assert!(fp.iter().all(|r| r.source == SampleSource::FrontPage));
        assert!(up.iter().all(|r| r.source == SampleSource::Upcoming));
        // No timestamps leak: the records only carry orders.
        for r in fp.iter().chain(&up) {
            assert_eq!(r.voters[0], r.submitter);
            assert!(r.final_votes.is_none());
        }
    }

    #[test]
    fn augmentation_fills_final_votes_monotonically() {
        let mut sim = toy_sim(600);
        let cfg = toy_scrape_cfg();
        let (mut fp, _) = scrape_stories(&sim, &cfg);
        let scraped_counts: Vec<usize> = fp.iter().map(|r| r.voters.len()).collect();
        sim.run(600);
        augment_final_votes(&sim, &mut fp);
        for (r, &scraped) in fp.iter().zip(&scraped_counts) {
            let fin = r.final_votes.unwrap() as usize;
            assert!(fin >= scraped, "votes cannot decrease");
        }
    }

    #[test]
    fn network_reconstruction_is_superset_of_truth() {
        let sim = toy_sim(60);
        let cfg = toy_scrape_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let (recon, excess) = scrape_network(&sim, &cfg, &mut rng);
        let truth = &sim.population().graph;
        // Every true edge survives reconstruction (all users joined
        // before the cutoff in the toy population).
        for (a, b) in truth.edges() {
            assert!(recon.watches(a, b), "true edge {a}->{b} lost");
        }
        // The bias is real and measured.
        assert!(excess > 0, "expected some spurious late links");
        assert!(recon.edge_count() >= truth.edge_count());
    }

    #[test]
    fn full_scrape_assembles_dataset() {
        let sim = toy_sim(900);
        let cfg = toy_scrape_cfg();
        let mut rng = StdRng::seed_from_u64(2);
        let ds = scrape_dataset(&sim, &cfg, &mut rng);
        assert_eq!(ds.scraped_at, sim.now());
        assert_eq!(ds.top_users.len(), 100);
        // Top users sorted by reconstructed fan count.
        for w in ds.top_users.windows(2) {
            assert!(ds.network.fan_count(w[0]) >= ds.network.fan_count(w[1]));
        }
    }
}
