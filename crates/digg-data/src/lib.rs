//! # digg-data
//!
//! The dataset layer of the reproduction: everything between the
//! simulated platform ([`digg_sim`]) and the analyses
//! (`digg-core`).
//!
//! The paper's data artifact (§3.1–3.2) has a very particular shape,
//! and its quirks constrain the analysis code, so we reproduce the
//! *collection methodology*, not just the data:
//!
//! * On June 30 2006 the authors scraped **~200 of the most recently
//!   promoted stories** from the front page — story title, submitter,
//!   submission time and the voter list **in chronological order but
//!   without per-vote timestamps** — plus **900 stories from the
//!   upcoming queue** submitted in the same period.
//! * In February 2008 they **augmented** this with each story's final
//!   vote count.
//! * The social network came in two pieces: a June-2006 snapshot of
//!   the **top-1020 users**, and a Feb-2008 scrape of the fans of the
//!   other 15,000+ voters, **reconstructed** to June 2006 by dropping
//!   fans who joined Digg later (link-creation dates were not
//!   available, so links created after June 2006 by early joiners are
//!   erroneously kept — an unavoidable bias we reproduce and measure).
//!
//! Modules:
//!
//! * [`model`] — the scraped records.
//! * [`scrape`] — the fidelity-limited observer of a running
//!   simulation.
//! * [`synth`] — end-to-end calibrated dataset generation
//!   (simulate → scrape → run on → augment).
//! * [`io`] — JSON serialization of datasets.
//! * [`validate`] — dataset invariants (the 43/42 promotion boundary
//!   and friends).
//! * [`faults`] — deterministic scrape-fault injection
//!   ([`faults::FaultPlan`]): the failure modes real collection hits,
//!   driven by per-entity [`des_core::StreamRng`] streams.
//! * [`ingest`] — strict/lenient dataset ingestion: strict loading
//!   returns a typed error on the first violation; lenient loading
//!   repairs or quarantines bad records and reports a
//!   [`ingest::DegradationReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod ingest;
pub mod io;
pub mod model;
pub mod scrape;
pub mod synth;
pub mod validate;

pub use faults::{ChaosPlan, FaultLog, FaultPlan, RetryPolicy, SweepKillPlan};
pub use ingest::{DegradationReport, IngestMode, QuarantinedRecord};
pub use model::{DiggDataset, SampleSource, StoryRecord};
pub use synth::{synthesize, SynthConfig, Synthesis};
