//! Scraped records.

use digg_sim::{Minute, StoryId};
use serde::{Deserialize, Serialize};
use social_graph::{SocialGraph, UserId};

/// Where a record was collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleSource {
    /// Scraped from the front page (promoted before the scrape).
    FrontPage,
    /// Scraped from the upcoming queue (not yet promoted at scrape
    /// time; may have been promoted afterwards).
    Upcoming,
}

/// One scraped story, with exactly the fields the paper's scrape had.
///
/// Note what is *absent*: per-vote timestamps (votes are in
/// chronological order only), the story's latent quality, and the
/// channel through which each vote arrived. Analyses must work from
/// the order of names and the social network alone, as the paper did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoryRecord {
    /// Platform identifier of the story.
    pub story: StoryId,
    /// Submitting user ("name of the submitter").
    pub submitter: UserId,
    /// Submission time ("time the story was submitted").
    pub submitted_at: Minute,
    /// Voters in chronological order, "with submitter's name appearing
    /// first on the list".
    pub voters: Vec<UserId>,
    /// Which listing the record came from.
    pub source: SampleSource,
    /// Final vote count from the later augmentation pass (`None`
    /// until augmented).
    pub final_votes: Option<u32>,
}

impl StoryRecord {
    /// Votes visible at scrape time.
    pub fn scraped_votes(&self) -> usize {
        self.voters.len()
    }

    /// Final vote count, if augmented.
    pub fn final_vote_count(&self) -> Option<u32> {
        self.final_votes
    }

    /// The paper's interestingness label: more than `threshold`
    /// (default 520) final votes. `None` when not augmented.
    pub fn is_interesting(&self, threshold: u32) -> Option<bool> {
        self.final_votes.map(|v| v > threshold)
    }
}

/// The assembled dataset: the two story samples plus the reconstructed
/// June-2006 social network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiggDataset {
    /// When the story samples were scraped.
    pub scraped_at: Minute,
    /// Most recently promoted stories (paper: ~200).
    pub front_page: Vec<StoryRecord>,
    /// Newest upcoming-queue stories (paper: 900).
    pub upcoming: Vec<StoryRecord>,
    /// The social network *as reconstructed by the scraper*: fans who
    /// joined after the study window removed, but late-created links
    /// by early joiners erroneously retained (the paper's §3.2 bias).
    pub network: SocialGraph,
    /// Users ranked by fan count under `network`, best first (the
    /// paper's Top Users list; it used the top 1020).
    pub top_users: Vec<UserId>,
}

impl DiggDataset {
    /// All records (front page then upcoming).
    pub fn all_records(&self) -> impl Iterator<Item = &StoryRecord> {
        self.front_page.iter().chain(self.upcoming.iter())
    }

    /// Number of distinct users appearing as voters anywhere in the
    /// dataset (paper: "over 16,600 distinct users").
    pub fn distinct_voters(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for r in self.all_records() {
            for &v in &r.voters {
                seen.insert(v);
            }
        }
        seen.len()
    }

    /// Rank (1-based) of each user in the Top Users list, or `None`
    /// if beyond the list length used at construction.
    pub fn rank_of(&self, user: UserId) -> Option<usize> {
        self.top_users
            .iter()
            .position(|&u| u == user)
            .map(|i| i + 1)
    }

    /// Is the user within the top `k` ranks?
    pub fn is_top_user(&self, user: UserId, k: usize) -> bool {
        self.top_users.iter().take(k).any(|&u| u == user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(voters: Vec<u32>, fin: Option<u32>) -> StoryRecord {
        StoryRecord {
            story: StoryId(0),
            submitter: UserId(voters[0]),
            submitted_at: Minute(10),
            voters: voters.into_iter().map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: fin,
        }
    }

    #[test]
    fn interestingness_threshold_is_strict() {
        let r = record(vec![0], Some(520));
        assert_eq!(r.is_interesting(520), Some(false));
        let r = record(vec![0], Some(521));
        assert_eq!(r.is_interesting(520), Some(true));
        let r = record(vec![0], None);
        assert_eq!(r.is_interesting(520), None);
    }

    #[test]
    fn distinct_voters_dedup_across_samples() {
        let ds = DiggDataset {
            scraped_at: Minute(100),
            front_page: vec![record(vec![0, 1, 2], Some(600))],
            upcoming: vec![record(vec![1, 3], None)],
            network: SocialGraph::empty(4),
            top_users: vec![UserId(2), UserId(0)],
        };
        assert_eq!(ds.distinct_voters(), 4);
        assert_eq!(ds.rank_of(UserId(2)), Some(1));
        assert_eq!(ds.rank_of(UserId(3)), None);
        assert!(ds.is_top_user(UserId(2), 1));
        assert!(!ds.is_top_user(UserId(0), 1));
    }

    #[test]
    fn serde_roundtrip() {
        let ds = DiggDataset {
            scraped_at: Minute(5),
            front_page: vec![record(vec![0, 1], Some(10))],
            upcoming: vec![],
            network: SocialGraph::empty(2),
            top_users: vec![UserId(0)],
        };
        let json = serde_json::to_string(&ds).unwrap();
        let ds2: DiggDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds.front_page, ds2.front_page);
        assert_eq!(ds.top_users, ds2.top_users);
    }
}
