//! Deterministic scrape-fault injection.
//!
//! The paper's dataset is the product of a lossy scrape, and follow-up
//! measurement studies (Zhu; Hogg & Lerman) report exactly the failure
//! modes real collection hits: rate-limited fetches, truncated voter
//! lists, missing fan lists. A [`FaultPlan`] injects those failures
//! into a scraped [`DiggDataset`] so every downstream consumer can be
//! tested — and measured — under degraded conditions instead of
//! assuming a perfect observer.
//!
//! **Determinism.** Every fault decision is drawn from a
//! [`des_core::StreamRng`] stream keyed by `(plan seed, fault class,
//! entity id)`. A stream's outputs are a pure function of its key and
//! counter, so whether a given story's voter list gets truncated does
//! not depend on how many other stories exist, in what order records
//! are processed, or how many threads the caller fans out over —
//! injection is bit-reproducible and thread-invariant (DESIGN.md §12).
//!
//! **Retry-until-budget.** Fetch failures are transient: the injector
//! models a scraper that retries each story fetch up to
//! [`RetryPolicy::max_attempts`] times with attempt-indexed
//! exponential backoff (no wall clock — the backoff minutes are
//! accounted in the [`FaultLog`], not slept). Only a story whose whole
//! retry budget fails is lost.
//!
//! [`FaultPlan::default`] injects nothing and [`FaultPlan::apply`] is
//! then an identity (plus a zeroed log), which is what keeps every
//! fault-free artifact byte-identical to a build without this module.

use crate::model::{DiggDataset, StoryRecord};
use des_core::StreamRng;
use digg_sim::supervisor::{ChaosFault, CorruptFrameKind};
use rand::Rng;
use social_graph::GraphBuilder;

/// Stream salts, one per fault class (see module docs).
const FETCH_STREAM: u64 = 0x0046_4155_4c54_5f46; // "FAULT_F"
const TRUNC_STREAM: u64 = 0x0046_4155_4c54_5f54; // "FAULT_T"
const FAN_STREAM: u64 = 0x0046_4155_4c54_5f4e; // "FAULT_N"
const DUP_STREAM: u64 = 0x0046_4155_4c54_5f44; // "FAULT_D"
const ORDER_STREAM: u64 = 0x0046_4155_4c54_5f4f; // "FAULT_O"
const KILL_STREAM: u64 = 0x0046_4155_4c54_5f4b; // "FAULT_K"
const CHAOS_STREAM: u64 = 0x0046_4155_4c54_5f43; // "FAULT_C"

/// Bounded deterministic retry policy for transient fetch failures.
///
/// Backoff is **attempt-indexed**, not clocked: the wait before retry
/// `k` (the `k+1`-th attempt) is `base_backoff_minutes << (k - 1)`,
/// capped at `max_backoff_minutes`. The injector accounts the minutes
/// in the [`FaultLog`] instead of sleeping, so runs stay fast and
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch attempts per story (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated minutes.
    pub base_backoff_minutes: u64,
    /// Ceiling on a single backoff interval.
    pub max_backoff_minutes: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_minutes: 2,
            max_backoff_minutes: 30,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): exponential in
    /// the retry index, capped. Pure function of the index — no wall
    /// clock anywhere.
    pub fn backoff_before_retry(&self, retry: u32) -> u64 {
        let shift = retry.saturating_sub(1).min(62);
        self.base_backoff_minutes
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_minutes)
    }
}

/// Injection rates for every scrape-level fault class. All rates are
/// probabilities in `[0, 1]`; the all-zero [`FaultPlan::default`] is
/// the disabled plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-entity fault streams.
    pub seed: u64,
    /// Per-attempt probability that a story fetch transiently fails.
    pub fetch_failure: f64,
    /// Retry budget and backoff for transient fetch failures.
    pub retry: RetryPolicy,
    /// Probability a story's voter list comes back truncated.
    pub truncate_voters: f64,
    /// Fraction of the voter list kept when truncation strikes.
    pub truncate_keep: f64,
    /// Probability a user's entire fan list is missing.
    pub drop_fan_list: f64,
    /// Probability a user's fan list comes back partial.
    pub partial_fan_list: f64,
    /// Fraction of fan links kept when a list is partial.
    pub partial_keep: f64,
    /// Probability one vote record in a story is duplicated.
    pub duplicate_vote: f64,
    /// Probability two adjacent vote records in a story swap order.
    pub reorder_votes: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            fetch_failure: 0.0,
            retry: RetryPolicy::default(),
            truncate_voters: 0.0,
            truncate_keep: 0.7,
            drop_fan_list: 0.0,
            partial_fan_list: 0.0,
            partial_keep: 0.5,
            duplicate_vote: 0.0,
            reorder_votes: 0.0,
        }
    }
}

impl FaultPlan {
    /// A uniformly degraded scraper: every fault class fires at `rate`
    /// (fetch failures and record corruption at `rate / 2`, since a
    /// retry budget and the ingest repairs absorb part of them). This
    /// is the knob the `degradation_sweep` bench turns.
    pub fn degraded(rate: f64, seed: u64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            fetch_failure: rate / 2.0,
            truncate_voters: rate,
            drop_fan_list: rate,
            partial_fan_list: rate,
            duplicate_vote: rate / 2.0,
            reorder_votes: rate / 2.0,
            ..FaultPlan::default()
        }
    }

    /// True when no fault class can fire; [`FaultPlan::apply`] is then
    /// an identity.
    pub fn is_disabled(&self) -> bool {
        self.fetch_failure == 0.0
            && self.truncate_voters == 0.0
            && self.drop_fan_list == 0.0
            && self.partial_fan_list == 0.0
            && self.duplicate_vote == 0.0
            && self.reorder_votes == 0.0
    }

    /// The fault stream of one `(class, entity)` pair.
    fn stream(&self, class: u64, entity: u64) -> StreamRng {
        StreamRng::keyed(self.seed, &[class, entity])
    }

    /// Inject scrape faults into a dataset: per-story fetch failures
    /// (with retry-until-budget), voter-list truncation, duplicated
    /// and reordered vote records, and dropped/partial fan lists in
    /// the network. Returns the degraded dataset and the exact
    /// injection ledger.
    ///
    /// With the plan disabled the output is an unmodified clone and
    /// the log is all zeros.
    pub fn apply(&self, ds: &DiggDataset) -> (DiggDataset, FaultLog) {
        let mut log = FaultLog::default();
        if self.is_disabled() {
            log.fan_links_before = ds.network.edge_count();
            log.fan_links_after = ds.network.edge_count();
            return (ds.clone(), log);
        }
        let front_page = self.apply_records(&ds.front_page, &mut log);
        let upcoming = self.apply_records(&ds.upcoming, &mut log);
        let network = self.apply_network(&ds.network, &mut log);
        (
            DiggDataset {
                scraped_at: ds.scraped_at,
                front_page,
                upcoming,
                network,
                // Deliberately stale: the Top Users list was published
                // before the degraded fan lists were fetched, so it is
                // carried over as-is (lenient ingestion re-derives it).
                top_users: ds.top_users.clone(),
            },
            log,
        )
    }

    /// Inject the per-record fault classes into one story sample.
    pub fn apply_records(&self, records: &[StoryRecord], log: &mut FaultLog) -> Vec<StoryRecord> {
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            let entity = u64::from(r.story.0);
            // Transient fetch failures, retried until the budget runs
            // out. One draw per attempt, attempt-indexed on the
            // story's fetch stream.
            let mut fetch = self.stream(FETCH_STREAM, entity);
            let mut fetched = false;
            for attempt in 1..=self.retry.max_attempts.max(1) {
                log.fetch_attempts += 1;
                if fetch.random::<f64>() >= self.fetch_failure {
                    fetched = true;
                    break;
                }
                if attempt < self.retry.max_attempts.max(1) {
                    log.fetch_retries += 1;
                    log.backoff_minutes += self.retry.backoff_before_retry(attempt);
                }
            }
            if !fetched {
                log.fetch_failed_stories += 1;
                continue;
            }

            let mut voters = r.voters.clone();
            // Truncated voter list: the fetch stopped early, keeping a
            // prefix (so the submitter entry survives).
            let mut trunc = self.stream(TRUNC_STREAM, entity);
            if trunc.random::<f64>() < self.truncate_voters && voters.len() > 1 {
                let keep = ((voters.len() as f64 * self.truncate_keep).ceil() as usize)
                    .clamp(1, voters.len());
                if keep < voters.len() {
                    log.votes_dropped += (voters.len() - keep) as u64;
                    log.truncated_stories += 1;
                    voters.truncate(keep);
                }
            }
            // Duplicated vote record: one entry repeated immediately
            // after itself (a page boundary fetched twice).
            let mut dup = self.stream(DUP_STREAM, entity);
            if dup.random::<f64>() < self.duplicate_vote && !voters.is_empty() {
                let j = dup.random_range(0..voters.len());
                voters.insert(j + 1, voters[j]);
                log.duplicated_votes += 1;
            }
            // Out-of-order vote records: two adjacent entries swapped.
            // A swap at the head displaces the submitter and is
            // detectable downstream; mid-list swaps are silent (the
            // records carry no timestamps to contradict).
            let mut ord = self.stream(ORDER_STREAM, entity);
            if ord.random::<f64>() < self.reorder_votes && voters.len() >= 2 {
                let j = ord.random_range(0..voters.len() - 1);
                // A swap of two equal entries (possible after the
                // duplication fault) changes nothing; only observable
                // corruption is performed and counted, so the ledger
                // matches what ingestion can see.
                if voters[j] != voters[j + 1] {
                    voters.swap(j, j + 1);
                    if j == 0 {
                        log.head_reorders += 1;
                    } else {
                        log.mid_reorders += 1;
                    }
                }
            }
            out.push(StoryRecord {
                voters,
                ..r.clone()
            });
        }
        out
    }

    /// Inject fan-list faults: per user, the whole list may be missing
    /// or individual links lost. The graph is rebuilt from the
    /// surviving fan lists, exactly as the scraper assembles it.
    fn apply_network(
        &self,
        network: &social_graph::SocialGraph,
        log: &mut FaultLog,
    ) -> social_graph::SocialGraph {
        let n = network.user_count();
        log.fan_links_before = network.edge_count();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            let watched = social_graph::UserId::from_index(u);
            let fans = network.fans(watched);
            if fans.is_empty() {
                continue;
            }
            let mut rng = self.stream(FAN_STREAM, u as u64);
            if rng.random::<f64>() < self.drop_fan_list {
                log.dropped_fan_lists += 1;
                log.fan_links_dropped += fans.len();
                continue;
            }
            if rng.random::<f64>() < self.partial_fan_list {
                log.partial_fan_lists += 1;
                for &f in fans {
                    if rng.random::<f64>() < self.partial_keep {
                        b.add_watch(f, watched);
                    } else {
                        log.fan_links_dropped += 1;
                    }
                }
            } else {
                for &f in fans {
                    b.add_watch(f, watched);
                }
            }
        }
        let degraded = b.build();
        log.fan_links_after = degraded.edge_count();
        degraded
    }
}

/// Deterministic worker-death plan for the checkpoint/replay sweep
/// supervisor (`digg_sim::supervisor`).
///
/// Each grid cell independently draws from a [`StreamRng`] keyed by
/// `(plan seed, KILL_STREAM, cell index)` whether its worker should
/// self-kill, and after which checkpoint — the same per-entity stream
/// discipline as every other fault class in this module, so which
/// cells die is a pure function of the plan, not of sharding, worker
/// count, or timing. The supervisor proves recovery by comparing the
/// killed sweep's rows byte-for-byte against an unfaulted run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepKillPlan {
    /// Seed of the per-cell kill streams.
    pub seed: u64,
    /// Probability a given cell's worker is killed at all.
    pub kill_prob: f64,
    /// Upper bound (inclusive) on the checkpoint index the kill lands
    /// after; the index is drawn uniformly from `1..=max_checkpoint`.
    pub max_checkpoint: u32,
}

impl Default for SweepKillPlan {
    /// No kills — the supervisor runs every cell uninterrupted.
    fn default() -> SweepKillPlan {
        SweepKillPlan {
            seed: 0,
            kill_prob: 0.0,
            max_checkpoint: 3,
        }
    }
}

impl SweepKillPlan {
    /// A plan that kills every cell's worker once (after a checkpoint
    /// in `1..=max_checkpoint`) — the harshest recovery drill.
    pub fn kill_all(seed: u64, max_checkpoint: u32) -> SweepKillPlan {
        SweepKillPlan {
            seed,
            kill_prob: 1.0,
            max_checkpoint: max_checkpoint.max(1),
        }
    }

    /// The per-cell kill schedule for a `cells`-cell grid, indexed in
    /// row-major grid order: `Some(k)` means the worker self-kills
    /// right after writing checkpoint `k`. Feed this straight into
    /// `SupervisorConfig::kill_after_checkpoints`.
    pub fn kills(&self, cells: usize) -> Vec<Option<u32>> {
        (0..cells)
            .map(|cell| {
                let mut rng = StreamRng::keyed(self.seed, &[KILL_STREAM, cell as u64]);
                if rng.random::<f64>() < self.kill_prob {
                    Some(rng.random_range(1..=self.max_checkpoint.max(1)))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The same schedule as [`SweepKillPlan::kills`] expressed as
    /// [`ChaosFault::Kill`] entries, ready for
    /// `SupervisorConfig::chaos`.
    pub fn chaos(&self, cells: usize) -> Vec<Option<ChaosFault>> {
        self.kills(cells)
            .into_iter()
            .map(|k| k.map(|after_checkpoints| ChaosFault::Kill { after_checkpoints }))
            .collect()
    }
}

/// Fault classes a [`ChaosPlan`] can draw, in the fixed order the
/// round-robin matrix walks.
const CHAOS_CLASSES: u64 = 6;

/// Deterministic chaos schedule for the supervised sweep — the
/// generalization of [`SweepKillPlan`] from "workers die" to the full
/// fault matrix the hardened supervisor recovers from: kills, silent
/// stalls, heartbeat-only dawdles, corrupt response frames, and torn
/// or bit-flipped checkpoint writes (`digg_sim::supervisor`'s
/// [`ChaosFault`]).
///
/// Each grid cell draws from its own [`StreamRng`] stream keyed by
/// `(plan seed, CHAOS_STREAM, cell index)` — whether it gets a fault,
/// which class, and the class's parameters are a pure function of the
/// plan and the cell index, invariant to sharding, worker count, and
/// timing. The `chaos_sweep` bench proves recovery by comparing a
/// full-matrix run's rows byte-for-byte against an unfaulted sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed of the per-cell chaos streams.
    pub seed: u64,
    /// Probability a given cell gets any fault at all.
    pub fault_prob: f64,
    /// Upper bound (inclusive) on the checkpoint index a checkpoint-
    /// anchored fault lands on; drawn uniformly from
    /// `1..=max_checkpoint`.
    pub max_checkpoint: u32,
}

impl Default for ChaosPlan {
    /// No faults — the supervisor runs every cell uninterrupted.
    fn default() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            fault_prob: 0.0,
            max_checkpoint: 3,
        }
    }
}

impl ChaosPlan {
    /// A plan that faults every cell, class drawn uniformly.
    pub fn fault_all(seed: u64, max_checkpoint: u32) -> ChaosPlan {
        ChaosPlan {
            seed,
            fault_prob: 1.0,
            max_checkpoint: max_checkpoint.max(1),
        }
    }

    /// Draw one fault from an already-positioned cell stream.
    fn draw(&self, rng: &mut StreamRng, class: u64) -> ChaosFault {
        let at = rng.random_range(1..=self.max_checkpoint.max(1));
        match class {
            0 => ChaosFault::Kill {
                after_checkpoints: at,
            },
            1 => ChaosFault::Stall {
                after_checkpoints: at,
            },
            2 => ChaosFault::Dawdle {
                after_checkpoints: at,
            },
            3 => {
                let kind = match rng.random_range(0..3u32) {
                    0 => CorruptFrameKind::Garbage,
                    1 => CorruptFrameKind::Oversized,
                    _ => CorruptFrameKind::Truncated,
                };
                ChaosFault::CorruptFrame { kind }
            }
            4 => ChaosFault::TornCheckpoint { at_checkpoint: at },
            _ => ChaosFault::BitFlipCheckpoint {
                at_checkpoint: at,
                bit: rng.random::<u64>(),
            },
        }
    }

    /// The per-cell fault schedule for a `cells`-cell grid in
    /// row-major grid order, class drawn uniformly per faulted cell.
    /// Feed this straight into `SupervisorConfig::chaos`.
    pub fn faults(&self, cells: usize) -> Vec<Option<ChaosFault>> {
        (0..cells)
            .map(|cell| {
                let mut rng = StreamRng::keyed(self.seed, &[CHAOS_STREAM, cell as u64]);
                if rng.random::<f64>() < self.fault_prob {
                    let class = rng.random_range(0..CHAOS_CLASSES);
                    Some(self.draw(&mut rng, class))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The full-matrix drill: every cell faulted, classes assigned
    /// round-robin (`cell % 6`) so a grid of at least six cells is
    /// guaranteed to fire **every** fault class at least once, with
    /// parameters still drawn from the cell's own stream. This is the
    /// schedule the `chaos_sweep` CI smoke runs.
    pub fn matrix(&self, cells: usize) -> Vec<Option<ChaosFault>> {
        (0..cells)
            .map(|cell| {
                let mut rng = StreamRng::keyed(self.seed, &[CHAOS_STREAM, cell as u64]);
                // Burn the fire draw so matrix and faults() share
                // stream positions for the parameter draws.
                let _ = rng.random::<f64>();
                let class = cell as u64 % CHAOS_CLASSES;
                Some(self.draw(&mut rng, class))
            })
            .collect()
    }
}

/// Exact ledger of what a [`FaultPlan::apply`] run injected. Because
/// injection is stream-driven, the same plan over the same dataset
/// always produces the same ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultLog {
    /// Story fetch attempts, retries included.
    pub fetch_attempts: u64,
    /// Retries after a transient failure.
    pub fetch_retries: u64,
    /// Simulated backoff minutes the retry policy accounted.
    pub backoff_minutes: u64,
    /// Stories lost after the whole retry budget failed.
    pub fetch_failed_stories: usize,
    /// Stories whose voter list was truncated.
    pub truncated_stories: usize,
    /// Vote records lost to truncation.
    pub votes_dropped: u64,
    /// Stories given a duplicated vote record.
    pub duplicated_votes: usize,
    /// Adjacent-swap reorders that displaced the submitter (detectable
    /// downstream via the `submitter-first` rule).
    pub head_reorders: usize,
    /// Adjacent-swap reorders inside the list (silent: no timestamps
    /// exist to contradict them).
    pub mid_reorders: usize,
    /// Users whose entire fan list went missing.
    pub dropped_fan_lists: usize,
    /// Users whose fan list came back partial.
    pub partial_fan_lists: usize,
    /// Individual fan links lost (dropped + partial lists).
    pub fan_links_dropped: usize,
    /// Fan links before injection.
    pub fan_links_before: usize,
    /// Fan links after injection.
    pub fan_links_after: usize,
}

impl FaultLog {
    /// Fraction of fan links that survived injection (1.0 when the
    /// network was empty).
    pub fn fan_link_coverage(&self) -> f64 {
        if self.fan_links_before == 0 {
            1.0
        } else {
            self.fan_links_after as f64 / self.fan_links_before as f64
        }
    }

    /// Did any fault fire at all?
    pub fn any_injected(&self) -> bool {
        self.fetch_retries > 0
            || self.fetch_failed_stories > 0
            || self.truncated_stories > 0
            || self.duplicated_votes > 0
            || self.head_reorders > 0
            || self.mid_reorders > 0
            || self.dropped_fan_lists > 0
            || self.partial_fan_lists > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SampleSource;
    use digg_sim::{Minute, StoryId};
    use social_graph::{SocialGraph, UserId};

    fn record(id: u32, voters: Vec<u32>, source: SampleSource) -> StoryRecord {
        StoryRecord {
            story: StoryId(id),
            submitter: UserId(voters[0]),
            submitted_at: Minute(0),
            voters: voters.into_iter().map(UserId).collect(),
            source,
            final_votes: Some(1000),
        }
    }

    fn dataset() -> DiggDataset {
        let mut b = GraphBuilder::new(64);
        for u in 0..32u32 {
            for f in 1..=4u32 {
                b.add_watch(UserId((u + f * 7) % 64), UserId(u));
            }
        }
        let network: SocialGraph = b.build();
        let top_users = network.users_by_fans_desc().into_iter().take(10).collect();
        DiggDataset {
            scraped_at: Minute(500),
            front_page: (0..20)
                .map(|i| record(i, (i..i + 12).collect(), SampleSource::FrontPage))
                .collect(),
            upcoming: (100..140)
                .map(|i| record(i, (i % 50..i % 50 + 4).collect(), SampleSource::Upcoming))
                .collect(),
            network,
            top_users,
        }
    }

    #[test]
    fn disabled_plan_is_identity() {
        let ds = dataset();
        let plan = FaultPlan::default();
        assert!(plan.is_disabled());
        let (out, log) = plan.apply(&ds);
        assert_eq!(out.front_page, ds.front_page);
        assert_eq!(out.upcoming, ds.upcoming);
        assert_eq!(out.network, ds.network);
        assert_eq!(out.top_users, ds.top_users);
        assert!(!log.any_injected());
        assert_eq!(log.fan_link_coverage(), 1.0);
    }

    #[test]
    fn injection_is_bit_reproducible() {
        let ds = dataset();
        let plan = FaultPlan::degraded(0.4, 77);
        let (a, log_a) = plan.apply(&ds);
        let (b, log_b) = plan.apply(&ds);
        assert_eq!(a.front_page, b.front_page);
        assert_eq!(a.upcoming, b.upcoming);
        assert_eq!(a.network, b.network);
        assert_eq!(log_a, log_b);
        assert!(log_a.any_injected(), "a 0.4 plan over 60 stories must fire");
    }

    #[test]
    fn injection_is_record_local() {
        // The faults a story suffers depend only on its identity, not
        // on which other stories are present: injecting over a subset
        // gives the same per-story outcomes.
        let ds = dataset();
        let plan = FaultPlan::degraded(0.5, 9);
        let mut full_log = FaultLog::default();
        let full = plan.apply_records(&ds.front_page, &mut full_log);
        let mut half_log = FaultLog::default();
        let half = plan.apply_records(&ds.front_page[10..], &mut half_log);
        let full_tail: Vec<_> = full
            .iter()
            .filter(|r| r.story.0 >= ds.front_page[10].story.0)
            .cloned()
            .collect();
        assert_eq!(half, full_tail);
    }

    #[test]
    fn fetch_budget_drops_stories_and_accounts_backoff() {
        let ds = dataset();
        let plan = FaultPlan {
            fetch_failure: 0.9,
            seed: 3,
            ..FaultPlan::default()
        };
        let (out, log) = plan.apply(&ds);
        assert!(
            log.fetch_failed_stories > 0,
            "0.9^3 per story must drop some"
        );
        assert!(log.fetch_retries > 0);
        assert!(log.backoff_minutes >= log.fetch_retries * 2);
        assert_eq!(
            out.front_page.len() + out.upcoming.len() + log.fetch_failed_stories,
            ds.front_page.len() + ds.upcoming.len()
        );
    }

    #[test]
    fn truncation_keeps_a_prefix() {
        let ds = dataset();
        let plan = FaultPlan {
            truncate_voters: 1.0,
            truncate_keep: 0.5,
            seed: 4,
            ..FaultPlan::default()
        };
        let (out, log) = plan.apply(&ds);
        assert_eq!(log.truncated_stories, 60);
        for (faulted, orig) in out.front_page.iter().zip(&ds.front_page) {
            assert!(faulted.voters.len() < orig.voters.len());
            assert_eq!(faulted.voters[..], orig.voters[..faulted.voters.len()]);
            assert_eq!(faulted.voters[0], orig.submitter);
        }
    }

    #[test]
    fn fan_faults_shrink_the_network_deterministically() {
        let ds = dataset();
        let plan = FaultPlan {
            drop_fan_list: 0.3,
            partial_fan_list: 0.5,
            partial_keep: 0.5,
            seed: 11,
            ..FaultPlan::default()
        };
        let (out, log) = plan.apply(&ds);
        assert!(out.network.edge_count() < ds.network.edge_count());
        assert_eq!(
            log.fan_links_before - log.fan_links_dropped,
            log.fan_links_after
        );
        assert!(log.fan_link_coverage() < 1.0);
        assert!(log.fan_link_coverage() > 0.0);
        // Surviving fan lists are exact sublists of the originals.
        for u in 0..ds.network.user_count() {
            let u = UserId::from_index(u);
            let kept = out.network.fans(u);
            let orig = ds.network.fans(u);
            assert!(kept.iter().all(|f| orig.contains(f)));
        }
    }

    #[test]
    fn kill_plan_is_deterministic_and_cell_local() {
        let plan = SweepKillPlan {
            seed: 42,
            kill_prob: 0.5,
            max_checkpoint: 4,
        };
        let a = plan.kills(12);
        assert_eq!(a, plan.kills(12), "same plan, same schedule");
        // Cell-local: a cell's verdict doesn't depend on grid size.
        assert_eq!(&a[..6], &plan.kills(6)[..]);
        for k in a.iter().flatten() {
            assert!((1..=4).contains(k));
        }
        assert!(a.iter().any(|k| k.is_some()), "0.5 over 12 cells must fire");
        assert!(a.iter().any(|k| k.is_none()));
        // Disabled and kill-all extremes.
        assert!(SweepKillPlan::default()
            .kills(8)
            .iter()
            .all(|k| k.is_none()));
        assert!(SweepKillPlan::kill_all(7, 3)
            .kills(8)
            .iter()
            .all(|k| k.is_some()));
        // The chaos bridge is the same schedule, Kill-wrapped.
        let bridged = plan.chaos(12);
        for (k, c) in a.iter().zip(&bridged) {
            match (k, c) {
                (None, None) => {}
                (Some(k), Some(ChaosFault::Kill { after_checkpoints })) => {
                    assert_eq!(k, after_checkpoints)
                }
                other => panic!("kills/chaos disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_plan_is_deterministic_cell_local_and_class_complete() {
        let plan = ChaosPlan {
            seed: 43,
            fault_prob: 0.5,
            max_checkpoint: 4,
        };
        let a = plan.faults(12);
        assert_eq!(a, plan.faults(12), "same plan, same schedule");
        // Cell-local: a cell's fault doesn't depend on grid size.
        assert_eq!(&a[..6], &plan.faults(6)[..]);
        assert!(a.iter().any(|f| f.is_some()), "0.5 over 12 cells must fire");
        assert!(a.iter().any(|f| f.is_none()));
        assert!(ChaosPlan::default().faults(8).iter().all(|f| f.is_none()));
        // Checkpoint anchors respect the bound.
        for f in ChaosPlan::fault_all(9, 4).faults(32).iter().flatten() {
            match f {
                ChaosFault::Kill { after_checkpoints }
                | ChaosFault::Stall { after_checkpoints }
                | ChaosFault::Dawdle { after_checkpoints } => {
                    assert!((1..=4).contains(after_checkpoints))
                }
                ChaosFault::TornCheckpoint { at_checkpoint }
                | ChaosFault::BitFlipCheckpoint { at_checkpoint, .. } => {
                    assert!((1..=4).contains(at_checkpoint))
                }
                ChaosFault::CorruptFrame { .. } => {}
            }
        }
        // The full matrix faults every cell and covers every class in
        // any six consecutive cells.
        let m = ChaosPlan::fault_all(9, 3).matrix(6);
        assert!(m.iter().all(|f| f.is_some()));
        let classes: Vec<u32> = m
            .iter()
            .map(|f| match f.unwrap() {
                ChaosFault::Kill { .. } => 0,
                ChaosFault::Stall { .. } => 1,
                ChaosFault::Dawdle { .. } => 2,
                ChaosFault::CorruptFrame { .. } => 3,
                ChaosFault::TornCheckpoint { .. } => 4,
                ChaosFault::BitFlipCheckpoint { .. } => 5,
            })
            .collect();
        assert_eq!(classes, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_before_retry(1), 2);
        assert_eq!(r.backoff_before_retry(2), 4);
        assert_eq!(r.backoff_before_retry(3), 8);
        assert_eq!(r.backoff_before_retry(10), 30);
    }
}
