//! Dataset invariants.
//!
//! The paper reports several hard facts about its dataset; a valid
//! synthetic dataset must satisfy the structural ones exactly and the
//! statistical ones within tolerance. [`validate`] checks the
//! structural set and returns every violation (empty = valid).

use crate::model::{DiggDataset, SampleSource};
use std::collections::HashMap;
use std::collections::HashSet;

/// Rule id of the informational fan-coverage measurement (see
/// [`informational`]); never emitted by [`validate`] because low
/// coverage is a *condition*, not a structural violation.
pub const FAN_COVERAGE_RULE: &str = "fan-coverage";

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule (stable identifier, see [`validate`]).
    pub rule: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Check the structural invariants:
///
/// * `promotion-boundary-fp` — every front-page record has at least
///   `threshold` scraped votes (paper: no front-page story below 43);
/// * `promotion-boundary-up` — every upcoming record has fewer than
///   `threshold` scraped votes (paper: none above 42 in the queue);
/// * `submitter-first` — each voter list starts with the submitter;
/// * `no-duplicate-voters` — no voter appears twice on one story
///   (every duplicated voter is reported, once each, with its
///   occurrence count);
/// * `final-not-below-scraped` — augmented totals never undercut the
///   scraped count;
/// * `voters-in-network` — every voter id exists in the scraped
///   network's user range;
/// * `top-users-sorted` — the Top Users list is ordered by fan count.
pub fn validate(ds: &DiggDataset, threshold: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    for r in ds.all_records() {
        let id = r.story;
        match r.source {
            SampleSource::FrontPage => {
                if r.voters.len() < threshold {
                    out.push(Violation {
                        rule: "promotion-boundary-fp",
                        detail: format!(
                            "front-page story {id} scraped with only {} votes (< {threshold})",
                            r.voters.len()
                        ),
                    });
                }
            }
            SampleSource::Upcoming => {
                if r.voters.len() >= threshold {
                    out.push(Violation {
                        rule: "promotion-boundary-up",
                        detail: format!(
                            "queue story {id} scraped with {} votes (>= {threshold})",
                            r.voters.len()
                        ),
                    });
                }
            }
        }
        if r.voters.first() != Some(&r.submitter) {
            out.push(Violation {
                rule: "submitter-first",
                detail: format!("story {id} voter list does not start with its submitter"),
            });
        }
        // Report *every* duplicated voter on the story (not just the
        // first), each once, with its occurrence count — in first-seen
        // order so output is deterministic. HashMap is safe here
        // (determinism audit, DESIGN.md §13): the `order` Vec carries
        // the output order; `counts` is keyed lookups only.
        let mut counts: HashMap<social_graph::UserId, usize> = HashMap::new();
        let mut order = Vec::new();
        for &v in &r.voters {
            let c = counts.entry(v).or_insert(0);
            *c += 1;
            if *c == 2 {
                order.push(v);
            }
            if v.index() >= ds.network.user_count() {
                out.push(Violation {
                    rule: "voters-in-network",
                    detail: format!("story {id} voter {v} outside the scraped network"),
                });
            }
        }
        for v in order {
            out.push(Violation {
                rule: "no-duplicate-voters",
                detail: format!(
                    "story {id} has duplicate voter {v} ({} occurrences)",
                    counts[&v]
                ),
            });
        }
        if let Some(fin) = r.final_votes {
            if (fin as usize) < r.voters.len() {
                out.push(Violation {
                    rule: "final-not-below-scraped",
                    detail: format!(
                        "story {id} final votes {fin} below scraped {}",
                        r.voters.len()
                    ),
                });
            }
        }
    }
    for w in ds.top_users.windows(2) {
        if ds.network.fan_count(w[0]) < ds.network.fan_count(w[1]) {
            out.push(Violation {
                rule: "top-users-sorted",
                detail: format!("{} ranked above {} with fewer fans", w[0], w[1]),
            });
            break;
        }
    }
    out
}

/// Fraction of distinct voters (across both samples) with at least one
/// observed fan link in the scraped network. On a lossy scrape —
/// dropped or partial fan lists — this falls below its clean-scrape
/// value; the lenient loader reports it so downstream consumers see
/// *how much* network the analyses actually stand on.
pub fn fan_coverage(ds: &DiggDataset) -> f64 {
    let mut voters = HashSet::new();
    for r in ds.all_records() {
        for &v in &r.voters {
            if v.index() < ds.network.user_count() {
                voters.insert(v);
            }
        }
    }
    if voters.is_empty() {
        return 1.0;
    }
    let covered = voters
        .iter()
        .filter(|&&v| ds.network.fan_count(v) > 0)
        .count();
    covered as f64 / voters.len() as f64
}

/// Informational observations that are *reported* but never fail
/// validation. Currently one rule:
///
/// * `fan-coverage` — the [`fan_coverage`] measurement, surfaced so
///   degradation reports can carry it under a stable rule id.
pub fn informational(ds: &DiggDataset) -> Vec<Violation> {
    vec![Violation {
        rule: FAN_COVERAGE_RULE,
        detail: format!(
            "{:.4} of distinct voters have at least one observed fan",
            fan_coverage(ds)
        ),
    }]
}

/// Statistical summary used by the calibration report and tests.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetStats {
    /// Front-page records.
    pub front_page_stories: usize,
    /// Upcoming records.
    pub upcoming_stories: usize,
    /// Distinct voters across both samples.
    pub distinct_voters: usize,
    /// Fraction of augmented front-page stories with < 500 final
    /// votes (paper: ≈0.2).
    pub fp_below_500: f64,
    /// Fraction with > 1500 final votes (paper: ≈0.2).
    pub fp_above_1500: f64,
    /// Fraction of front-page stories submitted by users with fewer
    /// than 10 fans (paper §4.1: slightly more than half).
    pub fp_poorly_connected_submitters: f64,
}

/// Compute the summary.
pub fn stats(ds: &DiggDataset) -> DatasetStats {
    let finals: Vec<f64> = ds
        .front_page
        .iter()
        .filter_map(|r| r.final_votes)
        .map(f64::from)
        .collect();
    let frac = |pred: &dyn Fn(f64) -> bool| {
        if finals.is_empty() {
            0.0
        } else {
            finals.iter().filter(|&&v| pred(v)).count() as f64 / finals.len() as f64
        }
    };
    let poorly = if ds.front_page.is_empty() {
        0.0
    } else {
        ds.front_page
            .iter()
            .filter(|r| ds.network.fan_count(r.submitter) < 10)
            .count() as f64
            / ds.front_page.len() as f64
    };
    DatasetStats {
        front_page_stories: ds.front_page.len(),
        upcoming_stories: ds.upcoming.len(),
        distinct_voters: ds.distinct_voters(),
        fp_below_500: frac(&|v| v < 500.0),
        fp_above_1500: frac(&|v| v > 1500.0),
        fp_poorly_connected_submitters: poorly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StoryRecord;
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, SocialGraph, UserId};

    fn record(id: u32, voters: Vec<u32>, source: SampleSource, fin: Option<u32>) -> StoryRecord {
        StoryRecord {
            story: StoryId(id),
            submitter: UserId(voters[0]),
            submitted_at: Minute(0),
            voters: voters.into_iter().map(UserId).collect(),
            source,
            final_votes: fin,
        }
    }

    fn dataset(front: Vec<StoryRecord>, upcoming: Vec<StoryRecord>) -> DiggDataset {
        DiggDataset {
            scraped_at: Minute(100),
            front_page: front,
            upcoming,
            network: SocialGraph::empty(10),
            top_users: vec![],
        }
    }

    #[test]
    fn clean_dataset_validates() {
        let ds = dataset(
            vec![record(0, vec![0, 1, 2], SampleSource::FrontPage, Some(5))],
            vec![record(1, vec![3, 4], SampleSource::Upcoming, None)],
        );
        assert!(validate(&ds, 3).is_empty());
    }

    #[test]
    fn boundary_violations_detected() {
        let ds = dataset(
            vec![record(0, vec![0, 1], SampleSource::FrontPage, None)],
            vec![record(1, vec![2, 3, 4], SampleSource::Upcoming, None)],
        );
        let v = validate(&ds, 3);
        assert!(v.iter().any(|x| x.rule == "promotion-boundary-fp"));
        assert!(v.iter().any(|x| x.rule == "promotion-boundary-up"));
    }

    #[test]
    fn submitter_and_duplicate_rules() {
        let mut bad = record(0, vec![0, 1, 1], SampleSource::FrontPage, None);
        bad.submitter = UserId(9);
        let ds = dataset(vec![bad], vec![]);
        let v = validate(&ds, 1);
        assert!(v.iter().any(|x| x.rule == "submitter-first"));
        assert!(v.iter().any(|x| x.rule == "no-duplicate-voters"));
    }

    #[test]
    fn all_duplicate_voters_reported_once_each() {
        // Voter 1 appears 3×, voter 2 appears 2×: both reported, each
        // exactly once, with occurrence counts.
        let ds = dataset(
            vec![record(
                0,
                vec![0, 1, 1, 2, 1, 2],
                SampleSource::FrontPage,
                None,
            )],
            vec![],
        );
        let v: Vec<_> = validate(&ds, 1)
            .into_iter()
            .filter(|x| x.rule == "no-duplicate-voters")
            .collect();
        assert_eq!(v.len(), 2);
        assert!(v[0].detail.contains("voter u1 (3 occurrences)"));
        assert!(v[1].detail.contains("voter u2 (2 occurrences)"));
    }

    #[test]
    fn fan_coverage_counts_voters_with_fans() {
        let mut g = GraphBuilder::new(4);
        g.add_watch(UserId(1), UserId(0)); // user 0 has a fan
        let ds = DiggDataset {
            scraped_at: Minute(0),
            front_page: vec![record(0, vec![0, 1], SampleSource::FrontPage, None)],
            upcoming: vec![],
            network: g.build(),
            top_users: vec![],
        };
        // Voters {0, 1}; only 0 has a fan.
        assert_eq!(fan_coverage(&ds), 0.5);
        let info = informational(&ds);
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].rule, FAN_COVERAGE_RULE);
        assert!(info[0].detail.contains("0.5000"));
        // Informational rules never appear in validate output.
        assert!(validate(&ds, 1).iter().all(|v| v.rule != FAN_COVERAGE_RULE));
    }

    #[test]
    fn final_votes_rule() {
        let ds = dataset(
            vec![record(0, vec![0, 1, 2], SampleSource::FrontPage, Some(2))],
            vec![],
        );
        let v = validate(&ds, 3);
        assert!(v.iter().any(|x| x.rule == "final-not-below-scraped"));
        assert!(v[0].to_string().contains('['));
    }

    #[test]
    fn out_of_range_voters_detected() {
        let ds = dataset(
            vec![record(0, vec![0, 99], SampleSource::FrontPage, None)],
            vec![],
        );
        let v = validate(&ds, 1);
        assert!(v.iter().any(|x| x.rule == "voters-in-network"));
    }

    #[test]
    fn top_user_ordering_checked() {
        let mut g = GraphBuilder::new(3);
        g.add_watch(UserId(1), UserId(0)); // user 0 has one fan
        let network = g.build();
        let ds = DiggDataset {
            scraped_at: Minute(0),
            front_page: vec![],
            upcoming: vec![],
            network,
            top_users: vec![UserId(2), UserId(0)], // wrong order
        };
        let v = validate(&ds, 1);
        assert!(v.iter().any(|x| x.rule == "top-users-sorted"));
    }

    #[test]
    fn stats_fractions() {
        let ds = dataset(
            vec![
                record(0, vec![0, 1, 2], SampleSource::FrontPage, Some(100)),
                record(1, vec![1, 2, 3], SampleSource::FrontPage, Some(2000)),
            ],
            vec![record(2, vec![4], SampleSource::Upcoming, None)],
        );
        let s = stats(&ds);
        assert_eq!(s.front_page_stories, 2);
        assert_eq!(s.upcoming_stories, 1);
        assert_eq!(s.distinct_voters, 5);
        assert_eq!(s.fp_below_500, 0.5);
        assert_eq!(s.fp_above_1500, 0.5);
        // Empty network: every submitter has 0 fans (< 10).
        assert_eq!(s.fp_poorly_connected_submitters, 1.0);
    }
}
