//! Round-trip property: every fault class injected by a [`FaultPlan`]
//! is either *repaired* or *quarantined* by lenient ingestion, with
//! the matching rule id from the `validate` taxonomy, and the ingested
//! dataset always passes `validate`. Also pins the identity of the
//! disabled plan and the bit-reproducibility of the whole
//! inject-then-ingest pipeline.

use digg_data::faults::FaultPlan;
use digg_data::ingest::{ingest_lenient, DegradationReport};
use digg_data::model::{DiggDataset, SampleSource, StoryRecord};
use digg_data::validate;
use digg_sim::{Minute, StoryId};
use proptest::prelude::*;
use social_graph::{GraphBuilder, UserId};

const N: u32 = 48;
const THRESHOLD: usize = 5;

fn record_strategy(base_id: u32, source: SampleSource) -> impl Strategy<Value = StoryRecord> {
    let votes_range = match source {
        SampleSource::FrontPage => THRESHOLD..20usize,
        SampleSource::Upcoming => 1..THRESHOLD,
    };
    (
        0u32..1000,
        prop::collection::btree_set(0u32..N, votes_range),
        0u32..500,
        any::<bool>(),
    )
        .prop_map(move |(id, raw, extra_votes, augmented)| {
            let voters: Vec<UserId> = raw.into_iter().map(UserId).collect();
            let final_votes = augmented.then(|| voters.len() as u32 + extra_votes);
            StoryRecord {
                story: StoryId(base_id + id),
                submitter: voters[0],
                submitted_at: Minute(0),
                voters,
                source,
                final_votes,
            }
        })
}

fn dataset_strategy() -> impl Strategy<Value = DiggDataset> {
    (
        prop::collection::vec(record_strategy(0, SampleSource::FrontPage), 1..8),
        prop::collection::vec(record_strategy(2000, SampleSource::Upcoming), 1..8),
    )
        .prop_map(|(front_page, upcoming)| {
            // A deterministic scale-free-ish network so fan faults have
            // links to destroy and the Top Users list is meaningful.
            let mut b = GraphBuilder::new(N as usize);
            for u in 0..N {
                for k in 1..=(u % 5) {
                    b.add_watch(UserId((u + k * 11) % N), UserId(u));
                }
            }
            let network = b.build();
            let top_users = network.users_by_fans_desc().into_iter().take(12).collect();
            DiggDataset {
                scraped_at: Minute(1000),
                front_page,
                upcoming,
                network,
                top_users,
            }
        })
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        (any::<u64>(), 0.0..0.5f64, 0.0..1.0f64, 0.1..0.9f64),
        (
            0.0..1.0f64,
            0.0..1.0f64,
            0.1..0.9f64,
            0.0..1.0f64,
            0.0..1.0f64,
        ),
    )
        .prop_map(
            |(
                (seed, fetch_failure, truncate_voters, truncate_keep),
                (drop_fan_list, partial_fan_list, partial_keep, duplicate_vote, reorder_votes),
            )| FaultPlan {
                seed,
                fetch_failure,
                truncate_voters,
                truncate_keep,
                drop_fan_list,
                partial_fan_list,
                partial_keep,
                duplicate_vote,
                reorder_votes,
                ..FaultPlan::default()
            },
        )
}

fn run(
    ds: &DiggDataset,
    plan: &FaultPlan,
) -> (DiggDataset, digg_data::FaultLog, DegradationReport) {
    let (faulted, log) = plan.apply(ds);
    let (out, report) = ingest_lenient(faulted, THRESHOLD);
    (out, log, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_fault_class_repaired_or_quarantined_with_matching_rule(
        ds in dataset_strategy(),
        plan in plan_strategy(),
    ) {
        let (faulted, log) = plan.apply(&ds);
        let (out, report) = ingest_lenient(faulted.clone(), THRESHOLD);

        // The lenient output always passes strict validation.
        let violations = validate::validate(&out, THRESHOLD);
        prop_assert!(violations.is_empty(), "violations survived ingest: {violations:?}");

        // Fetch failures: stories are simply absent from the scrape.
        prop_assert_eq!(
            faulted.front_page.len() + faulted.upcoming.len() + log.fetch_failed_stories,
            ds.front_page.len() + ds.upcoming.len()
        );
        // Everything the ingester saw is either kept or quarantined.
        prop_assert_eq!(report.records_seen, faulted.front_page.len() + faulted.upcoming.len());
        prop_assert_eq!(report.records_kept + report.quarantined.len(), report.records_seen);

        // Duplicated vote records <-> `no-duplicate-voters` repairs,
        // one removed entry per injected duplicate.
        prop_assert_eq!(report.repairs("no-duplicate-voters"), log.duplicated_votes);

        // Head reorders (submitter displaced) <-> `submitter-first`
        // repairs; mid-list reorders are invisible without timestamps
        // and must NOT trigger repairs.
        prop_assert_eq!(report.repairs("submitter-first"), log.head_reorders);

        // Truncation's only rule consequence: a front-page record cut
        // below the threshold is quarantined under the boundary rule.
        for q in &report.quarantined {
            prop_assert_eq!(q.rule.as_str(), "promotion-boundary-fp");
            prop_assert_eq!(q.source, SampleSource::FrontPage);
        }
        prop_assert!(report.quarantined.len() <= log.truncated_stories);

        // Fault classes that cannot arise from injection never get
        // phantom repairs.
        prop_assert_eq!(report.repairs("voters-in-network"), 0);
        prop_assert_eq!(report.repairs("final-not-below-scraped"), 0);

        // Fan faults: the informational coverage measurement is a
        // probability, and the Top Users list is only ever re-sorted
        // when fan lists actually degraded.
        prop_assert!((0.0..=1.0).contains(&report.fan_coverage));
        if log.dropped_fan_lists == 0 && log.partial_fan_lists == 0 {
            prop_assert!(!report.top_users_resorted);
            prop_assert_eq!(&out.network, &ds.network);
        }
    }

    #[test]
    fn inject_then_ingest_is_bit_reproducible(
        ds in dataset_strategy(),
        plan in plan_strategy(),
    ) {
        let (out_a, log_a, report_a) = run(&ds, &plan);
        let (out_b, log_b, report_b) = run(&ds, &plan);
        prop_assert_eq!(out_a.front_page, out_b.front_page);
        prop_assert_eq!(out_a.upcoming, out_b.upcoming);
        prop_assert_eq!(out_a.network, out_b.network);
        prop_assert_eq!(out_a.top_users, out_b.top_users);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(report_a, report_b);
    }

    #[test]
    fn disabled_plan_roundtrips_identically(ds in dataset_strategy()) {
        let plan = FaultPlan::default();
        prop_assert!(plan.is_disabled());
        let (faulted, log) = plan.apply(&ds);
        prop_assert!(!log.any_injected());
        let (out, report) = ingest_lenient(faulted, THRESHOLD);
        prop_assert_eq!(out.front_page, ds.front_page);
        prop_assert_eq!(out.upcoming, ds.upcoming);
        prop_assert_eq!(out.network, ds.network);
        prop_assert_eq!(out.top_users, ds.top_users);
        prop_assert!(!report.any_degradation());
    }
}
