//! Property-based tests for the dataset layer: the validator accepts
//! exactly the structurally sound datasets, and serialization is
//! total.

use digg_data::model::{DiggDataset, SampleSource, StoryRecord};
use digg_data::validate;
use digg_sim::{Minute, StoryId};
use proptest::prelude::*;
use social_graph::{SocialGraph, UserId};

const N: u32 = 40;
const THRESHOLD: usize = 5;

/// A structurally valid record for the given source.
fn record_strategy(source: SampleSource) -> impl Strategy<Value = StoryRecord> {
    let votes_range = match source {
        SampleSource::FrontPage => THRESHOLD..20usize,
        SampleSource::Upcoming => 1..THRESHOLD,
    };
    (
        any::<u32>(),
        prop::collection::btree_set(0u32..N, votes_range),
        0u32..500,
        any::<bool>(),
    )
        .prop_map(move |(id, raw, extra_votes, augmented)| {
            let voters: Vec<UserId> = raw.into_iter().map(UserId).collect();
            let final_votes = augmented.then(|| voters.len() as u32 + extra_votes);
            StoryRecord {
                story: StoryId(id),
                submitter: voters[0],
                submitted_at: Minute(0),
                voters,
                source,
                final_votes,
            }
        })
}

fn dataset_strategy() -> impl Strategy<Value = DiggDataset> {
    (
        prop::collection::vec(record_strategy(SampleSource::FrontPage), 0..10),
        prop::collection::vec(record_strategy(SampleSource::Upcoming), 0..10),
    )
        .prop_map(|(front_page, upcoming)| DiggDataset {
            scraped_at: Minute(1000),
            front_page,
            upcoming,
            network: SocialGraph::empty(N as usize),
            top_users: vec![],
        })
}

proptest! {
    #[test]
    fn valid_datasets_pass_validation(ds in dataset_strategy()) {
        // Front-page records have >= THRESHOLD voters by construction;
        // upcoming records fewer; voters deduplicated; finals >=
        // scraped. The validator must accept all of them.
        let violations = validate::validate(&ds, THRESHOLD);
        prop_assert!(violations.is_empty(), "spurious violations: {violations:?}");
    }

    #[test]
    fn corrupting_a_record_is_detected(ds in dataset_strategy(), which in 0usize..4) {
        let mut ds = ds;
        let Some(r) = ds.front_page.first_mut() else { return Ok(()); };
        let expected_rule = match which {
            0 => {
                r.voters.truncate(THRESHOLD - 1); // below boundary
                "promotion-boundary-fp"
            }
            1 => {
                r.submitter = UserId(N + 1); // not first voter
                "submitter-first"
            }
            2 => {
                let dup = r.voters[0];
                r.voters.push(dup); // duplicate voter
                "no-duplicate-voters"
            }
            _ => {
                r.final_votes = Some(0); // final below scraped
                "final-not-below-scraped"
            }
        };
        let violations = validate::validate(&ds, THRESHOLD);
        prop_assert!(
            violations.iter().any(|v| v.rule == expected_rule),
            "expected {expected_rule}, got {violations:?}"
        );
    }

    #[test]
    fn json_roundtrip_is_lossless(ds in dataset_strategy()) {
        let json = digg_data::io::to_json(&ds).unwrap();
        let back = digg_data::io::from_json(&json).unwrap();
        prop_assert_eq!(ds.front_page, back.front_page);
        prop_assert_eq!(ds.upcoming, back.upcoming);
        prop_assert_eq!(ds.scraped_at, back.scraped_at);
    }

    #[test]
    fn csv_row_count_matches_records(ds in dataset_strategy()) {
        let csv = digg_data::io::to_csv(&ds);
        let rows = csv.lines().count();
        prop_assert_eq!(rows, 1 + ds.front_page.len() + ds.upcoming.len());
    }

    #[test]
    fn stats_fractions_are_probabilities(ds in dataset_strategy()) {
        let s = validate::stats(&ds);
        prop_assert!((0.0..=1.0).contains(&s.fp_below_500));
        prop_assert!((0.0..=1.0).contains(&s.fp_above_1500));
        prop_assert!((0.0..=1.0).contains(&s.fp_poorly_connected_submitters));
        prop_assert_eq!(s.front_page_stories, ds.front_page.len());
        prop_assert_eq!(s.upcoming_stories, ds.upcoming.len());
        prop_assert!(s.distinct_voters <= N as usize);
    }
}
