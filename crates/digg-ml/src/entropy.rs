//! Entropy, information gain and gain ratio for binary-class splits.

/// Binary entropy of a `(positives, total)` split, in bits. Zero for
/// empty or pure sets.
pub fn entropy(pos: usize, total: usize) -> f64 {
    if total == 0 || pos == 0 || pos == total {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    let q = 1.0 - p;
    -(p * p.log2() + q * q.log2())
}

/// Counts describing a candidate binary split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitCounts {
    /// Positives on the `<= threshold` side.
    pub le_pos: usize,
    /// Total on the `<= threshold` side.
    pub le_total: usize,
    /// Positives on the `>` side.
    pub gt_pos: usize,
    /// Total on the `>` side.
    pub gt_total: usize,
}

impl SplitCounts {
    /// Total instances.
    pub fn total(&self) -> usize {
        self.le_total + self.gt_total
    }

    /// Total positives.
    pub fn positives(&self) -> usize {
        self.le_pos + self.gt_pos
    }

    /// Information gain of the split relative to the parent entropy.
    pub fn information_gain(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let parent = entropy(self.positives(), n);
        let wl = self.le_total as f64 / n as f64;
        let wg = self.gt_total as f64 / n as f64;
        parent - wl * entropy(self.le_pos, self.le_total) - wg * entropy(self.gt_pos, self.gt_total)
    }

    /// Split information (intrinsic value) of the partition sizes.
    pub fn split_info(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let mut s = 0.0;
        for part in [self.le_total, self.gt_total] {
            if part > 0 {
                let w = part as f64 / n as f64;
                s -= w * w.log2();
            }
        }
        s
    }

    /// C4.5's gain ratio: information gain normalised by split info.
    /// Returns 0 when the split is degenerate (one empty side).
    pub fn gain_ratio(&self) -> f64 {
        let si = self.split_info();
        if si <= 0.0 {
            return 0.0;
        }
        self.information_gain() / si
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(0, 0), 0.0);
        assert_eq!(entropy(0, 10), 0.0);
        assert_eq!(entropy(10, 10), 0.0);
        assert!((entropy(5, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_asymmetric() {
        let e = entropy(1, 10);
        assert!(e > 0.0 && e < 1.0);
        assert!((entropy(1, 10) - entropy(9, 10)).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_gains_full_entropy() {
        // 5 pos left, 5 neg right: gain = parent entropy = 1 bit.
        let s = SplitCounts {
            le_pos: 5,
            le_total: 5,
            gt_pos: 0,
            gt_total: 5,
        };
        assert!((s.information_gain() - 1.0).abs() < 1e-12);
        assert!((s.split_info() - 1.0).abs() < 1e-12);
        assert!((s.gain_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_has_zero_gain() {
        // Same class mix on both sides.
        let s = SplitCounts {
            le_pos: 2,
            le_total: 4,
            gt_pos: 3,
            gt_total: 6,
        };
        assert!(s.information_gain().abs() < 1e-12);
    }

    #[test]
    fn degenerate_split_has_zero_ratio() {
        let s = SplitCounts {
            le_pos: 5,
            le_total: 10,
            gt_pos: 0,
            gt_total: 0,
        };
        assert_eq!(s.gain_ratio(), 0.0);
        assert_eq!(s.split_info(), 0.0);
    }

    #[test]
    fn unbalanced_split_penalised_by_ratio() {
        // Two splits with equal gain; the more unbalanced one has the
        // higher split_info denominator... actually split_info is
        // *smaller* for unbalanced partitions, so gain ratio favours
        // them when gain is equal. Verify the relationship concretely.
        let balanced = SplitCounts {
            le_pos: 5,
            le_total: 5,
            gt_pos: 0,
            gt_total: 5,
        };
        let unbalanced = SplitCounts {
            le_pos: 1,
            le_total: 1,
            gt_pos: 4,
            gt_total: 9,
        };
        assert!(balanced.split_info() > unbalanced.split_info());
        assert!(balanced.information_gain() > unbalanced.information_gain());
    }

    #[test]
    fn counts_totals() {
        let s = SplitCounts {
            le_pos: 1,
            le_total: 3,
            gt_pos: 2,
            gt_total: 4,
        };
        assert_eq!(s.total(), 7);
        assert_eq!(s.positives(), 3);
    }
}
