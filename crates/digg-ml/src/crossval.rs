//! Stratified k-fold cross-validation.
//!
//! The paper: "Results of 10-fold validation indicate that this tree
//! correctly classifies 174 of the examples, and misclassifies 33
//! examples." Weka's default 10-fold CV is stratified; so is ours.

use crate::c45::{train, C45Params};
use crate::data::MlDataset;
use crate::metrics::{evaluate, ConfusionMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValResult {
    /// Pooled confusion matrix over all folds.
    pub pooled: ConfusionMatrix,
    /// Per-fold matrices.
    pub folds: Vec<ConfusionMatrix>,
}

impl CrossValResult {
    /// Total correctly classified examples (the paper's "174 of 207").
    pub fn correct(&self) -> usize {
        self.pooled.correct()
    }

    /// Total misclassified examples (the paper's "33").
    pub fn errors(&self) -> usize {
        self.pooled.errors()
    }

    /// Pooled accuracy.
    pub fn accuracy(&self) -> f64 {
        self.pooled.accuracy()
    }
}

/// Deterministic stratified fold assignment: shuffle positives and
/// negatives separately, then deal them round-robin into `k` folds.
/// Returns a fold id per instance.
pub fn stratified_folds(ds: &MlDataset, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least two folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for (i, inst) in ds.instances().iter().enumerate() {
        if inst.label {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut fold = vec![0usize; ds.len()];
    for (j, &i) in pos.iter().chain(neg.iter()).enumerate() {
        fold[i] = j % k;
    }
    fold
}

/// Run stratified k-fold cross-validation of a C4.5 tree.
///
/// # Panics
///
/// Panics if any training fold ends up empty (dataset smaller than
/// `k`).
pub fn cross_validate(ds: &MlDataset, params: &C45Params, k: usize, seed: u64) -> CrossValResult {
    let fold = stratified_folds(ds, k, seed);
    let mut pooled = ConfusionMatrix::default();
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let train_idx: Vec<usize> = (0..ds.len()).filter(|i| fold[*i] != f).collect();
        let test_idx: Vec<usize> = (0..ds.len()).filter(|i| fold[*i] == f).collect();
        if test_idx.is_empty() {
            folds.push(ConfusionMatrix::default());
            continue;
        }
        let tree = train(&ds.subset(&train_idx), params);
        let cm = evaluate(&tree, &ds.subset(&test_idx));
        pooled.merge(&cm);
        folds.push(cm);
    }
    CrossValResult { pooled, folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    fn separable(n: usize) -> MlDataset {
        let mut ds = MlDataset::new(vec!["x"]);
        for i in 0..n {
            let pos = i % 2 == 0;
            let v = if pos {
                i as f64 / n as f64
            } else {
                10.0 + i as f64 / n as f64
            };
            ds.push(Instance::new(vec![v], pos));
        }
        ds
    }

    #[test]
    fn folds_are_balanced_and_stratified() {
        let ds = separable(100);
        let fold = stratified_folds(&ds, 10, 7);
        let mut counts = [0usize; 10];
        let mut pos_counts = [0usize; 10];
        for (i, &f) in fold.iter().enumerate() {
            counts[f] += 1;
            if ds.instances()[i].label {
                pos_counts[f] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 10));
        assert!(pos_counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let ds = separable(50);
        assert_eq!(stratified_folds(&ds, 5, 1), stratified_folds(&ds, 5, 1));
        assert_ne!(stratified_folds(&ds, 5, 1), stratified_folds(&ds, 5, 2));
    }

    #[test]
    fn cv_on_separable_data_is_perfect() {
        let ds = separable(100);
        let r = cross_validate(&ds, &C45Params::default(), 10, 3);
        assert_eq!(r.correct(), 100);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.folds.len(), 10);
        assert_eq!(r.pooled.total(), 100);
    }

    #[test]
    fn cv_counts_every_example_once() {
        let ds = separable(83);
        let r = cross_validate(&ds, &C45Params::default(), 10, 3);
        assert_eq!(r.pooled.total(), 83);
    }

    #[test]
    fn noisy_data_yields_imperfect_cv() {
        // Random labels: accuracy should be around chance, definitely
        // not perfect.
        let mut ds = MlDataset::new(vec!["x"]);
        let mut state = 123456789u64;
        for i in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ds.push(Instance::new(vec![i as f64], state & 4 == 0));
        }
        let r = cross_validate(&ds, &C45Params::default(), 10, 3);
        assert!(r.errors() > 0);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_must_be_at_least_two() {
        let ds = separable(10);
        let _ = stratified_folds(&ds, 1, 0);
    }
}
