//! Confusion-matrix evaluation.
//!
//! §5.2 reports its holdout result as `TP=4, TN=32, FP=11, FN=1` and
//! compares precisions (`P = TP/(TP+FP)`) between the classifier and
//! Digg's promotion decision; this module is that bookkeeping.

use crate::data::MlDataset;
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Record one `(predicted, actual)` pair.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merge another matrix into this one (used by cross-validation).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Correctly classified examples.
    pub fn correct(&self) -> usize {
        self.tp + self.tn
    }

    /// Misclassified examples.
    pub fn errors(&self) -> usize {
        self.fp + self.fn_
    }

    /// Accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.correct() as f64 / self.total() as f64
    }

    /// Precision `TP/(TP+FP)`; `None` when nothing was predicted
    /// positive.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return None;
        }
        Some(self.tp as f64 / denom as f64)
    }

    /// Recall `TP/(TP+FN)`; `None` when there are no positives.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return None;
        }
        Some(self.tp as f64 / denom as f64)
    }

    /// F1 score; `None` when precision or recall is undefined or both
    /// are zero.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            return None;
        }
        Some(2.0 * p * r / (p + r))
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TP={} TN={} FP={} FN={}",
            self.tp, self.tn, self.fp, self.fn_
        )
    }
}

/// Evaluate a tree on a dataset.
pub fn evaluate(tree: &DecisionTree, ds: &MlDataset) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::default();
    for inst in ds.instances() {
        cm.record(tree.predict(&inst.values), inst.label);
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_holdout() -> ConfusionMatrix {
        ConfusionMatrix {
            tp: 4,
            tn: 32,
            fp: 11,
            fn_: 1,
        }
    }

    #[test]
    fn paper_numbers_reproduce() {
        let cm = paper_holdout();
        assert_eq!(cm.total(), 48);
        assert_eq!(cm.correct(), 36);
        assert_eq!(cm.errors(), 12);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        // Paper: "of these four received more than 520 votes (P=0.57)"
        // for its own seven positives on the promoted subset; on the
        // full holdout precision is 4/15.
        assert!((cm.precision().unwrap() - 4.0 / 15.0).abs() < 1e-12);
        assert!((cm.recall().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn record_routes_all_four_cells() {
        let mut cm = ConfusionMatrix::default();
        cm.record(true, true);
        cm.record(true, false);
        cm.record(false, true);
        cm.record(false, false);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (1, 1, 1, 1));
        assert_eq!(cm.to_string(), "TP=1 TN=1 FP=1 FN=1");
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = paper_holdout();
        a.merge(&paper_holdout());
        assert_eq!(a.total(), 96);
        assert_eq!(a.tp, 8);
    }

    #[test]
    fn degenerate_metrics_are_none() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), None);
        assert_eq!(cm.recall(), None);
        assert_eq!(cm.f1(), None);
        let all_neg = ConfusionMatrix {
            tn: 5,
            ..Default::default()
        };
        assert_eq!(all_neg.precision(), None);
        assert_eq!(all_neg.recall(), None);
    }

    #[test]
    fn f1_balances_precision_recall() {
        let cm = ConfusionMatrix {
            tp: 2,
            fp: 2,
            fn_: 2,
            tn: 0,
        };
        assert!((cm.f1().unwrap() - 0.5).abs() < 1e-12);
    }
}
