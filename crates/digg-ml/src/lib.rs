//! # digg-ml
//!
//! A from-scratch C4.5-style decision-tree learner, reproducing the
//! modelling machinery of the paper's §5.2: "We trained a C4.5 (J48)
//! decision tree classifier on 207 stories … Each story had three
//! attributes: number of in-network votes within the first ten votes
//! (v10), number of users watching the submitter (fans1) and a boolean
//! attribute indicating whether the story was interesting."
//!
//! Implemented here, with the same semantics as Quinlan's C4.5 /
//! Weka's J48 for the feature subset the paper uses (numeric
//! attributes, binary class):
//!
//! * binary threshold splits on numeric attributes, candidate
//!   thresholds at midpoints of adjacent distinct values;
//! * split selection by **gain ratio** among splits with at least
//!   average information gain;
//! * **pessimistic error pruning** with confidence factor 0.25
//!   (C4.5's upper confidence bound on the leaf error rate);
//! * stratified **k-fold cross-validation** (the paper's "10-fold
//!   validation … correctly classifies 174 of the examples");
//! * confusion-matrix evaluation (TP/TN/FP/FN, precision/recall) for
//!   the §5.2 holdout comparison against Digg's promoter.
//!
//! Modules: [`data`], [`entropy`], [`tree`], [`c45`], [`prune`],
//! [`crossval`], [`metrics`], [`baselines`], [`ensemble`] (bagged
//! trees — a modern extension beyond the paper's single J48), and
//! [`stream`] (a decision-path cache keeping a verdict current across
//! per-vote attribute updates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod c45;
pub mod crossval;
pub mod data;
pub mod ensemble;
pub mod entropy;
pub mod metrics;
pub mod prune;
pub mod stream;
pub mod tree;

pub use c45::{train, C45Params};
pub use data::{Instance, MlDataset};
pub use metrics::ConfusionMatrix;
pub use stream::StreamingPrediction;
pub use tree::DecisionTree;
