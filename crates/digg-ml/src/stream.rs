//! Streaming prediction — re-evaluate a tree as attributes update.
//!
//! The live vote-apply workload (`digg-core::incremental`) holds a
//! current attribute vector whose entries drift one vote at a time:
//! `v10` ticks up when an early in-network vote arrives, `fans1` is
//! fixed at submission. Re-walking the tree from the root on every
//! tick is O(depth) — cheap, but wasteful when the update cannot
//! change the outcome. [`StreamingPrediction`] caches the current
//! **decision path** (the `attr <= threshold` tests the last walk
//! took) and on each update first checks whether the new value keeps
//! every cached test involving that attribute on the same side; if so
//! the verdict is unchanged with no tree access at all. Tests on
//! other attributes cannot be affected, so the fast path is exact,
//! not approximate.

use crate::tree::{DecisionTree, Node};

/// One `attr <= threshold` test on the cached decision path, with the
/// branch it took (`le` = the `value <= threshold` side).
#[derive(Debug, Clone, Copy, PartialEq)]
struct PathTest {
    attr: usize,
    threshold: f64,
    le: bool,
}

/// A tree verdict kept current across attribute updates.
///
/// # Examples
///
/// ```
/// use digg_ml::stream::StreamingPrediction;
/// use digg_ml::tree::{DecisionTree, Node};
///
/// let tree = DecisionTree {
///     attribute_names: vec!["x".into()],
///     root: Node::Split {
///         attr: 0,
///         threshold: 4.0,
///         le: Box::new(Node::Leaf { label: true, total: 1, errors: 0 }),
///         gt: Box::new(Node::Leaf { label: false, total: 1, errors: 0 }),
///     },
/// };
/// let mut s = StreamingPrediction::new(&tree, vec![0.0]);
/// assert!(s.verdict());
/// assert!(s.predict_update(&tree, 0, 3.0)); // same side: fast path
/// assert!(!s.predict_update(&tree, 0, 5.0)); // crossed: re-walk
/// ```
#[derive(Debug, Clone)]
pub struct StreamingPrediction {
    values: Vec<f64>,
    path: Vec<PathTest>,
    verdict: bool,
    walks: usize,
    fast_path_hits: usize,
}

impl StreamingPrediction {
    /// Evaluate `tree` on the initial attribute vector and cache the
    /// decision path.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the attribute indices the
    /// tree tests (the same contract as [`DecisionTree::predict`]).
    pub fn new(tree: &DecisionTree, values: Vec<f64>) -> StreamingPrediction {
        let mut s = StreamingPrediction {
            values,
            path: Vec::new(),
            verdict: false,
            walks: 0,
            fast_path_hits: 0,
        };
        s.walk(tree);
        s
    }

    /// The current verdict.
    #[inline]
    pub fn verdict(&self) -> bool {
        self.verdict
    }

    /// The current attribute vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Full tree walks performed (the initial one included).
    pub fn walks(&self) -> usize {
        self.walks
    }

    /// Updates answered from the cached path without touching the
    /// tree.
    pub fn fast_path_hits(&self) -> usize {
        self.fast_path_hits
    }

    /// Set attribute `attr` to `value` and return the (possibly
    /// unchanged) verdict. O(path length) when the update stays on
    /// the cached decision path, O(depth) when it crosses a
    /// threshold; always equal to a fresh
    /// [`DecisionTree::predict`] on the updated vector.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range for the initial vector.
    #[inline]
    pub fn predict_update(&mut self, tree: &DecisionTree, attr: usize, value: f64) -> bool {
        self.values[attr] = value;
        let holds = self
            .path
            .iter()
            .filter(|t| t.attr == attr)
            .all(|t| (value <= t.threshold) == t.le);
        if holds {
            // Every test on the path involving `attr` keeps its
            // branch, and no other test reads `attr`: same leaf.
            self.fast_path_hits += 1;
        } else {
            self.walk(tree);
        }
        self.verdict
    }

    /// Re-walk the tree, recording the decision path.
    fn walk(&mut self, tree: &DecisionTree) {
        self.path.clear();
        self.walks += 1;
        let mut node = &tree.root;
        loop {
            match node {
                Node::Leaf { label, .. } => {
                    self.verdict = *label;
                    return;
                }
                Node::Split {
                    attr,
                    threshold,
                    le,
                    gt,
                } => {
                    let goes_le = self.values[*attr] <= *threshold;
                    self.path.push(PathTest {
                        attr: *attr,
                        threshold: *threshold,
                        le: goes_le,
                    });
                    node = if goes_le { le } else { gt };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// v10 <= 4 -> yes; v10 in (4, 8] -> fans1 > 85; v10 > 8 -> no
    /// (the paper's Fig. 5 shape).
    fn fig5_tree() -> DecisionTree {
        DecisionTree {
            attribute_names: vec!["v10".into(), "fans1".into()],
            root: Node::Split {
                attr: 0,
                threshold: 4.0,
                le: Box::new(Node::Leaf {
                    label: true,
                    total: 130,
                    errors: 5,
                }),
                gt: Box::new(Node::Split {
                    attr: 0,
                    threshold: 8.0,
                    le: Box::new(Node::Split {
                        attr: 1,
                        threshold: 85.0,
                        le: Box::new(Node::Leaf {
                            label: false,
                            total: 29,
                            errors: 13,
                        }),
                        gt: Box::new(Node::Leaf {
                            label: true,
                            total: 30,
                            errors: 8,
                        }),
                    }),
                    gt: Box::new(Node::Leaf {
                        label: false,
                        total: 18,
                        errors: 0,
                    }),
                }),
            },
        }
    }

    #[test]
    fn updates_always_agree_with_fresh_prediction() {
        let tree = fig5_tree();
        let mut s = StreamingPrediction::new(&tree, vec![0.0, 0.0]);
        // A v10 that ticks up one vote at a time, fans1 fixed then
        // revised (a late fan-list correction).
        let updates: Vec<(usize, f64)> = (1..=12)
            .map(|v| (0usize, v as f64))
            .chain([(1, 90.0), (0, 6.0), (1, 40.0), (0, 3.0)])
            .collect();
        for (attr, value) in updates {
            let got = s.predict_update(&tree, attr, value);
            assert_eq!(got, tree.predict(s.values()), "attr {attr} = {value}");
            assert_eq!(got, s.verdict());
        }
    }

    #[test]
    fn same_side_updates_skip_the_walk() {
        let tree = fig5_tree();
        let mut s = StreamingPrediction::new(&tree, vec![0.0, 0.0]);
        assert_eq!(s.walks(), 1);
        // 0 -> 1 -> 4: all on the v10 <= 4 side.
        s.predict_update(&tree, 0, 1.0);
        s.predict_update(&tree, 0, 4.0);
        assert_eq!(s.walks(), 1);
        assert_eq!(s.fast_path_hits(), 2);
        // fans1 is not on the current path (the <= 4 leaf), but the
        // path holds trivially: still no walk.
        s.predict_update(&tree, 1, 500.0);
        assert_eq!(s.walks(), 1);
        // Crossing the threshold forces a re-walk.
        assert!(s.predict_update(&tree, 0, 5.0));
        assert_eq!(s.walks(), 2);
    }

    #[test]
    fn repeated_attr_on_path_is_checked_at_every_test() {
        let tree = fig5_tree();
        // v10 = 6: path tests v10 twice (> 4, <= 8) plus fans1.
        let mut s = StreamingPrediction::new(&tree, vec![6.0, 0.0]);
        assert!(!s.verdict());
        // 6 -> 7 keeps both v10 tests: fast path.
        s.predict_update(&tree, 0, 7.0);
        assert_eq!(s.walks(), 1);
        // 7 -> 9 keeps "> 4" but crosses "<= 8": must re-walk.
        assert!(!s.predict_update(&tree, 0, 9.0));
        assert_eq!(s.walks(), 2);
        assert_eq!(s.verdict(), tree.predict(&[9.0, 0.0]));
    }
}
