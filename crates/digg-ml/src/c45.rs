//! The C4.5 tree builder.

use crate::data::MlDataset;
use crate::entropy::SplitCounts;
use crate::prune;
use crate::tree::{DecisionTree, Node};

/// Training parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C45Params {
    /// Minimum instances on each side of a split (J48's `-M`,
    /// default 2).
    pub min_leaf: usize,
    /// Confidence factor for pessimistic pruning (J48's `-C`, default
    /// 0.25). `None` disables pruning.
    pub confidence: Option<f64>,
}

impl Default for C45Params {
    fn default() -> C45Params {
        C45Params {
            min_leaf: 2,
            confidence: Some(0.25),
        }
    }
}

/// Train a tree on the dataset.
///
/// # Examples
///
/// ```
/// use digg_ml::c45::{train, C45Params};
/// use digg_ml::data::{Instance, MlDataset};
///
/// let mut ds = MlDataset::new(vec!["v10"]);
/// for v in [0.0, 1.0, 2.0] {
///     ds.push(Instance::new(vec![v], true)); // low v10: interesting
/// }
/// for v in [8.0, 9.0, 10.0] {
///     ds.push(Instance::new(vec![v], false));
/// }
/// let tree = train(&ds, &C45Params::default());
/// assert!(tree.predict(&[1.0]));
/// assert!(!tree.predict(&[9.0]));
/// ```
///
/// # Panics
///
/// Panics on an empty dataset — the caller decides what a prior-less
/// classifier should do, not the learner.
pub fn train(ds: &MlDataset, params: &C45Params) -> DecisionTree {
    assert!(!ds.is_empty(), "cannot train on an empty dataset");
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut root = build(ds, &idx, params);
    if let Some(cf) = params.confidence {
        prune::prune(&mut root, cf);
    }
    DecisionTree {
        attribute_names: ds.attribute_names().to_vec(),
        root,
    }
}

/// Make a leaf for the instance set (majority label; ties -> positive,
/// matching the optimistic bias the paper's task prefers for recall).
fn leaf(ds: &MlDataset, idx: &[usize]) -> Node {
    let pos = idx.iter().filter(|&&i| ds.instances()[i].label).count();
    let neg = idx.len() - pos;
    let label = pos >= neg;
    Node::Leaf {
        label,
        total: idx.len(),
        errors: if label { neg } else { pos },
    }
}

/// Best `(attr, threshold, counts)` by gain ratio among candidates
/// with at least the mean positive gain (Quinlan's heuristic guarding
/// the ratio against tiny-split-info artifacts).
fn best_split(ds: &MlDataset, idx: &[usize], min_leaf: usize) -> Option<(usize, f64, SplitCounts)> {
    let mut candidates: Vec<(usize, f64, SplitCounts, f64, f64)> = Vec::new();
    for attr in 0..ds.attribute_count() {
        // Sort indices by this attribute.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            ds.instances()[a].values[attr].total_cmp(&ds.instances()[b].values[attr])
        });
        let total = order.len();
        let total_pos = order.iter().filter(|&&i| ds.instances()[i].label).count();
        // Sweep thresholds between adjacent distinct values.
        let mut le_pos = 0usize;
        for k in 0..total.saturating_sub(1) {
            let i = order[k];
            if ds.instances()[i].label {
                le_pos += 1;
            }
            let v = ds.instances()[i].values[attr];
            let v_next = ds.instances()[order[k + 1]].values[attr];
            if v == v_next {
                continue;
            }
            let le_total = k + 1;
            let gt_total = total - le_total;
            if le_total < min_leaf || gt_total < min_leaf {
                continue;
            }
            let counts = SplitCounts {
                le_pos,
                le_total,
                gt_pos: total_pos - le_pos,
                gt_total,
            };
            let gain = counts.information_gain();
            if gain <= 1e-12 {
                continue;
            }
            let threshold = (v + v_next) / 2.0;
            candidates.push((attr, threshold, counts, gain, counts.gain_ratio()));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let mean_gain: f64 = candidates.iter().map(|c| c.3).sum::<f64>() / candidates.len() as f64;
    candidates
        .into_iter()
        .filter(|c| c.3 >= mean_gain - 1e-12)
        .max_by(|a, b| {
            a.4.total_cmp(&b.4)
                // Deterministic tie-break: lower attribute, lower
                // threshold.
                .then(b.0.cmp(&a.0))
                .then(b.1.total_cmp(&a.1))
        })
        .map(|(attr, th, counts, _, _)| (attr, th, counts))
}

fn build(ds: &MlDataset, idx: &[usize], params: &C45Params) -> Node {
    let pos = idx.iter().filter(|&&i| ds.instances()[i].label).count();
    // Pure, or too small to split further.
    if pos == 0 || pos == idx.len() || idx.len() < 2 * params.min_leaf {
        return leaf(ds, idx);
    }
    let Some((attr, threshold, _counts)) = best_split(ds, idx, params.min_leaf) else {
        return leaf(ds, idx);
    };
    let (le_idx, gt_idx): (Vec<usize>, Vec<usize>) = idx
        .iter()
        .partition(|&&i| ds.instances()[i].values[attr] <= threshold);
    Node::Split {
        attr,
        threshold,
        le: Box::new(build(ds, &le_idx, params)),
        gt: Box::new(build(ds, &gt_idx, params)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    fn ds_from(rows: &[(&[f64], bool)]) -> MlDataset {
        let arity = rows[0].0.len();
        let names: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let mut ds = MlDataset::new(names);
        for (vals, label) in rows {
            ds.push(Instance::new(vals.to_vec(), *label));
        }
        ds
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let ds = ds_from(&[(&[1.0], true), (&[2.0], true), (&[3.0], true)]);
        let t = train(&ds, &C45Params::default());
        assert_eq!(t.leaf_count(), 1);
        assert!(t.predict(&[99.0]));
        assert_eq!(t.root.training_errors(), 0);
    }

    #[test]
    fn separable_data_is_separated() {
        let ds = ds_from(&[
            (&[1.0], true),
            (&[2.0], true),
            (&[3.0], true),
            (&[10.0], false),
            (&[11.0], false),
            (&[12.0], false),
        ]);
        let t = train(&ds, &C45Params::default());
        assert_eq!(t.leaf_count(), 2);
        assert!(t.predict(&[0.0]));
        assert!(!t.predict(&[20.0]));
        // Threshold at the midpoint 6.5.
        if let Node::Split { threshold, .. } = t.root {
            assert!((threshold - 6.5).abs() < 1e-12);
        } else {
            panic!("expected a split at the root");
        }
    }

    #[test]
    fn picks_the_informative_attribute() {
        // Attribute 0 is noise; attribute 1 separates perfectly.
        let ds = ds_from(&[
            (&[5.0, 1.0], true),
            (&[1.0, 2.0], true),
            (&[5.0, 3.0], true),
            (&[1.0, 10.0], false),
            (&[5.0, 11.0], false),
            (&[1.0, 12.0], false),
        ]);
        let t = train(&ds, &C45Params::default());
        if let Node::Split { attr, .. } = t.root {
            assert_eq!(attr, 1);
        } else {
            panic!("expected a split");
        }
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        let ds = ds_from(&[(&[1.0], true), (&[2.0], false)]);
        // min_leaf 2: cannot split one instance off.
        let t = train(
            &ds,
            &C45Params {
                min_leaf: 2,
                confidence: None,
            },
        );
        assert_eq!(t.leaf_count(), 1);
        // min_leaf 1: split allowed.
        let t = train(
            &ds,
            &C45Params {
                min_leaf: 1,
                confidence: None,
            },
        );
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn staircase_data_needs_depth_two() {
        // x <= 3 -> true; otherwise the class depends on y. Greedy
        // gain finds the x split first, then recurses on y.
        let ds = ds_from(&[
            (&[1.0, 1.0], true),
            (&[2.0, 1.0], true),
            (&[3.0, 1.0], true),
            (&[6.0, 1.0], false),
            (&[7.0, 1.0], false),
            (&[6.0, 9.0], true),
            (&[7.0, 9.0], true),
        ]);
        let t = train(
            &ds,
            &C45Params {
                min_leaf: 2,
                confidence: None,
            },
        );
        for inst in ds.instances() {
            assert_eq!(t.predict(&inst.values), inst.label, "at {:?}", inst.values);
        }
        assert!(t.depth() >= 3, "tree too shallow:\n{}", t.render());
    }

    #[test]
    fn pure_xor_is_beyond_greedy_gain() {
        // Single-threshold information gain is zero everywhere on XOR,
        // so (like real C4.5) the learner returns a majority leaf.
        // Documenting the limitation keeps it from surprising users.
        let ds = ds_from(&[
            (&[0.0, 0.0], false),
            (&[0.0, 1.0], true),
            (&[1.0, 0.0], true),
            (&[1.0, 1.0], false),
        ]);
        let t = train(
            &ds,
            &C45Params {
                min_leaf: 1,
                confidence: None,
            },
        );
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn training_counts_partition_the_data() {
        let ds = ds_from(&[
            (&[1.0], true),
            (&[2.0], true),
            (&[3.0], false),
            (&[10.0], false),
            (&[11.0], false),
            (&[12.0], true),
        ]);
        let t = train(&ds, &C45Params::default());
        assert_eq!(t.root.training_total(), 6);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = MlDataset::new(vec!["a"]);
        let _ = train(&ds, &C45Params::default());
    }
}
