//! Instance and dataset representation.
//!
//! The learner handles exactly what the paper's task needs: numeric
//! attributes and a boolean class. Attribute values are `f64`; missing
//! values are not supported (the scraped features never miss).

use serde::{Deserialize, Serialize};

/// One training or test example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Attribute values, aligned with
    /// [`MlDataset::attribute_names`].
    pub values: Vec<f64>,
    /// The class ("interesting" in the paper's task).
    pub label: bool,
}

impl Instance {
    /// Build an instance.
    pub fn new(values: Vec<f64>, label: bool) -> Instance {
        Instance { values, label }
    }
}

/// A set of instances over named numeric attributes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MlDataset {
    attribute_names: Vec<String>,
    instances: Vec<Instance>,
}

impl MlDataset {
    /// Create an empty dataset over the given attributes.
    pub fn new<S: Into<String>>(attribute_names: Vec<S>) -> MlDataset {
        MlDataset {
            attribute_names: attribute_names.into_iter().map(Into::into).collect(),
            instances: Vec::new(),
        }
    }

    /// Attribute names.
    pub fn attribute_names(&self) -> &[String] {
        &self.attribute_names
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.attribute_names.len()
    }

    /// Add an instance.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the attribute count,
    /// or any value is NaN — both are programmer errors in feature
    /// extraction.
    pub fn push(&mut self, instance: Instance) {
        assert_eq!(
            instance.values.len(),
            self.attribute_names.len(),
            "instance arity mismatch"
        );
        assert!(
            instance.values.iter().all(|v| !v.is_nan()),
            "NaN attribute value"
        );
        self.instances.push(instance);
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Count of positive labels.
    pub fn positives(&self) -> usize {
        self.instances.iter().filter(|i| i.label).count()
    }

    /// A dataset with the same attributes and the selected instances
    /// (cloned).
    pub fn subset(&self, idx: &[usize]) -> MlDataset {
        MlDataset {
            attribute_names: self.attribute_names.clone(),
            instances: idx.iter().map(|&i| self.instances[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let mut ds = MlDataset::new(vec!["v10", "fans1"]);
        ds.push(Instance::new(vec![3.0, 10.0], true));
        ds.push(Instance::new(vec![8.0, 200.0], false));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.positives(), 1);
        assert_eq!(ds.attribute_count(), 2);
        assert_eq!(ds.attribute_names()[0], "v10");
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut ds = MlDataset::new(vec!["a"]);
        ds.push(Instance::new(vec![1.0, 2.0], true));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_value_panics() {
        let mut ds = MlDataset::new(vec!["a"]);
        ds.push(Instance::new(vec![f64::NAN], true));
    }

    #[test]
    fn subset_selects_rows() {
        let mut ds = MlDataset::new(vec!["a"]);
        for i in 0..5 {
            ds.push(Instance::new(vec![i as f64], i % 2 == 0));
        }
        let s = ds.subset(&[0, 4]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.instances()[1].values[0], 4.0);
    }
}
