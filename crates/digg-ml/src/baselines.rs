//! Baseline classifiers.
//!
//! Four baselines bracket the decision tree:
//!
//! * [`MajorityClass`] — the floor any learner must beat;
//! * [`OneR`] — the best single-attribute threshold rule (Holte's 1R),
//!   a sanity check that the tree's extra structure earns its keep;
//! * [`GaussianNb`] — a probabilistic baseline that ignores feature
//!   interactions;
//! * [`FixedRule`] — an arbitrary user-supplied predicate; the §5.2
//!   comparison uses it to wrap "Digg promoted this story" as a
//!   classifier.

use crate::data::MlDataset;
use crate::metrics::ConfusionMatrix;

/// A trained binary classifier over attribute vectors.
pub trait Classifier {
    /// Predict the class for one attribute vector.
    fn predict(&self, values: &[f64]) -> bool;

    /// Evaluate against a labelled dataset.
    fn evaluate(&self, ds: &MlDataset) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for inst in ds.instances() {
            cm.record(self.predict(&inst.values), inst.label);
        }
        cm
    }
}

impl Classifier for crate::tree::DecisionTree {
    fn predict(&self, values: &[f64]) -> bool {
        crate::tree::DecisionTree::predict(self, values)
    }
}

/// Always predicts the majority class of the training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityClass {
    /// The class predicted for everything.
    pub label: bool,
}

impl MajorityClass {
    /// Fit on a dataset (ties -> positive).
    pub fn fit(ds: &MlDataset) -> MajorityClass {
        let pos = ds.positives();
        MajorityClass {
            label: pos * 2 >= ds.len(),
        }
    }
}

impl Classifier for MajorityClass {
    fn predict(&self, _values: &[f64]) -> bool {
        self.label
    }
}

/// Holte's 1R for numeric attributes: the single
/// `attr <= threshold` rule (with orientation) minimising training
/// errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneR {
    /// Attribute index.
    pub attr: usize,
    /// Decision threshold.
    pub threshold: f64,
    /// Label predicted when `value <= threshold`.
    pub le_label: bool,
}

impl OneR {
    /// Fit by exhaustive search over midpoint thresholds.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(ds: &MlDataset) -> OneR {
        assert!(!ds.is_empty(), "cannot fit 1R on empty data");
        let n = ds.len();
        let total_pos = ds.positives();
        // Start from the majority rule (threshold +inf predicts the
        // majority everywhere) so 1R never does worse than majority.
        let majority = total_pos * 2 >= n;
        let majority_errors = if majority { n - total_pos } else { total_pos };
        let mut best = (
            majority_errors,
            OneR {
                attr: 0,
                threshold: f64::INFINITY,
                le_label: majority,
            },
        );
        for attr in 0..ds.attribute_count() {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                ds.instances()[a].values[attr].total_cmp(&ds.instances()[b].values[attr])
            });
            let mut le_pos = 0usize;
            for k in 0..n {
                if ds.instances()[order[k]].label {
                    le_pos += 1;
                }
                if k + 1 < n {
                    let v = ds.instances()[order[k]].values[attr];
                    let vn = ds.instances()[order[k + 1]].values[attr];
                    if v == vn {
                        continue;
                    }
                    let le_total = k + 1;
                    let gt_pos = total_pos - le_pos;
                    let gt_total = n - le_total;
                    // Orientation A: le -> positive.
                    let err_a = (le_total - le_pos) + gt_pos;
                    // Orientation B: le -> negative.
                    let err_b = le_pos + (gt_total - gt_pos);
                    let threshold = (v + vn) / 2.0;
                    if err_a < best.0 {
                        best = (
                            err_a,
                            OneR {
                                attr,
                                threshold,
                                le_label: true,
                            },
                        );
                    }
                    if err_b < best.0 {
                        best = (
                            err_b,
                            OneR {
                                attr,
                                threshold,
                                le_label: false,
                            },
                        );
                    }
                }
            }
        }
        best.1
    }
}

impl Classifier for OneR {
    fn predict(&self, values: &[f64]) -> bool {
        if values[self.attr] <= self.threshold {
            self.le_label
        } else {
            !self.le_label
        }
    }
}

/// Gaussian naive Bayes: per class and attribute, fit a normal
/// distribution; predict by maximum posterior with the training class
/// prior. A stronger-than-1R probabilistic baseline that still ignores
/// feature interactions — exactly what a decision tree should beat
/// when thresholds interact (the Fig. 5 fans1-inside-v10-band
/// structure).
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNb {
    /// Log prior of the positive class.
    log_prior_pos: f64,
    /// Log prior of the negative class.
    log_prior_neg: f64,
    /// Per-attribute `(mean, variance)` for the positive class.
    pos: Vec<(f64, f64)>,
    /// Per-attribute `(mean, variance)` for the negative class.
    neg: Vec<(f64, f64)>,
}

impl GaussianNb {
    /// Variance floor guarding against constant attributes.
    const MIN_VAR: f64 = 1e-9;

    /// Fit on a dataset. Returns `None` when either class is empty
    /// (no likelihood can be formed).
    pub fn fit(ds: &MlDataset) -> Option<GaussianNb> {
        let n = ds.len();
        let pos_n = ds.positives();
        let neg_n = n - pos_n;
        if pos_n == 0 || neg_n == 0 {
            return None;
        }
        let arity = ds.attribute_count();
        let fit_class = |label: bool| -> Vec<(f64, f64)> {
            (0..arity)
                .map(|a| {
                    let vals: Vec<f64> = ds
                        .instances()
                        .iter()
                        .filter(|i| i.label == label)
                        .map(|i| i.values[a])
                        .collect();
                    let m = vals.iter().sum::<f64>() / vals.len() as f64;
                    let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
                    (m, v.max(Self::MIN_VAR))
                })
                .collect()
        };
        Some(GaussianNb {
            log_prior_pos: (pos_n as f64 / n as f64).ln(),
            log_prior_neg: (neg_n as f64 / n as f64).ln(),
            pos: fit_class(true),
            neg: fit_class(false),
        })
    }

    fn log_likelihood(params: &[(f64, f64)], values: &[f64]) -> f64 {
        params
            .iter()
            .zip(values)
            .map(|(&(m, v), &x)| {
                -0.5 * ((x - m) * (x - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln())
            })
            .sum()
    }
}

impl Classifier for GaussianNb {
    fn predict(&self, values: &[f64]) -> bool {
        let lp = self.log_prior_pos + Self::log_likelihood(&self.pos, values);
        let ln = self.log_prior_neg + Self::log_likelihood(&self.neg, values);
        lp >= ln
    }
}

/// Wraps an arbitrary predicate as a classifier (e.g. "Digg promoted
/// it").
pub struct FixedRule<F: Fn(&[f64]) -> bool> {
    rule: F,
}

impl<F: Fn(&[f64]) -> bool> FixedRule<F> {
    /// Wrap a predicate.
    pub fn new(rule: F) -> FixedRule<F> {
        FixedRule { rule }
    }
}

impl<F: Fn(&[f64]) -> bool> Classifier for FixedRule<F> {
    fn predict(&self, values: &[f64]) -> bool {
        (self.rule)(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    fn ds_from(rows: &[(&[f64], bool)]) -> MlDataset {
        let arity = rows[0].0.len();
        let names: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let mut ds = MlDataset::new(names);
        for (vals, label) in rows {
            ds.push(Instance::new(vals.to_vec(), *label));
        }
        ds
    }

    #[test]
    fn majority_class_fit() {
        let ds = ds_from(&[(&[0.0], true), (&[1.0], true), (&[2.0], false)]);
        let m = MajorityClass::fit(&ds);
        assert!(m.label);
        let cm = m.evaluate(&ds);
        assert_eq!(cm.correct(), 2);
    }

    #[test]
    fn majority_tie_prefers_positive() {
        let ds = ds_from(&[(&[0.0], true), (&[1.0], false)]);
        assert!(MajorityClass::fit(&ds).label);
    }

    #[test]
    fn one_r_finds_separating_threshold() {
        let ds = ds_from(&[
            (&[1.0], true),
            (&[2.0], true),
            (&[10.0], false),
            (&[11.0], false),
        ]);
        let r = OneR::fit(&ds);
        assert_eq!(r.attr, 0);
        assert!(r.le_label);
        assert!((2.0..=10.0).contains(&r.threshold));
        assert_eq!(r.evaluate(&ds).errors(), 0);
    }

    #[test]
    fn one_r_handles_inverted_orientation() {
        let ds = ds_from(&[
            (&[1.0], false),
            (&[2.0], false),
            (&[10.0], true),
            (&[11.0], true),
        ]);
        let r = OneR::fit(&ds);
        assert!(!r.le_label);
        assert_eq!(r.evaluate(&ds).errors(), 0);
    }

    #[test]
    fn one_r_picks_better_attribute() {
        // Attribute 1 separates; attribute 0 is constant.
        let ds = ds_from(&[
            (&[5.0, 1.0], true),
            (&[5.0, 2.0], true),
            (&[5.0, 9.0], false),
        ]);
        let r = OneR::fit(&ds);
        assert_eq!(r.attr, 1);
    }

    #[test]
    fn one_r_constant_data_falls_back_to_majority() {
        let ds = ds_from(&[(&[3.0], false), (&[3.0], false), (&[3.0], true)]);
        let r = OneR::fit(&ds);
        assert!(!r.predict(&[3.0]));
    }

    #[test]
    fn gaussian_nb_separates_clean_classes() {
        let ds = ds_from(&[
            (&[1.0, 10.0], true),
            (&[2.0, 12.0], true),
            (&[1.5, 11.0], true),
            (&[8.0, 30.0], false),
            (&[9.0, 32.0], false),
            (&[8.5, 31.0], false),
        ]);
        let nb = GaussianNb::fit(&ds).unwrap();
        assert!(nb.predict(&[1.2, 10.5]));
        assert!(!nb.predict(&[8.8, 31.5]));
        assert_eq!(nb.evaluate(&ds).errors(), 0);
    }

    #[test]
    fn gaussian_nb_uses_priors_for_ambiguous_points() {
        // Identical class-conditional distributions (mean 1, var 1),
        // 3:1 prior for positive: the tie breaks on the prior.
        let ds = ds_from(&[
            (&[0.0], true),
            (&[2.0], true),
            (&[0.0], true),
            (&[2.0], true),
            (&[0.0], true),
            (&[2.0], true),
            (&[0.0], false),
            (&[2.0], false),
        ]);
        let nb = GaussianNb::fit(&ds).unwrap();
        assert!(nb.predict(&[1.0]));
        assert!(nb.predict(&[5.0]));
    }

    #[test]
    fn gaussian_nb_requires_both_classes() {
        let ds = ds_from(&[(&[1.0], true), (&[2.0], true)]);
        assert!(GaussianNb::fit(&ds).is_none());
    }

    #[test]
    fn gaussian_nb_handles_constant_attributes() {
        // Zero variance on attribute 0: the floor keeps it finite.
        let ds = ds_from(&[
            (&[5.0, 1.0], true),
            (&[5.0, 2.0], true),
            (&[5.0, 9.0], false),
            (&[5.0, 10.0], false),
        ]);
        let nb = GaussianNb::fit(&ds).unwrap();
        assert!(nb.predict(&[5.0, 1.5]));
        assert!(!nb.predict(&[5.0, 9.5]));
    }

    #[test]
    fn fixed_rule_wraps_predicate() {
        let ds = ds_from(&[(&[50.0], true), (&[10.0], false)]);
        let promoted = FixedRule::new(|v: &[f64]| v[0] >= 43.0);
        let cm = promoted.evaluate(&ds);
        assert_eq!(cm.tp, 1);
        assert_eq!(cm.tn, 1);
    }
}
