//! Bootstrap-aggregated ("bagged") C4.5 ensembles.
//!
//! A modern-reader extension to the paper's single J48 tree: train
//! `n` trees on bootstrap resamples of the training data and predict
//! by majority vote. Variance reduction matters on the paper-sized
//! (~200-story) samples where a single tree's structure is unstable
//! across folds.

use crate::baselines::Classifier;
use crate::c45::{train, C45Params};
use crate::data::{Instance, MlDataset};
use crate::tree::DecisionTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bagged ensemble of C4.5 trees.
#[derive(Debug, Clone)]
pub struct BaggedTrees {
    trees: Vec<DecisionTree>,
}

impl BaggedTrees {
    /// Train `n_trees` trees on bootstrap resamples (each the size of
    /// the original set). Resamples whose labels come out single-class
    /// are still trainable (C4.5 returns a leaf).
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0` or the dataset is empty.
    pub fn train(ds: &MlDataset, params: &C45Params, n_trees: usize, seed: u64) -> BaggedTrees {
        assert!(n_trees > 0, "need at least one tree");
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ds.len();
        let trees = (0..n_trees)
            .map(|_| {
                let mut resample = MlDataset::new(ds.attribute_names().to_vec());
                for _ in 0..n {
                    let inst: &Instance = &ds.instances()[rng.random_range(0..n)];
                    resample.push(inst.clone());
                }
                train(&resample, params)
            })
            .collect();
        BaggedTrees { trees }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Fraction of trees voting positive — a calibrated-ish score in
    /// `[0, 1]`.
    pub fn score(&self, values: &[f64]) -> f64 {
        let pos = self.trees.iter().filter(|t| t.predict(values)).count();
        pos as f64 / self.trees.len() as f64
    }

    /// The member trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Classifier for BaggedTrees {
    fn predict(&self, values: &[f64]) -> bool {
        self.score(values) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds_from(rows: &[(&[f64], bool)]) -> MlDataset {
        let arity = rows[0].0.len();
        let names: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let mut ds = MlDataset::new(names);
        for (vals, label) in rows {
            ds.push(Instance::new(vals.to_vec(), *label));
        }
        ds
    }

    fn separable() -> MlDataset {
        let rows: Vec<(Vec<f64>, bool)> = (0..40)
            .map(|i| {
                let pos = i % 2 == 0;
                (vec![if pos { i as f64 } else { 100.0 + i as f64 }], pos)
            })
            .collect();
        let mut ds = MlDataset::new(vec!["x"]);
        for (v, l) in rows {
            ds.push(Instance::new(v, l));
        }
        ds
    }

    #[test]
    fn ensemble_learns_separable_data() {
        let ds = separable();
        let bag = BaggedTrees::train(&ds, &C45Params::default(), 15, 3);
        assert_eq!(bag.len(), 15);
        assert!(!bag.is_empty());
        assert!(bag.predict(&[5.0]));
        assert!(!bag.predict(&[120.0]));
        assert_eq!(bag.evaluate(&ds).errors(), 0);
    }

    #[test]
    fn score_is_a_vote_fraction() {
        let ds = separable();
        let bag = BaggedTrees::train(&ds, &C45Params::default(), 10, 3);
        let s = bag.score(&[5.0]);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.5);
        assert_eq!(bag.trees().len(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = separable();
        let a = BaggedTrees::train(&ds, &C45Params::default(), 5, 7);
        let b = BaggedTrees::train(&ds, &C45Params::default(), 5, 7);
        for (x, y) in a.trees().iter().zip(b.trees()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn single_class_resamples_are_tolerated() {
        // Tiny dataset: resamples often end up single-class.
        let ds = ds_from(&[(&[1.0], true), (&[9.0], false)]);
        let bag = BaggedTrees::train(
            &ds,
            &C45Params {
                min_leaf: 1,
                confidence: None,
            },
            25,
            1,
        );
        // Prediction still total.
        let _ = bag.predict(&[1.0]);
        let _ = bag.predict(&[9.0]);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let ds = separable();
        let _ = BaggedTrees::train(&ds, &C45Params::default(), 0, 1);
    }
}
