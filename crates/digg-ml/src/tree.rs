//! The decision-tree structure, prediction and Fig-5-style rendering.

use serde::{Deserialize, Serialize};

/// A node of a binary-threshold decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf predicting `label`; `total`/`errors` are the training
    /// instances that reached it and how many it misclassifies — the
    /// `yes (130/5)` annotations of the paper's Fig. 5.
    Leaf {
        /// Predicted class.
        label: bool,
        /// Training instances at this leaf.
        total: usize,
        /// Misclassified training instances at this leaf.
        errors: usize,
    },
    /// An internal `attr <= threshold` test.
    Split {
        /// Attribute index.
        attr: usize,
        /// Threshold; `<=` goes left.
        threshold: f64,
        /// Subtree for `value <= threshold`.
        le: Box<Node>,
        /// Subtree for `value > threshold`.
        gt: Box<Node>,
    },
}

impl Node {
    /// Predict a label for attribute values.
    pub fn predict(&self, values: &[f64]) -> bool {
        match self {
            Node::Leaf { label, .. } => *label,
            Node::Split {
                attr,
                threshold,
                le,
                gt,
            } => {
                if values[*attr] <= *threshold {
                    le.predict(values)
                } else {
                    gt.predict(values)
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { le, gt, .. } => le.leaf_count() + gt.leaf_count(),
        }
    }

    /// Depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { le, gt, .. } => 1 + le.depth().max(gt.depth()),
        }
    }

    /// Sum of training errors recorded at the leaves.
    pub fn training_errors(&self) -> usize {
        match self {
            Node::Leaf { errors, .. } => *errors,
            Node::Split { le, gt, .. } => le.training_errors() + gt.training_errors(),
        }
    }

    /// Sum of training instances recorded at the leaves.
    pub fn training_total(&self) -> usize {
        match self {
            Node::Leaf { total, .. } => *total,
            Node::Split { le, gt, .. } => le.training_total() + gt.training_total(),
        }
    }
}

/// A trained decision tree with its attribute names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Attribute names for rendering.
    pub attribute_names: Vec<String>,
    /// Root node.
    pub root: Node,
}

impl DecisionTree {
    /// Predict a label.
    pub fn predict(&self, values: &[f64]) -> bool {
        self.root.predict(values)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.root.leaf_count()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Render in the C4.5 text format used (graphically) by Fig. 5:
    ///
    /// ```text
    /// v10 <= 4: yes (130/5)
    /// v10 > 4
    /// |  v10 <= 8
    /// |  |  fans1 <= 85: no (29/13)
    /// |  |  fans1 > 85: yes (30/8)
    /// |  v10 > 8: no (18/0)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.root {
            Node::Leaf {
                label,
                total,
                errors,
            } => {
                out.push_str(&format!(
                    ": {} ({}/{})\n",
                    if *label { "yes" } else { "no" },
                    total,
                    errors
                ));
            }
            split => self.render_node(split, 0, &mut out),
        }
        out
    }

    /// Render as Graphviz DOT for visual inspection
    /// (`dot -Tsvg tree.dot`). Leaves show `label (total/errors)`;
    /// split nodes show the test, with `<=` on the left edge.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph tree {\n  node [fontname=\"monospace\"];\n");
        let mut next_id = 0usize;
        self.dot_node(&self.root, &mut next_id, &mut out);
        out.push_str("}\n");
        out
    }

    fn dot_node(&self, node: &Node, next_id: &mut usize, out: &mut String) -> usize {
        let id = *next_id;
        *next_id += 1;
        match node {
            Node::Leaf {
                label,
                total,
                errors,
            } => {
                out.push_str(&format!(
                    "  n{id} [shape=box, label=\"{} ({}/{})\"];\n",
                    if *label { "yes" } else { "no" },
                    total,
                    errors
                ));
            }
            Node::Split {
                attr,
                threshold,
                le,
                gt,
            } => {
                out.push_str(&format!(
                    "  n{id} [shape=ellipse, label=\"{} <= {}\"];\n",
                    self.attribute_names[*attr], threshold
                ));
                let l = self.dot_node(le, next_id, out);
                let r = self.dot_node(gt, next_id, out);
                out.push_str(&format!("  n{id} -> n{l} [label=\"yes\"];\n"));
                out.push_str(&format!("  n{id} -> n{r} [label=\"no\"];\n"));
            }
        }
        id
    }

    fn render_node(&self, node: &Node, indent: usize, out: &mut String) {
        let Node::Split {
            attr,
            threshold,
            le,
            gt,
        } = node
        else {
            // digg-lint: allow(no-lib-unwrap) — caller dispatches leaves before recursing; only splits reach render_node
            unreachable!("render_node is only called on splits");
        };
        let name = &self.attribute_names[*attr];
        let prefix = "|  ".repeat(indent);
        for (op, child) in [("<=", le.as_ref()), (">", gt.as_ref())] {
            match child {
                Node::Leaf {
                    label,
                    total,
                    errors,
                } => {
                    out.push_str(&format!(
                        "{prefix}{name} {op} {threshold}: {} ({}/{})\n",
                        if *label { "yes" } else { "no" },
                        total,
                        errors
                    ));
                }
                inner => {
                    out.push_str(&format!("{prefix}{name} {op} {threshold}\n"));
                    self.render_node(inner, indent + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact tree of the paper's Fig. 5.
    pub fn fig5_tree() -> DecisionTree {
        DecisionTree {
            attribute_names: vec!["v10".into(), "fans1".into()],
            root: Node::Split {
                attr: 0,
                threshold: 4.0,
                le: Box::new(Node::Leaf {
                    label: true,
                    total: 130,
                    errors: 5,
                }),
                gt: Box::new(Node::Split {
                    attr: 0,
                    threshold: 8.0,
                    le: Box::new(Node::Split {
                        attr: 1,
                        threshold: 85.0,
                        le: Box::new(Node::Leaf {
                            label: false,
                            total: 29,
                            errors: 13,
                        }),
                        gt: Box::new(Node::Leaf {
                            label: true,
                            total: 30,
                            errors: 8,
                        }),
                    }),
                    gt: Box::new(Node::Leaf {
                        label: false,
                        total: 18,
                        errors: 0,
                    }),
                }),
            },
        }
    }

    #[test]
    fn prediction_routes_through_thresholds() {
        let t = fig5_tree();
        assert!(t.predict(&[3.0, 0.0])); // v10 <= 4 -> yes
        assert!(!t.predict(&[9.0, 500.0])); // v10 > 8 -> no
        assert!(!t.predict(&[6.0, 50.0])); // 4 < v10 <= 8, fans1 <= 85 -> no
        assert!(t.predict(&[6.0, 100.0])); // fans1 > 85 -> yes
                                           // Boundary: <= goes left.
        assert!(t.predict(&[4.0, 0.0]));
        assert!(!t.predict(&[8.0, 85.0]));
    }

    #[test]
    fn structure_statistics() {
        let t = fig5_tree();
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.root.training_total(), 207);
        assert_eq!(t.root.training_errors(), 26);
    }

    #[test]
    fn rendering_matches_c45_format() {
        let t = fig5_tree();
        let r = t.render();
        assert!(r.contains("v10 <= 4: yes (130/5)"));
        assert!(r.contains("|  v10 > 8: no (18/0)"));
        assert!(r.contains("|  |  fans1 <= 85: no (29/13)"));
        assert!(r.contains("|  |  fans1 > 85: yes (30/8)"));
    }

    #[test]
    fn dot_export_has_all_nodes_and_edges() {
        let t = fig5_tree();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.trim_end().ends_with('}'));
        // 4 leaves + 3 splits = 7 node definitions; 6 edges.
        assert_eq!(dot.matches("shape=box").count(), 4);
        assert_eq!(dot.matches("shape=ellipse").count(), 3);
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert!(dot.contains("v10 <= 4"));
        assert!(dot.contains("yes (130/5)"));
    }

    #[test]
    fn lone_leaf_renders() {
        let t = DecisionTree {
            attribute_names: vec![],
            root: Node::Leaf {
                label: true,
                total: 7,
                errors: 2,
            },
        };
        assert_eq!(t.render(), ": yes (7/2)\n");
        assert_eq!(t.depth(), 1);
    }
}
