//! Pessimistic error pruning, C4.5 style.
//!
//! C4.5 treats the training error count at a node as a binomial sample
//! and prunes a subtree to a leaf when the leaf's *upper confidence
//! bound* on the error rate is no worse than the weighted bound of the
//! subtree's leaves. The bound used is the normal-approximation upper
//! limit with continuity correction, as in Quinlan's book and Weka's
//! `J48` (`Stats.addErrs`).

use crate::tree::Node;
use digg_stats::distributions::inverse_normal_cdf;

/// The pessimistic error *count* estimate for a node with `total`
/// training instances and `errors` mistakes, at confidence factor
/// `cf` (e.g. 0.25).
///
/// Matches C4.5/J48:
/// * `total = 0` → 0;
/// * `errors = 0` → `total * (1 - cf^(1/total))`;
/// * otherwise `total * UCF(errors, total)` with the continuity-
///   corrected normal upper bound.
pub fn pessimistic_errors(errors: usize, total: usize, cf: f64) -> f64 {
    assert!((0.0..1.0).contains(&cf) && cf > 0.0, "cf must be in (0,1)");
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    if errors == 0 {
        return n * (1.0 - cf.powf(1.0 / n));
    }
    let z = inverse_normal_cdf(1.0 - cf);
    let f = (errors as f64 + 0.5) / n;
    if f >= 1.0 {
        return errors as f64;
    }
    let z2 = z * z;
    let ucb =
        (f + z2 / (2.0 * n) + z * (f * (1.0 - f) / n + z2 / (4.0 * n * n)).sqrt()) / (1.0 + z2 / n);
    n * ucb.min(1.0)
}

/// Sum of pessimistic error estimates over a subtree's leaves.
fn subtree_pessimistic(node: &Node, cf: f64) -> f64 {
    match node {
        Node::Leaf { total, errors, .. } => pessimistic_errors(*errors, *total, cf),
        Node::Split { le, gt, .. } => subtree_pessimistic(le, cf) + subtree_pessimistic(gt, cf),
    }
}

/// Collapse a subtree into the leaf it would become (majority label
/// over its training instances).
fn collapse(node: &Node) -> Node {
    fn counts(node: &Node) -> (usize, usize) {
        // Returns (total, positives-as-implied-by-leaves). We only
        // know each leaf's label/total/errors, which determine its
        // positive count exactly for a binary task.
        match node {
            Node::Leaf {
                label,
                total,
                errors,
            } => {
                let pos = if *label { total - errors } else { *errors };
                (*total, pos)
            }
            Node::Split { le, gt, .. } => {
                let (t1, p1) = counts(le);
                let (t2, p2) = counts(gt);
                (t1 + t2, p1 + p2)
            }
        }
    }
    let (total, pos) = counts(node);
    let neg = total - pos;
    let label = pos >= neg;
    Node::Leaf {
        label,
        total,
        errors: if label { neg } else { pos },
    }
}

/// Prune the tree bottom-up in place.
pub fn prune(node: &mut Node, cf: f64) {
    if let Node::Split { le, gt, .. } = node {
        prune(le, cf);
        prune(gt, cf);
        let as_leaf = collapse(node);
        let leaf_err = match &as_leaf {
            Node::Leaf { total, errors, .. } => pessimistic_errors(*errors, *total, cf),
            // digg-lint: allow(no-lib-unwrap) — collapse() returns Node::Leaf by construction; the arm exists only for match exhaustiveness
            Node::Split { .. } => unreachable!("collapse returns a leaf"),
        };
        let tree_err = subtree_pessimistic(node, cf);
        if leaf_err <= tree_err + 0.1 {
            // C4.5 prunes when the collapsed leaf is not worse than
            // the subtree (the +0.1 mirrors its slack in favour of
            // smaller trees).
            *node = as_leaf;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: bool, total: usize, errors: usize) -> Node {
        Node::Leaf {
            label,
            total,
            errors,
        }
    }

    #[test]
    fn pessimistic_is_above_observed_rate() {
        let e = pessimistic_errors(5, 100, 0.25);
        assert!(e > 5.0, "upper bound {e} must exceed observed errors");
        assert!(e < 15.0, "bound {e} implausibly loose");
    }

    #[test]
    fn zero_error_bound_matches_closed_form() {
        // errors=0: total*(1 - cf^(1/total)).
        let e = pessimistic_errors(0, 10, 0.25);
        assert!((e - 10.0 * (1.0 - 0.25f64.powf(0.1))).abs() < 1e-12);
        assert_eq!(pessimistic_errors(0, 0, 0.25), 0.0);
    }

    #[test]
    fn tighter_confidence_means_bigger_bound() {
        // Smaller CF = more pessimistic = larger error estimate.
        let strict = pessimistic_errors(5, 100, 0.05);
        let lax = pessimistic_errors(5, 100, 0.5);
        assert!(strict > lax);
    }

    #[test]
    fn noise_split_is_pruned() {
        // A split whose two leaves are nearly coin flips (12 errors of
        // 25 each): the merged leaf's pessimistic error (≈27.9) beats
        // the subtree's (≈28.3), so pruning collapses it.
        let mut node = Node::Split {
            attr: 0,
            threshold: 1.0,
            le: Box::new(leaf(true, 25, 12)),
            gt: Box::new(leaf(false, 25, 12)),
        };
        prune(&mut node, 0.25);
        assert!(matches!(node, Node::Leaf { .. }), "kept: {node:?}");
        if let Node::Leaf { total, .. } = node {
            assert_eq!(total, 50);
        }
    }

    #[test]
    fn informative_split_is_kept() {
        let mut node = Node::Split {
            attr: 0,
            threshold: 1.0,
            le: Box::new(leaf(true, 100, 2)),
            gt: Box::new(leaf(false, 100, 3)),
        };
        prune(&mut node, 0.25);
        assert!(
            matches!(node, Node::Split { .. }),
            "a clean split must survive pruning"
        );
    }

    #[test]
    fn collapse_computes_majority_from_leaf_counts() {
        // le: yes with 30/8 (22 pos, 8 neg); gt: no with 20/5
        // (5 pos, 15 neg). Merged: 27 pos, 23 neg -> yes, errors 23.
        let node = Node::Split {
            attr: 0,
            threshold: 0.0,
            le: Box::new(leaf(true, 30, 8)),
            gt: Box::new(leaf(false, 20, 5)),
        };
        let merged = collapse(&node);
        assert_eq!(
            merged,
            Node::Leaf {
                label: true,
                total: 50,
                errors: 23
            }
        );
    }

    #[test]
    fn pruning_is_recursive() {
        // Inner noise split nested under a clean outer split: the
        // inner one collapses, the outer survives.
        let mut node = Node::Split {
            attr: 0,
            threshold: 10.0,
            le: Box::new(Node::Split {
                attr: 1,
                threshold: 1.0,
                le: Box::new(leaf(true, 20, 9)),
                gt: Box::new(leaf(false, 20, 10)),
            }),
            gt: Box::new(leaf(false, 100, 1)),
        };
        prune(&mut node, 0.25);
        if let Node::Split { le, gt, .. } = &node {
            assert!(matches!(**le, Node::Leaf { .. }), "inner split kept");
            assert!(matches!(**gt, Node::Leaf { .. }));
        } else {
            panic!("outer split should survive: {node:?}");
        }
    }
}
