//! Property-based tests for the decision-tree learner.

use digg_ml::baselines::{Classifier, MajorityClass, OneR};
use digg_ml::c45::{train, C45Params};
use digg_ml::crossval::{cross_validate, stratified_folds};
use digg_ml::data::{Instance, MlDataset};
use digg_ml::metrics::evaluate;
use digg_ml::prune::pessimistic_errors;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = MlDataset> {
    prop::collection::vec(((0.0..100.0f64, 0.0..100.0f64), any::<bool>()), 4..120).prop_map(
        |rows| {
            let mut ds = MlDataset::new(vec!["a", "b"]);
            for ((x, y), label) in rows {
                ds.push(Instance::new(vec![x, y], label));
            }
            ds
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unpruned_tree_never_loses_to_majority_on_training_data(ds in dataset_strategy()) {
        let tree = train(&ds, &C45Params { min_leaf: 2, confidence: None });
        let tree_acc = evaluate(&tree, &ds).accuracy();
        let maj_acc = MajorityClass::fit(&ds).evaluate(&ds).accuracy();
        prop_assert!(tree_acc >= maj_acc - 1e-12);
    }

    #[test]
    fn leaf_counts_partition_training_data(ds in dataset_strategy()) {
        let tree = train(&ds, &C45Params { min_leaf: 2, confidence: None });
        prop_assert_eq!(tree.root.training_total(), ds.len());
        prop_assert!(tree.root.training_errors() <= ds.len());
    }

    #[test]
    fn pruning_never_grows_the_tree(ds in dataset_strategy()) {
        let unpruned = train(&ds, &C45Params { min_leaf: 2, confidence: None });
        let pruned = train(&ds, &C45Params { min_leaf: 2, confidence: Some(0.25) });
        prop_assert!(pruned.leaf_count() <= unpruned.leaf_count());
        prop_assert!(pruned.depth() <= unpruned.depth());
        // Pruning preserves the training partition size.
        prop_assert_eq!(pruned.root.training_total(), ds.len());
    }

    #[test]
    fn prediction_is_total(ds in dataset_strategy(), x in -1e3..1e3f64, y in -1e3..1e3f64) {
        let tree = train(&ds, &C45Params::default());
        // Any finite input gets some prediction without panicking.
        let _ = tree.predict(&[x, y]);
    }

    #[test]
    fn rendering_mentions_every_leaf(ds in dataset_strategy()) {
        let tree = train(&ds, &C45Params::default());
        let rendered = tree.render();
        let leaves = rendered.matches('(').count();
        prop_assert_eq!(leaves, tree.leaf_count());
    }

    #[test]
    fn pessimistic_bound_dominates_observed(errors in 0usize..50, extra in 0usize..100) {
        let total = errors + extra.max(1);
        let e = pessimistic_errors(errors, total, 0.25);
        prop_assert!(e + 1e-9 >= errors as f64);
        prop_assert!(e <= total as f64 + 1e-9);
    }

    #[test]
    fn folds_cover_and_balance(ds in dataset_strategy(), k in 2usize..6, seed in any::<u64>()) {
        let folds = stratified_folds(&ds, k, seed);
        prop_assert_eq!(folds.len(), ds.len());
        prop_assert!(folds.iter().all(|&f| f < k));
        let mut counts = vec![0usize; k];
        for &f in &folds { counts[f] += 1; }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        // Round-robin dealing keeps folds within 2 of each other.
        prop_assert!(max - min <= 2, "unbalanced folds {counts:?}");
    }

    #[test]
    fn cross_validation_sees_each_example_once(ds in dataset_strategy(), seed in any::<u64>()) {
        let k = 4;
        let r = cross_validate(&ds, &C45Params::default(), k, seed);
        prop_assert_eq!(r.pooled.total(), ds.len());
        prop_assert_eq!(r.correct() + r.errors(), ds.len());
    }

    #[test]
    fn one_r_beats_or_ties_majority_on_training(ds in dataset_strategy()) {
        let one_r = OneR::fit(&ds).evaluate(&ds).accuracy();
        let maj = MajorityClass::fit(&ds).evaluate(&ds).accuracy();
        prop_assert!(one_r >= maj - 1e-12);
    }
}
