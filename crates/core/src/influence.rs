//! Story influence — Friends-interface visibility (paper §4.1).
//!
//! "A story's influence is given by the number of users who can see it
//! through the Friends interface": the union of the fans of the
//! submitter and of everyone who has voted so far. Fig. 3(a) plots its
//! histogram at submission, after 10 votes and after 20 votes.

use crate::story_metrics::StorySweeper;
use social_graph::{SocialGraph, UserId};

/// Number of users who can see the story through the Friends
/// interface after the first `k` voters (`k = 1` means just the
/// submitter). The voters so far are excluded from the count — the
/// interface notifies *other* users (a fan who votes later still
/// counts as audience at this point).
///
/// `k` is clamped to the voter-list length.
pub fn influence_after(graph: &SocialGraph, voters: &[UserId], k: usize) -> usize {
    let k = k.min(voters.len());
    StorySweeper::new(graph)
        .sweep(graph, &voters[..k])
        .influence_after(k)
}

/// Influence at submission (fans of the submitter only — the paper's
/// `fans1`, minus any fans who later voted; use
/// [`SocialGraph::fan_count`] for raw `fans1`).
pub fn influence_at_submission(graph: &SocialGraph, voters: &[UserId]) -> usize {
    influence_after(graph, voters, 1)
}

/// Influence trajectory: the value after each successive voter
/// (index `k` = after `k + 1` voters). Equals
/// [`influence_after`] at each prefix, computed incrementally.
pub fn influence_trajectory(graph: &SocialGraph, voters: &[UserId]) -> Vec<usize> {
    StorySweeper::new(graph)
        .sweep(graph, voters)
        .influence()
        .iter()
        .map(|&v| v as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use social_graph::GraphBuilder;

    /// Fans: 0 <- {1, 2, 3}; 4 <- {5, 6}; 1 <- {2}.
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(7);
        for f in [1, 2, 3] {
            b.add_watch(UserId(f), UserId(0));
        }
        for f in [5, 6] {
            b.add_watch(UserId(f), UserId(4));
        }
        b.add_watch(UserId(2), UserId(1));
        b.build()
    }

    #[test]
    fn influence_at_submission_counts_nonvoting_fans() {
        let g = graph();
        // Submitter 0 has fans {1,2,3}; none have voted.
        assert_eq!(influence_at_submission(&g, &[UserId(0)]), 3);
        // Before fan 1 votes, they are still audience…
        assert_eq!(influence_after(&g, &[UserId(0), UserId(1)], 1), 3);
        // …after voting they leave it (and contribute their fan 2,
        // already present).
        assert_eq!(influence_after(&g, &[UserId(0), UserId(1)], 2), 2);
    }

    #[test]
    fn influence_unions_voter_fandoms() {
        let g = graph();
        let voters = [UserId(0), UserId(4)];
        // Fans of 0: {1,2,3}; fans of 4: {5,6}; no voters among them.
        assert_eq!(influence_after(&g, &voters, 2), 5);
    }

    #[test]
    fn overlapping_fandoms_count_once() {
        let g = graph();
        // Voters 0 and 1: fans {1,2,3} U {2} minus voter 1 = {2,3}.
        let voters = [UserId(0), UserId(1)];
        assert_eq!(influence_after(&g, &voters, 2), 2);
    }

    #[test]
    fn k_clamps_to_list_length() {
        let g = graph();
        let voters = [UserId(0)];
        assert_eq!(
            influence_after(&g, &voters, 10),
            influence_after(&g, &voters, 1)
        );
        assert_eq!(influence_after(&g, &[], 5), 0);
    }

    #[test]
    fn trajectory_matches_pointwise() {
        let g = graph();
        // Includes a fan (1) voting mid-stream, which shrinks the
        // audience — trajectories are not monotone in general.
        let voters = [UserId(0), UserId(1), UserId(4)];
        let traj = influence_trajectory(&g, &voters);
        assert_eq!(traj.len(), 3);
        for (k, &v) in traj.iter().enumerate() {
            assert_eq!(v, influence_after(&g, &voters, k + 1), "at k={k}");
        }
        // Step 2: fan 1 voted, audience {2,3}; step 3 adds fans of 4.
        assert_eq!(traj, vec![3, 2, 4]);
    }

    #[test]
    fn isolated_submitter_has_zero_influence() {
        let g = graph();
        assert_eq!(influence_at_submission(&g, &[UserId(6)]), 0);
    }
}
