//! One module per reproduced artifact of the paper's evaluation.
//!
//! Every experiment returns a serializable result struct with a
//! `render()` method producing the human-readable table/series the
//! bench binaries print and EXPERIMENTS.md quotes. The mapping to
//! paper figures is in DESIGN.md §4:
//!
//! | module | artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — vote time series of front-page stories |
//! | [`fig2`] | Fig. 2(a,b) — vote histogram, user-activity histogram |
//! | [`fig3`] | Fig. 3(a,b) — story influence, cascade sizes |
//! | [`fig4`] | Fig. 4 — in-network votes vs final votes |
//! | [`fig5`] | Fig. 5 — the C4.5 tree + 10-fold CV |
//! | [`prediction`] | §5.2 — the 48-story holdout & promoter comparison |
//! | [`scatter`] | final (unnumbered) figure — friends+1 vs fans+1 |
//! | [`intext`] | §3 in-text statistics |
//! | [`decay`] | §2 related work — Wu & Huberman's post-promotion decay |

pub mod decay;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod intext;
pub mod prediction;
pub mod scatter;
