//! The §5.2 train-and-holdout pipeline.
//!
//! Paper procedure:
//!
//! 1. train a C4.5 tree on the (augmented) front-page sample;
//! 2. 10-fold cross-validate on it;
//! 3. build the holdout from the upcoming sample: keep only stories
//!    submitted by top users (rank ≤ 100) that received at least 10
//!    votes (48 stories in the paper);
//! 4. evaluate the tree on the holdout (paper: TP=4 TN=32 FP=11 FN=1);
//! 5. compare precision against Digg itself on the subset Digg
//!    promoted (paper: Digg 5/14 = 0.36 vs classifier 4/7 = 0.57).

use crate::features::{build_training_set, FanCoverage, StoryFeatures};
use crate::predictor::InterestingnessPredictor;
use crate::story_metrics::StorySweeper;
use digg_data::{DiggDataset, StoryRecord};
use digg_ml::c45::C45Params;
use digg_ml::crossval::CrossValResult;
use digg_ml::ConfusionMatrix;
use digg_snapshot::{ByteWriter, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};
use social_graph::SocialGraph;

/// One story's features, evaluable at **any vote prefix** from a
/// single sweep.
///
/// The paper's feature windows (`v6`/`v10`/`v20`) are prefix-stable:
/// truncating the voter list to its first `k` entries leaves every
/// earlier cumulative cascade count unchanged. One sweep of the first
/// `min(len, 21)` voters therefore determines the features of *every*
/// prefix, and [`features_at`](StoryPrefixes::features_at) reads them
/// off in O(1) — the prediction experiments evaluate the predictor at
/// each prefix without re-sweeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoryPrefixes {
    /// Cumulative in-network counts for the first ≤ 20 post-submitter
    /// votes (all the feature windows can see).
    cascade: Vec<usize>,
    /// Fans of the submitter.
    fans1: usize,
    /// Full scraped voter-list length (submitter included).
    scraped_votes: usize,
}

impl StoryPrefixes {
    /// Compute from a scraped record: one sweep of the first
    /// `min(len, 21)` voters.
    pub fn compute(record: &StoryRecord, graph: &SocialGraph) -> StoryPrefixes {
        StoryPrefixes::compute_with(&mut StorySweeper::new(graph), record, graph)
    }

    /// [`StoryPrefixes::compute`] reusing a caller-owned sweeper (the
    /// batch path: no per-story allocation beyond the cascade copy).
    pub fn compute_with(
        sweeper: &mut StorySweeper,
        record: &StoryRecord,
        graph: &SocialGraph,
    ) -> StoryPrefixes {
        let window = record.voters.len().min(21);
        let sweep = sweeper.sweep(graph, &record.voters[..window]);
        StoryPrefixes {
            cascade: sweep.cascade().iter().map(|&v| v as usize).collect(),
            fans1: graph.fan_count(record.submitter),
            scraped_votes: record.voters.len(),
        }
    }

    /// Features as if only the first `k` voters had been scraped —
    /// equal to [`StoryFeatures::extract`] on the `k`-truncated
    /// record. `None` when the prefix lacks the 10-vote observation
    /// window (`k <= 10`) or exceeds the scraped list.
    pub fn features_at(&self, k: usize) -> Option<StoryFeatures> {
        if k <= 10 || k > self.scraped_votes {
            return None;
        }
        // Prefix k has k - 1 post-submitter votes; window n reads the
        // cascade after min(n, k - 1) of them.
        let within = |n: usize| match n.min(k - 1).min(self.cascade.len()) {
            0 => 0,
            m => self.cascade[m - 1],
        };
        Some(StoryFeatures {
            v6: within(6),
            v10: within(10),
            v20: within(20),
            fans1: self.fans1,
            scraped_votes: k,
        })
    }

    /// Features of the full scraped list — equal to
    /// [`StoryFeatures::extract`] on the record itself.
    pub fn features(&self) -> Option<StoryFeatures> {
        self.features_at(self.scraped_votes)
    }

    /// Full scraped voter-list length (submitter included).
    pub fn scraped_votes(&self) -> usize {
        self.scraped_votes
    }
}

impl Snapshot for StoryPrefixes {
    fn snapshot(&self) -> Vec<u8> {
        let mut c = SnapshotWriter::new();
        let mut w = ByteWriter::new();
        w.put_usize(self.fans1);
        w.put_usize(self.scraped_votes);
        w.put_usize(self.cascade.len());
        for &v in &self.cascade {
            w.put_usize(v);
        }
        c.section("prefixes", w.into_bytes());
        c.finish()
    }
}

impl Restore for StoryPrefixes {
    type Context<'a> = ();

    fn restore(bytes: &[u8], _ctx: ()) -> Result<StoryPrefixes, SnapshotError> {
        let c = SnapshotReader::parse(bytes)?;
        let mut r = c.section_reader("prefixes")?;
        let fans1 = r.get_usize()?;
        let scraped_votes = r.get_usize()?;
        let n = r.get_usize()?;
        // The sweep window is min(len, 21) voters → at most 20
        // post-submitter cascade entries, never more than the list.
        if n > 20 || n > scraped_votes.saturating_sub(1) {
            return Err(SnapshotError::Malformed(format!(
                "{n} cascade entries for {scraped_votes} scraped votes"
            )));
        }
        let mut cascade = Vec::with_capacity(n);
        let mut prev = 0usize;
        for _ in 0..n {
            let v = r.get_usize()?;
            if v < prev {
                return Err(SnapshotError::Malformed(
                    "cascade counts must be non-decreasing".into(),
                ));
            }
            prev = v;
            cascade.push(v);
        }
        Ok(StoryPrefixes {
            cascade,
            fans1,
            scraped_votes,
        })
    }
}

/// Pipeline parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// "Interesting" = more than this many final votes (paper: 520).
    pub threshold: u32,
    /// Holdout filter: submitter rank must be ≤ this (paper: 100).
    pub top_user_rank: usize,
    /// Holdout filter: the scraped voter list must be **strictly
    /// longer** than this — i.e. at least `min_votes` votes beyond the
    /// submitter's implicit first vote (paper: 10). A story whose
    /// voter list has exactly `min_votes` entries is excluded.
    pub min_votes: usize,
    /// Tree parameters.
    pub c45: C45Params,
    /// Cross-validation folds (paper: 10).
    pub cv_folds: usize,
    /// Cross-validation fold seed.
    pub cv_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            threshold: crate::features::INTERESTINGNESS_THRESHOLD,
            top_user_rank: 100,
            min_votes: 10,
            c45: C45Params::default(),
            cv_folds: 10,
            cv_seed: 0x1e12,
        }
    }
}

/// Everything the §5.2 experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Stories used for training (paper: 207).
    pub training_stories: usize,
    /// Cross-validation: correctly classified (paper: 174).
    pub cv_correct: usize,
    /// Cross-validation: misclassified (paper: 33).
    pub cv_errors: usize,
    /// The trained tree, rendered in C4.5 text form (cf. Fig. 5).
    pub tree_text: String,
    /// Holdout size after filtering (paper: 48).
    pub holdout_stories: usize,
    /// Holdout confusion matrix (paper: TP=4 TN=32 FP=11 FN=1).
    pub holdout: ConfusionMatrix,
    /// Stories in the holdout that the platform promoted
    /// (paper: 14).
    pub digg_promoted: usize,
    /// Of those, how many turned out interesting (paper: 5 ⇒
    /// precision 0.36).
    pub digg_promoted_interesting: usize,
    /// Classifier positives among the promoted subset (paper: 7).
    pub classifier_positive_on_promoted: usize,
    /// Of those, how many turned out interesting (paper: 4 ⇒
    /// precision 0.57).
    pub classifier_correct_on_promoted: usize,
}

impl PipelineResult {
    /// Digg's precision on the promoted subset.
    pub fn digg_precision(&self) -> Option<f64> {
        if self.digg_promoted == 0 {
            return None;
        }
        Some(self.digg_promoted_interesting as f64 / self.digg_promoted as f64)
    }

    /// The classifier's precision on the promoted subset.
    pub fn classifier_precision(&self) -> Option<f64> {
        if self.classifier_positive_on_promoted == 0 {
            return None;
        }
        Some(
            self.classifier_correct_on_promoted as f64
                / self.classifier_positive_on_promoted as f64,
        )
    }
}

/// Coverage diagnostics of one pipeline run — how much observed
/// network the training and holdout features stood on, kept separate
/// from [`PipelineResult`] so the paper-shaped payload (and every
/// artifact serialized from it) stays byte-identical when coverage is
/// full.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineCoverage {
    /// Fan coverage over the front-page (training) records.
    pub training: FanCoverage,
    /// Fan coverage over the selected holdout records.
    pub holdout: FanCoverage,
    /// Holdout rows skipped because features could not be extracted
    /// (fewer than 10 post-submitter votes — e.g. a truncated voter
    /// list that still cleared the promotion boundary).
    pub holdout_unextractable: usize,
}

/// A holdout record plus the facts the comparison needs.
struct HoldoutRow<'a> {
    record: &'a StoryRecord,
    promoted_by_digg: bool,
}

/// Select the §5.2 holdout: upcoming stories by top-ranked users with
/// more than `min_votes` scraped voters (submitter included in the
/// list, so this keeps stories with ≥ `min_votes` post-submitter
/// votes). `promoted_after` tells the pipeline which upcoming stories
/// the platform later promoted (from the augmentation pass).
fn select_holdout<'a>(
    ds: &'a DiggDataset,
    cfg: &PipelineConfig,
    promoted_after: &dyn Fn(&StoryRecord) -> bool,
) -> Vec<HoldoutRow<'a>> {
    ds.upcoming
        .iter()
        .filter(|r| r.voters.len() > cfg.min_votes)
        .filter(|r| {
            ds.rank_of(r.submitter)
                .map(|rank| rank <= cfg.top_user_rank)
                .unwrap_or(false)
        })
        .filter(|r| r.final_votes.is_some())
        .map(|record| HoldoutRow {
            record,
            promoted_by_digg: promoted_after(record),
        })
        .collect()
}

/// Run the full §5.2 pipeline.
///
/// `promoted_after(record)` must report whether the platform
/// eventually promoted the story (observable in the paper's Feb-2008
/// pass; in the reproduction it comes from simulator ground truth or
/// from the 43-vote boundary on final counts).
///
/// Returns `None` when the training sample is unusable (no augmented
/// stories with 10+ votes) or the holdout is empty.
pub fn run_pipeline(
    ds: &DiggDataset,
    cfg: &PipelineConfig,
    promoted_after: &dyn Fn(&StoryRecord) -> bool,
) -> Option<PipelineResult> {
    run_pipeline_with_coverage(ds, cfg, promoted_after).map(|(result, _)| result)
}

/// [`run_pipeline`] plus coverage diagnostics: the same
/// [`PipelineResult`] (bit-identical — the coverage measurement never
/// influences training or evaluation) alongside a
/// [`PipelineCoverage`] reporting how much observed network the
/// features stood on. The entry point for degraded datasets: partial
/// fan coverage is accepted and *surfaced*, not silently folded into
/// zero-valued features.
pub fn run_pipeline_with_coverage(
    ds: &DiggDataset,
    cfg: &PipelineConfig,
    promoted_after: &dyn Fn(&StoryRecord) -> bool,
) -> Option<(PipelineResult, PipelineCoverage)> {
    // 1-2. Train + cross-validate on the front-page sample. Fewer
    // than two trainable stories cannot be cross-validated (a 2-fold
    // split would hand C4.5 an empty fold) — report "unusable" instead
    // of panicking; degraded scrapes do reach this.
    let (training, kept) = build_training_set(&ds.front_page, &ds.network, cfg.threshold);
    if kept.len() < 2 {
        return None;
    }
    let cv: CrossValResult = digg_ml::crossval::cross_validate(
        &training,
        &cfg.c45,
        cfg.cv_folds.min(kept.len()).max(2),
        cfg.cv_seed,
    );
    let predictor =
        InterestingnessPredictor::train(&ds.front_page, &ds.network, cfg.threshold, &cfg.c45)?;

    // 3. Holdout.
    let holdout = select_holdout(ds, cfg, promoted_after);
    if holdout.is_empty() {
        return None;
    }

    // 4. Evaluate.
    let mut cm = ConfusionMatrix::default();
    let mut digg_promoted = 0usize;
    let mut digg_promoted_interesting = 0usize;
    let mut clf_pos_on_promoted = 0usize;
    let mut clf_correct_on_promoted = 0usize;
    let mut holdout_unextractable = 0usize;
    let mut sweeper = StorySweeper::new(&ds.network);
    for row in &holdout {
        let r = row.record;
        // digg-lint: allow(no-lib-unwrap) — invariant: the holdout was filtered to augmented records three lines up
        let actual = r.is_interesting(cfg.threshold).expect("filtered augmented");
        // One sweep determines every prefix; the full-window features
        // here are bit-identical to `StoryFeatures::extract`.
        let prefixes = StoryPrefixes::compute_with(&mut sweeper, r, &ds.network);
        let Some(f) = prefixes.features() else {
            holdout_unextractable += 1;
            continue;
        };
        let predicted = predictor.predict_features(&f);
        cm.record(predicted, actual);
        // 5. Promoted-subset comparison.
        if row.promoted_by_digg {
            digg_promoted += 1;
            if actual {
                digg_promoted_interesting += 1;
            }
            if predicted {
                clf_pos_on_promoted += 1;
                if actual {
                    clf_correct_on_promoted += 1;
                }
            }
        }
    }

    let coverage = PipelineCoverage {
        training: FanCoverage::compute(ds.front_page.iter(), &ds.network),
        holdout: FanCoverage::compute(holdout.iter().map(|row| row.record), &ds.network),
        holdout_unextractable,
    };

    Some((
        PipelineResult {
            training_stories: training.len(),
            cv_correct: cv.correct(),
            cv_errors: cv.errors(),
            tree_text: predictor.tree().render(),
            holdout_stories: cm.total(),
            holdout: cm,
            digg_promoted,
            digg_promoted_interesting,
            classifier_positive_on_promoted: clf_pos_on_promoted,
            classifier_correct_on_promoted: clf_correct_on_promoted,
        },
        coverage,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::SampleSource;
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, SocialGraph, UserId};

    /// Build a dataset exhibiting the paper's pattern: top user 0 with
    /// many fans whose stories flop; unconnected users whose stories
    /// soar.
    fn toy_dataset() -> DiggDataset {
        let mut b = GraphBuilder::new(400);
        for f in 1..=20 {
            b.add_watch(UserId(f), UserId(0));
        }
        // Give users 300..310 one fan each so the ranking is defined.
        for (i, u) in (300..310).enumerate() {
            b.add_watch(UserId(200 + i as u32), UserId(u));
        }
        let network: SocialGraph = b.build();
        let top_users = network.users_by_fans_desc();

        let mut front_page = Vec::new();
        let mut story_id = 0u32;
        let mut rec = |submitter: u32, voters: Vec<u32>, fin: u32, source: SampleSource| {
            story_id += 1;
            StoryRecord {
                story: StoryId(story_id),
                submitter: UserId(submitter),
                submitted_at: Minute(story_id as u64),
                voters: voters.into_iter().map(UserId).collect(),
                source,
                final_votes: Some(fin),
            }
        };
        for i in 0..10 {
            // Flops by the top user: fans vote first.
            let mut vs = vec![0];
            vs.extend(1..=10);
            front_page.push(rec(0, vs, 120 + i, SampleSource::FrontPage));
            // Hits by outsiders.
            let mut vs = vec![330 + i];
            vs.extend(100..111);
            front_page.push(rec(330 + i, vs, 1800 + i, SampleSource::FrontPage));
        }
        // Upcoming: submitted by top user 0 (rank 1).
        let mut upcoming = Vec::new();
        // Network-driven, ends uninteresting; was promoted by Digg.
        let mut vs = vec![0];
        vs.extend(1..=12);
        upcoming.push(rec(0, vs, 200, SampleSource::Upcoming));
        // Interest-driven, ends interesting; not promoted.
        let mut vs = vec![0];
        vs.extend(120..132);
        upcoming.push(rec(0, vs, 900, SampleSource::Upcoming));
        DiggDataset {
            scraped_at: Minute(1000),
            front_page,
            upcoming,
            network,
            top_users,
        }
    }

    #[test]
    fn pipeline_reproduces_pattern_end_to_end() {
        let ds = toy_dataset();
        let cfg = PipelineConfig {
            cv_folds: 5,
            ..PipelineConfig::default()
        };
        let result =
            run_pipeline(&ds, &cfg, &|r| r.final_votes.unwrap_or(0) < 500).expect("pipeline runs");
        assert_eq!(result.training_stories, 20);
        // Training data is separable: CV should be near-perfect.
        assert!(result.cv_correct >= 18, "cv_correct {}", result.cv_correct);
        assert_eq!(result.holdout_stories, 2);
        // Network-driven upcoming story predicted boring (TN),
        // interest-driven predicted interesting (TP).
        assert_eq!(result.holdout.tp, 1);
        assert_eq!(result.holdout.tn, 1);
        assert!(result.tree_text.contains("v10"));
    }

    #[test]
    fn promoted_subset_precisions() {
        let ds = toy_dataset();
        let cfg = PipelineConfig {
            cv_folds: 5,
            ..PipelineConfig::default()
        };
        // Mark both holdout stories as promoted by the platform.
        let result = run_pipeline(&ds, &cfg, &|_| true).unwrap();
        assert_eq!(result.digg_promoted, 2);
        assert_eq!(result.digg_promoted_interesting, 1);
        assert_eq!(result.digg_precision(), Some(0.5));
        // Classifier flags only the genuinely interesting one.
        assert_eq!(result.classifier_positive_on_promoted, 1);
        assert_eq!(result.classifier_correct_on_promoted, 1);
        assert_eq!(result.classifier_precision(), Some(1.0));
    }

    #[test]
    fn coverage_variant_returns_identical_result_plus_diagnostics() {
        let ds = toy_dataset();
        let cfg = PipelineConfig {
            cv_folds: 5,
            ..PipelineConfig::default()
        };
        let promoted = |r: &StoryRecord| r.final_votes.unwrap_or(0) < 500;
        let plain = run_pipeline(&ds, &cfg, &promoted).unwrap();
        let (with_cov, coverage) = run_pipeline_with_coverage(&ds, &cfg, &promoted).unwrap();
        // Same payload bit for bit: coverage never influences results.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&with_cov).unwrap()
        );
        assert!(coverage.training.voters_observed > 0);
        assert!((0.0..=1.0).contains(&coverage.training.fraction()));
        assert!((0.0..=1.0).contains(&coverage.holdout.fraction()));
        assert_eq!(coverage.holdout_unextractable, 0);
    }

    #[test]
    fn degraded_network_lowers_reported_coverage() {
        // Strip the entire network: features become all-zero, and the
        // coverage diagnostic must say so instead of leaving the NaN
        // hunt to the caller.
        let mut ds = toy_dataset();
        ds.network = SocialGraph::empty(400);
        let cfg = PipelineConfig {
            cv_folds: 5,
            top_user_rank: usize::MAX, // rank filter needs fan counts
            ..PipelineConfig::default()
        };
        // With no fan links the rank filter can't hold; holdout
        // selection needs rank_of, which uses top_users — keep them.
        let out = run_pipeline_with_coverage(&ds, &cfg, &|_| true);
        if let Some((_, coverage)) = out {
            assert_eq!(coverage.training.voters_with_fans, 0);
            assert_eq!(coverage.training.fraction(), 0.0);
            assert!(coverage.training.fraction().is_finite());
        }
    }

    #[test]
    fn prefix_features_match_truncated_extraction() {
        let ds = toy_dataset();
        let g = &ds.network;
        for r in ds.front_page.iter().chain(&ds.upcoming) {
            let prefixes = StoryPrefixes::compute(r, g);
            assert_eq!(prefixes.features(), StoryFeatures::extract(r, g));
            assert_eq!(prefixes.scraped_votes(), r.voters.len());
            for k in 0..=r.voters.len() + 2 {
                let mut truncated = r.clone();
                truncated.voters.truncate(k);
                let batch = StoryFeatures::extract(&truncated, g);
                let expect = if k <= r.voters.len() { batch } else { None };
                assert_eq!(
                    prefixes.features_at(k),
                    expect,
                    "story {:?} prefix {k}",
                    r.story
                );
            }
        }
    }

    #[test]
    fn story_prefixes_snapshot_round_trips() {
        let ds = toy_dataset();
        for r in ds.front_page.iter().chain(&ds.upcoming) {
            let p = StoryPrefixes::compute(r, &ds.network);
            let bytes = p.snapshot();
            let q = StoryPrefixes::restore(&bytes, ()).expect("restore");
            assert_eq!(p, q);
            assert_eq!(q.snapshot(), bytes);
            for k in 0..=r.voters.len() + 1 {
                assert_eq!(p.features_at(k), q.features_at(k));
            }
        }
        // Decreasing cascade counts are rejected, not trusted.
        let bad = StoryPrefixes {
            cascade: vec![3, 1],
            fans1: 5,
            scraped_votes: 10,
        };
        match StoryPrefixes::restore(&bad.snapshot(), ()) {
            Err(SnapshotError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn empty_holdout_returns_none() {
        let mut ds = toy_dataset();
        ds.upcoming.clear();
        let cfg = PipelineConfig::default();
        assert!(run_pipeline(&ds, &cfg, &|_| false).is_none());
    }

    #[test]
    fn min_votes_boundary_excludes_exactly_ten_voters() {
        // `min_votes` is a strict bound on the voter-list length: a
        // story whose scraped list has exactly `min_votes` entries
        // (here 10: submitter + 9 votes) is excluded; one with 11
        // entries (10 post-submitter votes) is the smallest kept.
        let mut ds = toy_dataset();
        ds.upcoming.clear();
        let mk = |id: u32, n_voters: u32| {
            let mut vs = vec![0u32];
            vs.extend(1..n_voters);
            StoryRecord {
                story: StoryId(1000 + id),
                submitter: UserId(0),
                submitted_at: Minute(0),
                voters: vs.into_iter().map(UserId).collect(),
                source: SampleSource::Upcoming,
                final_votes: Some(200),
            }
        };
        ds.upcoming.push(mk(0, 10)); // exactly 10 voters: excluded
        ds.upcoming.push(mk(1, 11)); // 11 voters: kept
        let cfg = PipelineConfig {
            cv_folds: 5,
            ..PipelineConfig::default()
        };
        assert_eq!(cfg.min_votes, 10);
        let result = run_pipeline(&ds, &cfg, &|_| false).expect("one holdout story");
        assert_eq!(result.holdout_stories, 1);
    }

    #[test]
    fn rank_filter_excludes_non_top_submitters() {
        let mut ds = toy_dataset();
        // Re-attribute the upcoming stories to an unranked user with
        // zero fans (beyond the rank cutoff).
        for r in &mut ds.upcoming {
            r.submitter = UserId(399);
            r.voters[0] = UserId(399);
        }
        let cfg = PipelineConfig {
            top_user_rank: 5,
            ..PipelineConfig::default()
        };
        assert!(run_pipeline(&ds, &cfg, &|_| false).is_none());
    }
}
