//! Per-vote incremental analytics — the vote-apply state machine.
//!
//! The batch engine ([`crate::story_metrics::StorySweeper`]) answers
//! questions about a *finished* voter list; the live workload the
//! ROADMAP calls "predictor-as-a-service" sees votes one at a time and
//! must keep every derived quantity current after each arrival.
//! [`IncrementalSweep`] is that primitive: it owns the same state the
//! batch sweep threads through its loop — the fan-union of voters so
//! far (a [`FanProbe`] over CSR rows), the voter set, and the running
//! cascade/audience counters — and exposes it one
//! [`apply_vote`](IncrementalSweep::apply_vote) at a time.
//!
//! Costs and guarantees:
//!
//! * applying a vote is **O(fan-degree of the new voter)** — one O(1)
//!   membership probe plus one streamed CSR fan row; nothing already
//!   absorbed is revisited;
//! * after `k` applied votes the accumulated [`StorySweep`], the
//!   [`StoryFeatures`], and the C4.5 verdict are **byte-identical** to
//!   a fresh batch sweep of the `k`-voter prefix (the batch sweeper is
//!   itself a thin replay over this type, so the equivalence is
//!   structural, and a proptest pins it);
//! * scratch is epoch-stamped, so `begin` is O(1) and a long-lived
//!   service can stream thousands of stories through one instance
//!   with zero per-story allocation.

use crate::features::StoryFeatures;
use crate::predictor::InterestingnessPredictor;
use crate::story_metrics::StorySweep;
use digg_ml::stream::StreamingPrediction;
use digg_snapshot::{
    ByteReader, ByteWriter, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use social_graph::{FanBitset, FanProbe, FanView, UserId};

/// The incremental story-analytics state machine. Construct once (or
/// once per worker), call [`begin`](IncrementalSweep::begin) per story,
/// then [`apply_vote`](IncrementalSweep::apply_vote) per arriving vote.
///
/// # Examples
///
/// ```
/// use digg_core::incremental::IncrementalSweep;
/// use social_graph::{GraphBuilder, UserId};
///
/// // User 1 is a fan of user 0.
/// let mut b = GraphBuilder::new(3);
/// b.add_watch(UserId(1), UserId(0));
/// let g = b.build();
///
/// let mut incr = IncrementalSweep::new(&g);
/// incr.begin(&g);
/// let submit = incr.apply_vote(&g, UserId(0));
/// assert_eq!(submit.in_network, None); // the submitter has no prior
/// assert_eq!(submit.influence, 1); // fan 1 can now see the story
/// let vote = incr.apply_vote(&g, UserId(1));
/// assert_eq!(vote.in_network, Some(true));
/// assert_eq!(vote.cascade, 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSweep {
    /// Users reachable through the Friends interface: the fan-union of
    /// everyone who has voted so far.
    reached: FanProbe,
    /// Users who have voted so far.
    voted: FanBitset,
    /// One-cache-line (512-bit) summary of `voted`, keyed by
    /// `id % 512`: a clear bit proves the user has not voted, so the
    /// audience accounting in the absorb hot loop — which tests a
    /// random fan against a voter set of at most a few hundred —
    /// resolves from L1 instead of touching the full bitset. A set
    /// bit says nothing; the bitset confirms.
    // digg-lint: allow(snapshot-coverage) — derived summary of `voted`, rebuilt bit-by-bit on restore
    voted_filter: [u64; 8],
    /// The accumulated per-vote series (what a batch sweep of the
    /// applied prefix would have produced).
    out: StorySweep,
    /// Current influence: `|reached \ voted|`. `u32` deliberately:
    /// this is the unit the SoA output columns store, and audiences
    /// are bounded by the u32 user count.
    audience: u32,
    /// Current cascade: in-network votes so far (submitter excluded).
    /// Bounded by the number of votes, which the u32 columns carry.
    cascade: u32,
    /// Fan count of the first applied voter (the paper's `fans1`),
    /// captured when the submitter's vote is applied.
    fans1: usize,
    /// Votes applied since the last `begin` (submitter included).
    votes_applied: usize,
    /// Cached decision path for
    /// [`verdict_streaming`](IncrementalSweep::verdict_streaming):
    /// derived state, reset by `begin` and excluded from snapshots.
    // digg-lint: allow(snapshot-coverage) — derived decision cache, reset by `begin`; a restored sweep recomputes it
    stream: Option<StreamingPrediction>,
}

/// What one [`IncrementalSweep::apply_vote`] changed — the derived
/// quantities current *after* this vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteApplied {
    /// 0-based position of this vote in the story (0 = submitter).
    pub position: usize,
    /// Was the vote in-network (the voter a fan of a prior voter)?
    /// `None` for the submitter, who has no prior voters.
    pub in_network: Option<bool>,
    /// Cascade size after this vote.
    pub cascade: usize,
    /// Influence (Friends-interface audience) after this vote.
    pub influence: usize,
}

impl IncrementalSweep {
    /// A state machine sized for `graph`.
    pub fn new<G: FanView>(graph: &G) -> IncrementalSweep {
        IncrementalSweep::for_users(graph.user_count())
    }

    /// A state machine covering users `0..n`.
    pub fn for_users(n: usize) -> IncrementalSweep {
        IncrementalSweep {
            reached: FanProbe::for_users(n),
            voted: FanBitset::new(n),
            voted_filter: [0; 8],
            out: StorySweep::default(),
            audience: 0,
            cascade: 0,
            fans1: 0,
            votes_applied: 0,
            stream: None,
        }
    }

    /// Start a new story: O(1) scratch reset (plus capacity growth if
    /// `graph` gained users since the last story).
    pub fn begin<G: FanView>(&mut self, graph: &G) {
        self.reached.ensure_capacity(graph.user_count());
        self.voted.ensure_capacity(graph.user_count());
        self.reached.clear();
        self.voted.clear();
        self.voted_filter = [0; 8];
        self.out.flags.clear();
        self.out.cascade.clear();
        self.out.influence.clear();
        self.audience = 0;
        self.cascade = 0;
        self.fans1 = 0;
        self.votes_applied = 0;
        self.stream = None;
    }

    /// Pre-size the output series for `n` more votes (perf only; the
    /// series grow on demand regardless).
    pub fn reserve_votes(&mut self, n: usize) {
        self.out.flags.reserve(n.saturating_sub(1));
        self.out.cascade.reserve(n.saturating_sub(1));
        self.out.influence.reserve(n);
    }

    /// Apply the next chronological vote. O(fan-degree of `v`): one
    /// membership probe against the reached set, then `v`'s CSR fan
    /// row is absorbed. Votes by the same user twice — absent from
    /// real data, possible in randomized tests — still count as
    /// in-network arrivals but change neither audience nor the voter
    /// set, exactly as in the batch sweep.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `graph` (ids come from the
    /// graph the story was scraped against).
    // digg-lint: hot-path
    pub fn apply_vote<G: FanView>(&mut self, graph: &G, v: UserId) -> VoteApplied {
        let position = self.votes_applied;
        let mut in_network = None;
        if position > 0 {
            let hit = self.reached.contains(v);
            if hit {
                self.cascade += 1;
            }
            // digg-lint: allow(hot-path-alloc) — amortized push into the per-story output column; one story's votes stay well under a doubling
            self.out.flags.push(hit);
            // digg-lint: allow(hot-path-alloc) — amortized push into the per-story output column; one story's votes stay well under a doubling
            self.out.cascade.push(self.cascade);
            in_network = Some(hit);
        } else {
            self.fans1 = graph.fan_count(v);
        }
        // `v` stops being audience the moment it votes.
        if self.voted.insert(v) && self.reached.contains(v) {
            self.audience -= 1;
        }
        self.voted_filter[(v.index() >> 6) & 7] |= 1u64 << (v.index() & 63);
        // Newly reached non-voters join the audience; split borrows so
        // the probe's first-sighting hook can read the voter set. The
        // filter screens the common case (a fan who has never voted)
        // without leaving L1.
        let voted = &self.voted;
        let filter = &self.voted_filter;
        let audience = &mut self.audience;
        self.reached.absorb_fans(graph, v, |f| {
            let maybe_voted = filter[(f.index() >> 6) & 7] & (1u64 << (f.index() & 63)) != 0;
            if !(maybe_voted && voted.contains(f)) {
                *audience += 1;
            }
        });
        // digg-lint: allow(hot-path-alloc) — amortized push into the per-story output column; one story's votes stay well under a doubling
        self.out.influence.push(self.audience);
        self.votes_applied += 1;
        VoteApplied {
            position,
            in_network,
            cascade: self.cascade as usize,
            influence: self.audience as usize,
        }
    }

    /// Votes applied since the last [`begin`](IncrementalSweep::begin)
    /// (submitter included).
    pub fn votes_applied(&self) -> usize {
        self.votes_applied
    }

    /// The accumulated sweep — identical to what
    /// [`StorySweeper::sweep`](crate::story_metrics::StorySweeper::sweep)
    /// returns for the applied voter prefix.
    pub fn sweep(&self) -> &StorySweep {
        &self.out
    }

    /// Early-vote features of the applied prefix, equal to
    /// [`StoryFeatures::extract`] on a record truncated to the applied
    /// votes. `None` until the paper's minimum observation window is
    /// in (more than 10 post-submitter votes). `fans1` is the fan
    /// count of the first applied voter (the submitter by the scraped
    /// list's convention).
    pub fn features(&self) -> Option<StoryFeatures> {
        if self.votes_applied <= 10 {
            return None;
        }
        Some(StoryFeatures {
            v6: self.out.in_network_count_within(6),
            v10: self.out.in_network_count_within(10),
            v20: self.out.in_network_count_within(20),
            fans1: self.fans1,
            scraped_votes: self.votes_applied,
        })
    }

    /// The C4.5 "interesting?" verdict on the applied prefix, current
    /// as of the last vote. `None` until the 10-vote window is in.
    pub fn verdict(&self, predictor: &InterestingnessPredictor) -> Option<bool> {
        self.features().map(|f| predictor.predict_features(&f))
    }

    /// [`verdict`](IncrementalSweep::verdict) through digg-ml's cached
    /// decision path — the per-vote fast path. The first call after
    /// the 10-vote window opens walks the tree once and caches the
    /// `attr <= threshold` tests it took; later calls re-walk only
    /// when an updated attribute crosses one of those thresholds.
    /// Always equal to [`verdict`](IncrementalSweep::verdict), which
    /// the bit-identity proptests pin.
    ///
    /// The cached path belongs to `predictor`'s tree: pass the same
    /// predictor for the life of a story (the cache resets at
    /// [`begin`](IncrementalSweep::begin)).
    pub fn verdict_streaming(&mut self, predictor: &InterestingnessPredictor) -> Option<bool> {
        let f = self.features()?;
        Some(match self.stream.as_mut() {
            Some(s) => predictor.predict_update(s, &f),
            None => {
                let s = predictor.predict_stream(&f);
                let v = s.verdict();
                self.stream = Some(s);
                v
            }
        })
    }
}

/// What an [`IncrementalSweep`] snapshot carries vs rebuilds: the
/// epoch-stamped scratch sets ([`FanProbe`], [`FanBitset`]) are
/// serialized as their **member lists in ascending id order** — the
/// epochs and stamp array are an allocation-reuse detail whose values
/// depend on how many stories the instance has already streamed, so
/// writing them would make snapshot bytes path-dependent. Restore
/// re-inserts the members into fresh buffers; the accumulated
/// [`StorySweep`] series and counters are carried verbatim.
impl Snapshot for IncrementalSweep {
    fn snapshot(&self) -> Vec<u8> {
        let mut c = SnapshotWriter::new();

        let mut w = ByteWriter::new();
        w.put_usize(self.voted.capacity());
        w.put_usize(self.audience as usize);
        w.put_usize(self.cascade as usize);
        w.put_usize(self.fans1);
        w.put_usize(self.votes_applied);
        c.section("state", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.reached.len());
        for u in self.reached.members() {
            w.put_u32(u.0);
        }
        c.section("reached", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.voted.len());
        for u in self.voted.members() {
            w.put_u32(u.0);
        }
        c.section("voted", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_usize(self.out.flags.len());
        for &f in &self.out.flags {
            w.put_u8(u8::from(f));
        }
        w.put_usize(self.out.cascade.len());
        for &v in &self.out.cascade {
            w.put_usize(v as usize);
        }
        w.put_usize(self.out.influence.len());
        for &v in &self.out.influence {
            w.put_usize(v as usize);
        }
        c.section("sweep", w.into_bytes());

        c.finish()
    }
}

impl Restore for IncrementalSweep {
    type Context<'a> = ();

    fn restore(bytes: &[u8], _ctx: ()) -> Result<IncrementalSweep, SnapshotError> {
        let c = SnapshotReader::parse(bytes)?;

        let mut r = c.section_reader("state")?;
        let capacity = r.get_usize()?;
        let narrow = |v: usize, what: &str| {
            u32::try_from(v)
                .map_err(|_| SnapshotError::Malformed(format!("{what} {v} exceeds u32 range")))
        };
        let audience = narrow(r.get_usize()?, "audience")?;
        let cascade = narrow(r.get_usize()?, "cascade")?;
        let fans1 = r.get_usize()?;
        let votes_applied = r.get_usize()?;

        let read_members = |r: &mut ByteReader<'_>| -> Result<Vec<UserId>, SnapshotError> {
            let n = r.get_usize()?;
            let mut out = Vec::with_capacity(n.min(1 << 20));
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let id = r.get_u32()?;
                if id as usize >= capacity {
                    return Err(SnapshotError::Malformed(format!(
                        "member {id} beyond capacity {capacity}"
                    )));
                }
                if prev.is_some_and(|p| p >= id) {
                    return Err(SnapshotError::Malformed(
                        "member list not strictly ascending".into(),
                    ));
                }
                prev = Some(id);
                out.push(UserId(id));
            }
            Ok(out)
        };
        let reached_members = read_members(&mut c.section_reader("reached")?)?;
        let voted_members = read_members(&mut c.section_reader("voted")?)?;

        let mut r = c.section_reader("sweep")?;
        let nf = r.get_usize()?;
        let mut flags = Vec::with_capacity(nf.min(1 << 20));
        for _ in 0..nf {
            flags.push(match r.get_u8()? {
                0 => false,
                1 => true,
                b => return Err(SnapshotError::Malformed(format!("flag byte {b}"))),
            });
        }
        let nc = r.get_usize()?;
        let mut cascade_series = Vec::with_capacity(nc.min(1 << 20));
        for _ in 0..nc {
            cascade_series.push(narrow(r.get_usize()?, "cascade entry")?);
        }
        let ni = r.get_usize()?;
        let mut influence = Vec::with_capacity(ni.min(1 << 20));
        for _ in 0..ni {
            influence.push(narrow(r.get_usize()?, "influence entry")?);
        }

        // The series lengths are a pure function of votes_applied:
        // influence gets one entry per vote, flags/cascade one per
        // post-submitter vote.
        let post = votes_applied.saturating_sub(1);
        if influence.len() != votes_applied || flags.len() != post || cascade_series.len() != post {
            return Err(SnapshotError::Malformed(format!(
                "series lengths ({}, {}, {}) inconsistent with {votes_applied} applied votes",
                flags.len(),
                cascade_series.len(),
                influence.len()
            )));
        }
        if voted_members.len() > votes_applied {
            return Err(SnapshotError::Malformed(format!(
                "{} distinct voters from {votes_applied} applied votes",
                voted_members.len()
            )));
        }

        let mut reached = FanProbe::for_users(capacity);
        let mut voted = FanBitset::new(capacity);
        let mut voted_filter = [0u64; 8];
        for &u in &reached_members {
            reached.insert(u);
        }
        for &u in &voted_members {
            voted.insert(u);
            voted_filter[(u.index() >> 6) & 7] |= 1u64 << (u.index() & 63);
        }

        Ok(IncrementalSweep {
            reached,
            voted,
            voted_filter,
            out: StorySweep {
                flags,
                cascade: cascade_series,
                influence,
            },
            audience,
            cascade,
            fans1,
            votes_applied,
            // The decision-path cache is derived state; the next
            // streaming verdict rebuilds it with one tree walk.
            stream: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::fig5_predictor;
    use crate::story_metrics::StorySweeper;
    use social_graph::{GraphBuilder, SocialGraph};

    /// Fans: 0 <- {1, 2, 3}; 4 <- {5, 6}; 1 <- {2}.
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(7);
        for f in [1, 2, 3] {
            b.add_watch(UserId(f), UserId(0));
        }
        for f in [5, 6] {
            b.add_watch(UserId(f), UserId(4));
        }
        b.add_watch(UserId(2), UserId(1));
        b.build()
    }

    #[test]
    fn apply_vote_reports_running_counters() {
        let g = graph();
        let mut incr = IncrementalSweep::new(&g);
        incr.begin(&g);
        let a = incr.apply_vote(&g, UserId(0));
        assert_eq!(a.position, 0);
        assert_eq!(a.in_network, None);
        assert_eq!(a.cascade, 0);
        assert_eq!(a.influence, 3);
        let b = incr.apply_vote(&g, UserId(1));
        assert_eq!(b.in_network, Some(true));
        assert_eq!(b.cascade, 1);
        assert_eq!(b.influence, 2);
        let c = incr.apply_vote(&g, UserId(4));
        assert_eq!(c.in_network, Some(false));
        assert_eq!(c.cascade, 1);
        assert_eq!(c.influence, 4);
        assert_eq!(incr.votes_applied(), 3);
    }

    #[test]
    fn sweep_matches_batch_at_every_prefix() {
        let g = graph();
        let voters = [UserId(0), UserId(1), UserId(4), UserId(2), UserId(5)];
        let mut incr = IncrementalSweep::new(&g);
        let mut batch = StorySweeper::new(&g);
        incr.begin(&g);
        for (k, &v) in voters.iter().enumerate() {
            incr.apply_vote(&g, v);
            assert_eq!(
                incr.sweep(),
                batch.sweep(&g, &voters[..=k]),
                "prefix {}",
                k + 1
            );
        }
    }

    #[test]
    fn begin_resets_for_the_next_story() {
        let g = graph();
        let mut incr = IncrementalSweep::new(&g);
        incr.begin(&g);
        incr.apply_vote(&g, UserId(0));
        incr.apply_vote(&g, UserId(1));
        incr.begin(&g);
        assert_eq!(incr.votes_applied(), 0);
        let a = incr.apply_vote(&g, UserId(4));
        // No stale reached/voted state from the previous story.
        assert_eq!(a.influence, 2);
        let b = incr.apply_vote(&g, UserId(5));
        assert_eq!(b.in_network, Some(true));
    }

    #[test]
    fn features_need_the_ten_vote_window() {
        let mut b = GraphBuilder::new(40);
        for f in 1..=5 {
            b.add_watch(UserId(f), UserId(0));
        }
        let g = b.build();
        let mut incr = IncrementalSweep::new(&g);
        incr.begin(&g);
        for v in 0..11u32 {
            assert!(incr.features().is_none(), "at {v} votes");
            incr.apply_vote(&g, UserId(v));
        }
        let f = incr.features().expect("11 votes = 10 post-submitter");
        assert_eq!(f.v10, 5);
        assert_eq!(f.fans1, 5);
        assert_eq!(f.scraped_votes, 11);
        // Equal to the batch extraction on the same prefix.
        let record = digg_data::StoryRecord {
            story: digg_sim::StoryId(0),
            submitter: UserId(0),
            submitted_at: digg_sim::Minute(0),
            voters: (0..11).map(UserId).collect(),
            source: digg_data::SampleSource::FrontPage,
            final_votes: None,
        };
        assert_eq!(StoryFeatures::extract(&record, &g), Some(f));
    }

    #[test]
    fn snapshot_restore_resumes_mid_story_bit_identically() {
        let g = graph();
        let voters = [UserId(0), UserId(1), UserId(4), UserId(2), UserId(5)];
        // Stream two stories through one instance first so the epoch
        // counters are mid-flight, then checkpoint mid-story.
        let mut live = IncrementalSweep::new(&g);
        for _ in 0..2 {
            live.begin(&g);
            live.apply_vote(&g, UserId(0));
        }
        live.begin(&g);
        let mut straight = IncrementalSweep::new(&g);
        straight.begin(&g);
        for &v in &voters[..2] {
            live.apply_vote(&g, v);
            straight.apply_vote(&g, v);
        }
        let bytes = live.snapshot();
        let mut resumed = IncrementalSweep::restore(&bytes, ()).expect("restore");
        assert_eq!(resumed.snapshot(), bytes);
        for &v in &voters[2..] {
            let a = live.apply_vote(&g, v);
            let b = resumed.apply_vote(&g, v);
            let c = straight.apply_vote(&g, v);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        assert_eq!(live.sweep(), resumed.sweep());
        assert_eq!(live.sweep(), straight.sweep());
        assert_eq!(live.snapshot(), resumed.snapshot());
        // Epoch reuse must not leak into the bytes: the fresh instance
        // snapshots identically to the story-cycled one.
        assert_eq!(live.snapshot(), straight.snapshot());
    }

    #[test]
    fn restore_rejects_inconsistent_series() {
        let g = graph();
        let mut incr = IncrementalSweep::new(&g);
        incr.begin(&g);
        incr.apply_vote(&g, UserId(0));
        incr.apply_vote(&g, UserId(1));
        let bytes = incr.snapshot();
        // Rebuild the container with a forged state section claiming
        // zero applied votes; series lengths no longer line up.
        let c = digg_snapshot::SnapshotReader::parse(&bytes).unwrap();
        let mut forged = digg_snapshot::SnapshotWriter::new();
        for name in c.section_names() {
            if name == "state" {
                let mut w = ByteWriter::new();
                for _ in 0..5 {
                    w.put_usize(0);
                }
                forged.section(name, w.into_bytes());
            } else {
                forged.section(name, c.section(name).unwrap().to_vec());
            }
        }
        match IncrementalSweep::restore(&forged.finish(), ()) {
            Err(SnapshotError::Malformed(_)) => {}
            Err(other) => panic!("expected Malformed, got {other}"),
            Ok(_) => panic!("restore accepted inconsistent series"),
        }
    }

    #[test]
    fn verdict_tracks_the_fig5_rule() {
        let mut b = GraphBuilder::new(40);
        for f in 1..=5 {
            b.add_watch(UserId(f), UserId(0));
        }
        let g = b.build();
        let p = fig5_predictor();
        let mut incr = IncrementalSweep::new(&g);
        incr.begin(&g);
        for v in 0..10u32 {
            incr.apply_vote(&g, UserId(v));
            assert_eq!(incr.verdict(&p), None);
        }
        incr.apply_vote(&g, UserId(10));
        // v10 = 5 (fans 1..=5), fans1 = 5: v10 > 4, v10 <= 8,
        // fans1 <= 85 -> not interesting.
        assert_eq!(incr.verdict(&p), Some(false));
    }

    #[test]
    fn streaming_verdict_equals_fresh_verdict_at_every_vote() {
        let mut b = GraphBuilder::new(64);
        for f in 1..=5 {
            b.add_watch(UserId(f), UserId(0));
        }
        for f in 6..=9 {
            b.add_watch(UserId(f), UserId(1));
        }
        let g = b.build();
        let p = fig5_predictor();
        let mut incr = IncrementalSweep::new(&g);
        // Two stories through one instance: the decision-path cache
        // must reset at `begin`, not leak across stories.
        for story in 0..2u32 {
            incr.begin(&g);
            for v in 0..40u32 {
                incr.apply_vote(&g, UserId((v * 7 + story) % 64));
                assert_eq!(
                    incr.verdict_streaming(&p),
                    incr.verdict(&p),
                    "story {story}, vote {v}"
                );
            }
        }
    }
}
