//! The single-pass story-analytics engine.
//!
//! Every artifact in the paper reduces to one primitive: walk a
//! story's chronological voter list and track (a) which votes are
//! *in-network* — the voter was already reachable through the Friends
//! interface — and (b) the *influence*, the number of users who can
//! currently see the story through that interface. [`StorySweeper`]
//! computes both, plus the cumulative cascade and everything the
//! `(v_n, fans1)` feature vector needs, in **one pass costing O(total
//! fan degree of the voters)** with zero per-story allocation (scratch
//! is epoch-stamped and reused).
//!
//! The identities that make one pass sufficient, with `reached` = the
//! union of the fans of voters so far and `voted` = the voters so far:
//!
//! * vote `k` (k ≥ 1) is in-network  ⇔  `voters[k] ∈ reached` just
//!   before it is processed (being a fan of a prior voter *is* being
//!   in that union);
//! * influence after `k + 1` voters = `|reached \ voted|`, which a
//!   counter maintains incrementally: `+1` for each newly reached
//!   non-voter, `-1` when a reached user votes.
//!
//! [`crate::cascade`], [`crate::influence`], [`crate::spread`] and
//! [`crate::features`] are thin views over this engine; experiments
//! hold one [`StorySweeper`] per worker thread and stream stories
//! through it.

use crate::incremental::IncrementalSweep;
use social_graph::{FanView, UserId};

/// Reusable sweep engine. Construct once per thread (scratch size is
/// the graph's user count) and call [`StorySweeper::sweep`] per story.
///
/// A thin replay over [`IncrementalSweep`]: a sweep is `begin` plus
/// one `apply_vote` per voter, so the batch and per-vote paths share
/// one implementation and cannot drift — the outputs are structurally
/// identical, not merely tested equal.
#[derive(Debug, Clone)]
pub struct StorySweeper {
    incr: IncrementalSweep,
}

/// The per-story result of one sweep. Borrowed from the sweeper; copy
/// out what must outlive the next call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorySweep {
    pub(crate) flags: Vec<bool>,
    /// Structure-of-arrays columns: `u32` per entry, half the memory
    /// traffic of `usize` on the per-vote push path (values are
    /// bounded by the u32 user count / vote count).
    pub(crate) cascade: Vec<u32>,
    pub(crate) influence: Vec<u32>,
}

impl StorySweeper {
    /// A sweeper sized for `graph`.
    pub fn new<G: FanView>(graph: &G) -> StorySweeper {
        StorySweeper::for_users(graph.user_count())
    }

    /// A sweeper covering users `0..n`.
    pub fn for_users(n: usize) -> StorySweeper {
        StorySweeper {
            incr: IncrementalSweep::for_users(n),
        }
    }

    /// Sweep one story's chronological voter list (submitter first).
    /// O(Σ fan-degree of voters); no allocation once the output
    /// vectors have grown to the story size.
    pub fn sweep<G: FanView>(&mut self, graph: &G, voters: &[UserId]) -> &StorySweep {
        self.incr.begin(graph);
        self.incr.reserve_votes(voters.len());
        for &v in voters {
            self.incr.apply_vote(graph, v);
        }
        self.incr.sweep()
    }
}

impl StorySweep {
    /// Per post-submitter vote, whether it was in-network; aligned
    /// with `voters[1..]` (the layout of
    /// [`crate::cascade::in_network_flags`]).
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Cumulative in-network counts; entry `k` is the cascade size
    /// after `k + 1` post-submitter votes. `u32` entries — the SoA
    /// column layout; widen at the consumer when a `usize` is needed.
    pub fn cascade(&self) -> &[u32] {
        &self.cascade
    }

    /// Influence after each voter; entry `k` is the Friends-interface
    /// audience after `k + 1` voters (submitter included). `u32`
    /// entries, as [`StorySweep::cascade`].
    pub fn influence(&self) -> &[u32] {
        &self.influence
    }

    /// Number of post-submitter votes swept.
    pub fn post_submitter_votes(&self) -> usize {
        self.flags.len()
    }

    /// The paper's `v_n`: in-network votes among the first `n`
    /// post-submitter votes (all of them if the story is shorter).
    pub fn in_network_count_within(&self, n: usize) -> usize {
        match n.min(self.cascade.len()) {
            0 => 0,
            m => self.cascade[m - 1] as usize,
        }
    }

    /// Influence after the first `k` voters, `k` clamped to the list
    /// length; 0 when `k == 0` or the story has no voters.
    pub fn influence_after(&self, k: usize) -> usize {
        match k.min(self.influence.len()) {
            0 => 0,
            m => self.influence[m - 1] as usize,
        }
    }

    /// Final cascade size (all post-submitter votes).
    pub fn final_cascade(&self) -> usize {
        self.cascade.last().copied().unwrap_or(0) as usize
    }
}

// The deterministic fan-out primitives (`worker_threads`, `chunk_size`,
// `par_map`, `par_fold`, and the fallible `try_par_map`/`try_par_join`
// layer) moved to `des-core::par` so the scenario-sweep runner in
// `digg-sim` can share them; re-exported here so every existing
// `digg_core::{par_map, worker_threads, …}` path keeps working.
// `DIGG_THREADS` is parsed in exactly one place: des-core.
pub use des_core::par::{
    chunk_size, panic_message, par_fold, par_join, par_map, try_par_join, try_par_map,
    try_par_map_with, worker_threads, PanicShard, WorkerPanic,
};

/// Fallible [`sweep_map`]: identical chunking, per-thread sweepers and
/// output order, but a panic inside a worker is caught per shard —
/// every other shard still runs to completion and the failures come
/// back aggregated as one [`WorkerPanic`] naming each failed shard's
/// item range. With no panic the result is bit-identical to
/// [`sweep_map`] at any thread count.
///
/// This is [`try_par_map_with`] with a per-worker [`StorySweeper`]:
/// the sweeper is epoch-stamped scratch, so reusing it across a
/// shard's stories cannot leak state between items — the precondition
/// that keeps `try_par_map_with` thread-count invariant.
pub fn try_sweep_map<G, T, R, F>(
    graph: &G,
    items: &[T],
    threads: usize,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    G: FanView + Sync,
    T: Sync,
    R: Send,
    F: Fn(&mut StorySweeper, &T) -> R + Sync,
{
    try_par_map_with(items, threads, || StorySweeper::new(graph), f)
}

/// [`par_map`] handing each worker thread its own [`StorySweeper`]
/// sized for `graph` — the batch path for per-story analytics: one
/// voter walk per story, one scratch buffer per thread, zero per-story
/// allocation.
///
/// Layered on [`try_sweep_map`]: a worker panic (a bug in `f`) is
/// re-raised here with the aggregated shard report.
pub fn sweep_map<G, T, R, F>(graph: &G, items: &[T], threads: usize, f: F) -> Vec<R>
where
    G: FanView + Sync,
    T: Sync,
    R: Send,
    F: Fn(&mut StorySweeper, &T) -> R + Sync,
{
    match try_sweep_map(graph, items, threads, f) {
        Ok(out) => out,
        // digg-lint: allow(no-lib-unwrap) — infallible-layer contract: re-raise the aggregated WorkerPanic for fail-fast callers
        Err(e) => panic!("worker thread panicked: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use social_graph::{GraphBuilder, SocialGraph};

    /// Fans: 0 <- {1, 2, 3}; 4 <- {5, 6}; 1 <- {2}.
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(7);
        for f in [1, 2, 3] {
            b.add_watch(UserId(f), UserId(0));
        }
        for f in [5, 6] {
            b.add_watch(UserId(f), UserId(4));
        }
        b.add_watch(UserId(2), UserId(1));
        b.build()
    }

    #[test]
    fn sweep_produces_all_three_series() {
        let g = graph();
        let mut sweeper = StorySweeper::new(&g);
        // Submitter 0; fan 1 votes (in-network, audience shrinks),
        // then the unconnected 4 (out-of-network, brings fans 5, 6).
        let s = sweeper.sweep(&g, &[UserId(0), UserId(1), UserId(4)]);
        assert_eq!(s.flags(), &[true, false]);
        assert_eq!(s.cascade(), &[1, 1]);
        assert_eq!(s.influence(), &[3, 2, 4]);
        assert_eq!(s.post_submitter_votes(), 2);
        assert_eq!(s.final_cascade(), 1);
    }

    #[test]
    fn window_and_clamp_helpers() {
        let g = graph();
        let mut sweeper = StorySweeper::new(&g);
        let s = sweeper.sweep(&g, &[UserId(0), UserId(1), UserId(4), UserId(2)]);
        assert_eq!(s.in_network_count_within(0), 0);
        assert_eq!(s.in_network_count_within(1), 1);
        assert_eq!(s.in_network_count_within(3), 2);
        assert_eq!(s.in_network_count_within(99), 2);
        assert_eq!(s.influence_after(0), 0);
        assert_eq!(s.influence_after(1), 3);
        assert_eq!(s.influence_after(99), s.influence()[3] as usize);
    }

    #[test]
    fn sweeper_reuse_is_clean_across_stories() {
        let g = graph();
        let mut sweeper = StorySweeper::new(&g);
        let first = sweeper.sweep(&g, &[UserId(0), UserId(1)]).clone();
        // A completely different story must not see stale epochs.
        let second = sweeper.sweep(&g, &[UserId(4), UserId(5)]).clone();
        assert_eq!(second.flags(), &[true]);
        assert_eq!(second.influence(), &[2, 1]);
        // And re-sweeping the first story reproduces it exactly.
        assert_eq!(sweeper.sweep(&g, &[UserId(0), UserId(1)]), &first);
    }

    #[test]
    fn empty_and_singleton_stories() {
        let g = graph();
        let mut sweeper = StorySweeper::new(&g);
        let s = sweeper.sweep(&g, &[]);
        assert!(s.flags().is_empty());
        assert!(s.influence().is_empty());
        assert_eq!(s.influence_after(5), 0);
        let s = sweeper.sweep(&g, &[UserId(0)]);
        assert_eq!(s.influence(), &[3]);
        assert!(s.flags().is_empty());
    }

    #[test]
    fn duplicate_voters_do_not_double_count() {
        let g = graph();
        let mut sweeper = StorySweeper::new(&g);
        let s = sweeper.sweep(&g, &[UserId(0), UserId(1), UserId(1)]);
        // Second vote by 1 is still "in-network" (1 is a fan of a
        // prior voter) but audience no longer changes.
        assert_eq!(s.flags(), &[true, true]);
        assert_eq!(s.influence(), &[3, 2, 2]);
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        let items: Vec<u64> = (0..103).collect();
        let serial = par_map(&items, 1, |&x| x * x + 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |&x| x * x + 1), serial);
        }
        assert!(par_map(&[] as &[u64], 4, |&x| x).is_empty());
    }

    #[test]
    fn sweep_map_matches_serial_sweeps() {
        let g = graph();
        let stories: Vec<Vec<UserId>> = vec![
            vec![UserId(0), UserId(1), UserId(4)],
            vec![UserId(4), UserId(5)],
            vec![UserId(0)],
            vec![],
            vec![UserId(2), UserId(0), UserId(1), UserId(3)],
        ];
        let mut sweeper = StorySweeper::new(&g);
        let serial: Vec<StorySweep> = stories
            .iter()
            .map(|v| sweeper.sweep(&g, v).clone())
            .collect();
        for threads in [1, 2, 8] {
            let par = sweep_map(&g, &stories, threads, |sw, v| sw.sweep(&g, v).clone());
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn try_sweep_map_is_bit_identical_without_panics() {
        let g = graph();
        let stories: Vec<Vec<UserId>> = (0..11)
            .map(|i| vec![UserId(i % 7), UserId((i + 1) % 7)])
            .collect();
        let serial = sweep_map(&g, &stories, 1, |sw, v| sw.sweep(&g, v).clone());
        for threads in [1, 2, 8] {
            let fallible = try_sweep_map(&g, &stories, threads, |sw, v| sw.sweep(&g, v).clone());
            assert_eq!(fallible.as_ref().ok(), Some(&serial), "threads={threads}");
        }
    }

    #[test]
    fn try_sweep_map_isolates_a_poisoned_story() {
        let g = graph();
        let stories: Vec<Vec<UserId>> = (0..24)
            .map(|i| vec![UserId(i % 7), UserId((i + 1) % 7)])
            .collect();
        for threads in [1, 2, 8] {
            let err = try_sweep_map(&g, &stories, threads, |sw, v| {
                if v[0] == UserId(5) && v[1] == UserId(6) {
                    panic!("poisoned story");
                }
                sw.sweep(&g, v).clone()
            })
            .unwrap_err();
            assert!(!err.failed.is_empty());
            assert!(err.to_string().contains("poisoned story"));
            // Item 5 (and 12, 19) are the poisoned ones; every failed
            // shard must actually contain one of them.
            for s in &err.failed {
                assert!((s.start..s.start + s.len).any(|i| i % 7 == 5));
            }
        }
    }

    #[test]
    fn par_fold_merges_in_chunk_order() {
        let items: Vec<u32> = (0..57).collect();
        let serial: Vec<u32> = items.clone();
        for threads in [1, 2, 5, 16] {
            let folded = par_fold(
                &items,
                threads,
                Vec::new,
                |acc: &mut Vec<u32>, &x| acc.push(x),
                |acc, part| acc.extend(part),
            );
            assert_eq!(folded, serial, "threads={threads}");
        }
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
