//! §5.2 — predicting interestingness on the upcoming-queue holdout.
//!
//! Paper: of 900 upcoming stories, keep those submitted by top users
//! (rank ≤ 100) with at least 10 votes — 48 stories. The classifier
//! scores TP=4 TN=32 FP=11 FN=1. On the 14 stories Digg promoted, only
//! 5 proved interesting (P = 0.36); of the classifier's 7 positives
//! among them, 4 proved interesting (P = 0.57).

use crate::pipeline::{run_pipeline, PipelineConfig, PipelineResult, StoryPrefixes};
use crate::predictor::InterestingnessPredictor;
use digg_data::synth::Synthesis;
use digg_data::StoryRecord;
use serde::{Deserialize, Serialize};
use social_graph::SocialGraph;

/// The experiment's result: the pipeline output plus paper targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionResult {
    /// Full pipeline output.
    pub pipeline: PipelineResult,
}

impl PredictionResult {
    /// Did the classifier beat the promoter on precision over the
    /// promoted subset (the paper's headline comparison)?
    pub fn classifier_beats_digg(&self) -> Option<bool> {
        Some(self.pipeline.classifier_precision()? > self.pipeline.digg_precision()?)
    }

    /// Render the §5.2 table.
    pub fn render(&self) -> String {
        let p = &self.pipeline;
        format!(
            "Prediction (paper 5.2)\n  training stories: {} (paper 207)\n  10-fold CV: {}/{} correct (paper 174/207)\n  holdout stories: {} (paper 48)\n  holdout: {} (paper TP=4 TN=32 FP=11 FN=1)\n  promoted by platform: {} of which interesting {} -> precision {} (paper 14, 5, 0.36)\n  classifier positives on promoted: {} of which interesting {} -> precision {} (paper 7, 4, 0.57)\n  tree:\n{}",
            p.training_stories,
            p.cv_correct,
            p.cv_correct + p.cv_errors,
            p.holdout_stories,
            p.holdout,
            p.digg_promoted,
            p.digg_promoted_interesting,
            p.digg_precision()
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            p.classifier_positive_on_promoted,
            p.classifier_correct_on_promoted,
            p.classifier_precision()
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            p.tree_text
                .lines()
                .map(|l| format!("    {l}\n"))
                .collect::<String>(),
        )
    }
}

/// The predictor's verdict at every decidable vote prefix of one
/// story: `(k, verdict)` for each `k` from the earliest observation
/// window (11 voters: submitter + 10 votes) through the full scraped
/// list. **One sweep total** — prefixes are read off a
/// [`StoryPrefixes`] in O(1) each, never re-swept. Empty when the
/// story lacks the window.
///
/// This is the live-queue question the batch pipeline cannot ask:
/// *when* does the verdict become available, and does it hold as the
/// remaining early votes arrive?
pub fn prefix_verdicts(
    record: &StoryRecord,
    graph: &SocialGraph,
    predictor: &InterestingnessPredictor,
) -> Vec<(usize, bool)> {
    let prefixes = StoryPrefixes::compute(record, graph);
    (11..=record.voters.len())
        .filter_map(|k| {
            prefixes
                .features_at(k)
                .map(|f| (k, predictor.predict_features(&f)))
        })
        .collect()
}

/// Run §5.2 over a synthesis, taking "the platform promoted it" from
/// simulator ground truth (the paper observed it from Digg's front
/// page in its Feb-2008 pass).
pub fn run(synthesis: &Synthesis, cfg: &PipelineConfig) -> Option<PredictionResult> {
    let sim = &synthesis.sim;
    let pipeline = run_pipeline(&synthesis.dataset, cfg, &|record| {
        sim.story(record.story).is_front_page()
    })?;
    Some(PredictionResult { pipeline })
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::scrape::ScrapeConfig;
    use digg_data::synth::{synthesize_with, SynthConfig};
    use digg_sim::population::{Population, PopulationConfig};
    use digg_sim::time::DAY;
    use digg_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_synthesis() -> Synthesis {
        let cfg = SynthConfig {
            seed: 9,
            scrape: ScrapeConfig {
                front_page_stories: 40,
                upcoming_stories: 120,
                top_users: 150,
                network_cutoff: 1000,
                network_scraped: 1600,
                ..ScrapeConfig::default()
            },
            min_promotions: 20,
            min_scrape_days: 0,
            saturation_days: 1,
            max_minutes: 3 * DAY,
        };
        let sim_cfg = SimConfig::toy(9);
        let mut rng = StdRng::seed_from_u64(9);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(sim_cfg.users));
        synthesize_with(&cfg, sim_cfg, pop)
    }

    #[test]
    fn prefix_verdicts_match_truncated_prediction() {
        use crate::predictor::fig5_predictor;
        use digg_data::SampleSource;
        use digg_sim::{Minute, StoryId};
        use social_graph::{GraphBuilder, UserId};

        let mut b = GraphBuilder::new(60);
        for f in 1..=8 {
            b.add_watch(UserId(f), UserId(0));
        }
        let g = b.build();
        let record = StoryRecord {
            story: StoryId(0),
            submitter: UserId(0),
            submitted_at: Minute(0),
            // Fans 1..=8 vote first, then outsiders: v10 crosses the
            // fig5 thresholds as the prefix grows.
            voters: (0..16u32).map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: None,
        };
        let p = fig5_predictor();
        let verdicts = prefix_verdicts(&record, &g, &p);
        assert_eq!(verdicts.len(), 16 - 10);
        for (k, verdict) in verdicts {
            let mut truncated = record.clone();
            truncated.voters.truncate(k);
            assert_eq!(p.predict(&truncated, &g), Some(verdict), "prefix {k}");
        }
        // Too short for any verdict: empty, not a panic.
        let mut short = record.clone();
        short.voters.truncate(8);
        assert!(prefix_verdicts(&short, &g, &p).is_empty());
    }

    #[test]
    fn prediction_runs_on_toy_synthesis() {
        let s = toy_synthesis();
        // The toy platform promotes at 10 votes and almost everything
        // is "interesting" by vote count quickly; loosen the pipeline
        // filters so a holdout exists.
        let cfg = PipelineConfig {
            threshold: 30,
            top_user_rank: 150,
            min_votes: 3,
            cv_folds: 5,
            ..PipelineConfig::default()
        };
        let Some(result) = run(&s, &cfg) else {
            // Small toy runs may legitimately produce no holdout; the
            // full-scale integration test covers the real path.
            return;
        };
        let p = &result.pipeline;
        assert!(p.training_stories > 0);
        assert_eq!(
            p.holdout.total(),
            p.holdout_stories,
            "confusion matrix accounts for every holdout story"
        );
        assert!(p.digg_promoted <= p.holdout_stories);
        assert!(p.classifier_positive_on_promoted <= p.digg_promoted);
        assert!(result.render().contains("Prediction"));
    }
}
