//! §3 in-text statistics.
//!
//! The paper anchors its platform description with several hard
//! numbers; this experiment reproduces each one from the synthesized
//! dataset / simulation:
//!
//! * "1-2 new submissions every minute" / "more than 1500 daily";
//! * "we did not see any front-page stories with fewer than 43 votes,
//!   nor … any stories in the upcoming queue with more than 42";
//! * "information about votes from over 16,600 distinct users"
//!   (population-scaled at our 25k-user scale);
//! * "the top 3% of the users were responsible for 35% of the
//!   submissions" (within the top-1000 users' front-page stories);
//! * top users "tended to have more friends and fans than other
//!   users".

use digg_data::synth::Synthesis;
use digg_data::validate::{stats, validate, DatasetStats, Violation};
use serde::{Deserialize, Serialize};

/// The reproduced in-text statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InTextResult {
    /// Mean submissions per minute across the run (paper: 1-2).
    pub submissions_per_minute: f64,
    /// Submissions per day (paper: > 1500).
    pub submissions_per_day: f64,
    /// Promotions per day.
    pub promotions_per_day: f64,
    /// Minimum scraped votes over front-page records (paper: 43).
    pub min_front_page_votes: usize,
    /// Maximum scraped votes over upcoming records (paper: 42).
    pub max_upcoming_votes: usize,
    /// Minimum votes any story had *at the moment of promotion*
    /// (ground truth; the platform's boundary, paper: 43).
    pub min_votes_at_promotion: usize,
    /// Distinct voters in the dataset (paper: 16,600 at ~8x our
    /// population scale).
    pub distinct_voters: usize,
    /// Share of top-1000-user front-page submissions held by the top
    /// 3% of those users (paper: 0.35).
    pub top3_submission_share: f64,
    /// Dataset-level shape statistics.
    pub dataset: DatasetStats,
    /// 95% bootstrap CI for the fraction of front-page stories below
    /// 500 final votes.
    pub below_500_ci: Option<(f64, f64)>,
    /// 95% bootstrap CI for the fraction above 1500.
    pub above_1500_ci: Option<(f64, f64)>,
    /// Structural violations (must be empty).
    pub violations: Vec<String>,
}

/// Run the experiment.
pub fn run(synthesis: &Synthesis, promotion_threshold: usize) -> InTextResult {
    run_with(
        synthesis,
        promotion_threshold,
        crate::story_metrics::worker_threads(),
    )
}

/// [`run`] with an explicit worker-thread count (per-story ground
/// truth scans fan out; every aggregate is merged in story order).
pub fn run_with(synthesis: &Synthesis, promotion_threshold: usize, threads: usize) -> InTextResult {
    let ds = &synthesis.dataset;
    let m = synthesis.sim.metrics();
    let min_fp = ds
        .front_page
        .iter()
        .map(|r| r.voters.len())
        .min()
        .unwrap_or(0);
    let max_up = ds
        .upcoming
        .iter()
        .map(|r| r.voters.len())
        .max()
        .unwrap_or(0);
    let min_at_promotion = crate::story_metrics::par_map(synthesis.sim.stories(), threads, |s| {
        let t = s.promoted_at()?;
        Some(s.votes.iter().filter(|v| v.at <= t).count())
    })
    .into_iter()
    .flatten()
    .min()
    .unwrap_or(0);

    // Top-1000 concentration: submissions on the front page by the
    // top-1000 ranked users, share held by the top 3% (top 30).
    // HashMap is safe here (determinism audit, DESIGN.md §13): it is
    // only probed by key in `top_users` rank order; the integer sums
    // below are iteration-order independent.
    let mut sub_counts: std::collections::HashMap<u32, usize> = Default::default();
    for r in &ds.front_page {
        sub_counts
            .entry(r.submitter.0)
            .and_modify(|c| *c += 1)
            .or_insert(1);
    }
    let top1000: Vec<u32> = ds.top_users.iter().take(1000).map(|u| u.0).collect();
    let top30: std::collections::HashSet<u32> = top1000.iter().take(30).copied().collect();
    let total_by_top1000: usize = top1000.iter().filter_map(|u| sub_counts.get(u)).sum();
    let by_top30: usize = top30.iter().filter_map(|u| sub_counts.get(u)).sum();
    let top3_share = if total_by_top1000 == 0 {
        0.0
    } else {
        by_top30 as f64 / total_by_top1000 as f64
    };

    let violations: Vec<String> = validate(ds, promotion_threshold)
        .into_iter()
        .map(|v: Violation| v.to_string())
        .collect();

    // Sampling uncertainty of the headline fractions (the paper's
    // ~200-story sample carries real noise; so does ours).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC1);
    let finals: Vec<f64> = ds
        .front_page
        .iter()
        .filter_map(|r| r.final_votes)
        .map(f64::from)
        .collect();
    let mut ci = |pred: &dyn Fn(f64) -> bool| {
        let ind: Vec<f64> = finals
            .iter()
            .map(|&v| if pred(v) { 1.0 } else { 0.0 })
            .collect();
        digg_stats::bootstrap::fraction_ci(&mut rng, &ind, 1000, 0.95).map(|i| (i.lo, i.hi))
    };
    let below_500_ci = ci(&|v| v < 500.0);
    let above_1500_ci = ci(&|v| v > 1500.0);

    InTextResult {
        submissions_per_minute: m.submissions as f64 / m.minutes.max(1) as f64,
        submissions_per_day: m.submissions_per_day(),
        promotions_per_day: m.promotions_per_day(),
        min_front_page_votes: min_fp,
        max_upcoming_votes: max_up,
        min_votes_at_promotion: min_at_promotion,
        distinct_voters: ds.distinct_voters(),
        top3_submission_share: top3_share,
        dataset: stats(ds),
        below_500_ci,
        above_1500_ci,
        violations,
    }
}

impl InTextResult {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        format!(
            "In-text statistics (paper section 3)\n  submissions/minute: {:.2} (paper 1-2)\n  submissions/day: {:.0} (paper >1500)\n  promotions/day: {:.1}\n  min front-page votes at scrape: {} (paper: none below 43)\n  max upcoming votes: {} (paper 42)\n  min votes at promotion (ground truth): {} (paper boundary 43)\n  distinct voters: {} (paper 16,600 at ~8x population)\n  top-3% share of top-1000 front-page submissions: {:.2} (paper 0.35)\n  fp below 500 votes: {:.2} {} (paper ~0.20)   above 1500: {:.2} {} (paper ~0.20)\n  poorly connected fp submitters: {:.2} (paper ~0.5+)\n  structural violations: {}\n",
            self.submissions_per_minute,
            self.submissions_per_day,
            self.promotions_per_day,
            self.min_front_page_votes,
            self.max_upcoming_votes,
            self.min_votes_at_promotion,
            self.distinct_voters,
            self.top3_submission_share,
            self.dataset.fp_below_500,
            fmt_ci(self.below_500_ci),
            self.dataset.fp_above_1500,
            fmt_ci(self.above_1500_ci),
            self.dataset.fp_poorly_connected_submitters,
            if self.violations.is_empty() {
                "none".to_string()
            } else {
                format!("{:?}", self.violations)
            },
        )
    }
}

fn fmt_ci(ci: Option<(f64, f64)>) -> String {
    match ci {
        Some((lo, hi)) => format!("[{lo:.2}, {hi:.2}]"),
        None => "[-]".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::scrape::ScrapeConfig;
    use digg_data::synth::{synthesize_with, SynthConfig};
    use digg_sim::population::{Population, PopulationConfig};
    use digg_sim::time::DAY;
    use digg_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn intext_runs_on_toy_synthesis() {
        let cfg = SynthConfig {
            seed: 4,
            scrape: ScrapeConfig {
                front_page_stories: 20,
                upcoming_stories: 60,
                top_users: 100,
                network_cutoff: 1000,
                network_scraped: 1600,
                ..ScrapeConfig::default()
            },
            min_promotions: 10,
            min_scrape_days: 0,
            saturation_days: 1,
            max_minutes: 3 * DAY,
        };
        let sim_cfg = SimConfig::toy(4);
        let mut rng = StdRng::seed_from_u64(4);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(sim_cfg.users));
        let synthesis = synthesize_with(&cfg, sim_cfg, pop);
        let r = run(&synthesis, 10); // toy promotion threshold
        assert!(r.submissions_per_minute > 0.0);
        assert!(
            r.min_front_page_votes >= 10,
            "boundary: {}",
            r.min_front_page_votes
        );
        assert!(r.max_upcoming_votes < 10);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert!(r.distinct_voters > 0);
        assert!(r.render().contains("In-text statistics"));
    }
}
