//! The paper's final (unnumbered) figure: `friends + 1` vs `fans + 1`
//! on log-log axes, for all users and for top users.
//!
//! The visual claims: both quantities are heavy-tailed, correlated,
//! and the top users occupy the upper-right corner (more friends *and*
//! more fans than the population at large).

use crate::story_metrics::{par_map, worker_threads};
use digg_data::DiggDataset;
use digg_stats::correlation::spearman;
use digg_stats::fit::{fit_best_xmin, PowerLawFit};
use serde::{Deserialize, Serialize};
use social_graph::UserId;

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScatterResult {
    /// `(friends+1, fans+1)` for every user.
    pub all_users: Vec<(f64, f64)>,
    /// Same, restricted to the top-user list.
    pub top_users: Vec<(f64, f64)>,
    /// Rank correlation between friends and fans over all users.
    pub spearman: Option<f64>,
    /// Power-law fit of the fan-count tail.
    pub fan_tail: Option<SerializableFit>,
    /// Median fans+1 of top users vs everyone (dominance check).
    pub top_median_fans: f64,
    /// Median fans+1 over all users.
    pub all_median_fans: f64,
}

/// Serializable clone of [`PowerLawFit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SerializableFit {
    /// Estimated exponent.
    pub alpha: f64,
    /// Fitted cutoff.
    pub xmin: u64,
    /// Tail size.
    pub n_tail: usize,
    /// KS distance.
    pub ks: f64,
}

impl From<PowerLawFit> for SerializableFit {
    fn from(f: PowerLawFit) -> SerializableFit {
        SerializableFit {
            alpha: f.alpha,
            xmin: f.xmin,
            n_tail: f.n_tail,
            ks: f.ks,
        }
    }
}

/// Run the experiment over the scraped network, marking the first
/// `top_k` ranked users as "top".
pub fn run(ds: &DiggDataset, top_k: usize) -> ScatterResult {
    run_with(ds, top_k, worker_threads())
}

/// [`run`] with an explicit worker-thread count: per-user degree
/// lookups fan out in user-id order, matching
/// [`social_graph::metrics::friends_fans_scatter`] exactly.
pub fn run_with(ds: &DiggDataset, top_k: usize, threads: usize) -> ScatterResult {
    let g = &ds.network;
    let ids: Vec<UserId> = g.users().collect();
    let all_users: Vec<(f64, f64)> = par_map(&ids, threads, |&u| {
        (g.friend_count(u) as f64 + 1.0, g.fan_count(u) as f64 + 1.0)
    });
    let fans: Vec<u64> = par_map(&ids, threads, |&u| g.fan_count(u) as u64);
    let top: Vec<(f64, f64)> = ds
        .top_users
        .iter()
        .take(top_k)
        .map(|&u| (g.friend_count(u) as f64 + 1.0, g.fan_count(u) as f64 + 1.0))
        .collect();
    let xs: Vec<f64> = all_users.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = all_users.iter().map(|p| p.1).collect();
    let fan_tail = fit_best_xmin(&fans, &[2, 3, 5, 10, 20]).map(Into::into);
    let median = |v: &[(f64, f64)]| {
        let fans: Vec<f64> = v.iter().map(|p| p.1).collect();
        digg_stats::descriptive::median(&fans).unwrap_or(0.0)
    };
    ScatterResult {
        spearman: spearman(&xs, &ys),
        fan_tail,
        top_median_fans: median(&top),
        all_median_fans: median(&all_users),
        all_users,
        top_users: top,
    }
}

impl ScatterResult {
    /// Top users dominate the fan axis.
    pub fn top_users_dominate(&self) -> bool {
        self.top_median_fans > self.all_median_fans
    }

    /// Render the log-log scatter plus the summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Friends vs fans scatter ({} users, {} top users)\n  spearman(friends, fans) = {}\n  median fans+1: top {:.0} vs all {:.1}\n",
            self.all_users.len(),
            self.top_users.len(),
            self.spearman
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            self.top_median_fans,
            self.all_median_fans,
        );
        if let Some(f) = self.fan_tail {
            out.push_str(&format!(
                "  fan-count tail: alpha {:.2} (xmin {}, n {}, KS {:.3})\n",
                f.alpha, f.xmin, f.n_tail, f.ks
            ));
        }
        out.push_str(&digg_stats::ascii::loglog_scatter(&self.all_users, 64, 18));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_sim::Minute;
    use social_graph::{GraphBuilder, UserId};

    fn ds() -> DiggDataset {
        let mut b = GraphBuilder::new(200);
        // User 0: hub with many fans and friends.
        for f in 1..=50 {
            b.add_watch(UserId(f), UserId(0));
        }
        for w in 51..=90 {
            b.add_watch(UserId(0), UserId(w));
        }
        // A spread of small users.
        for u in 1..40u32 {
            b.add_watch(UserId(u), UserId(u + 1));
        }
        let network = b.build();
        let top_users = network.users_by_fans_desc();
        DiggDataset {
            scraped_at: Minute(0),
            front_page: vec![],
            upcoming: vec![],
            network,
            top_users,
        }
    }

    #[test]
    fn scatter_covers_everyone() {
        let r = run(&ds(), 10);
        assert_eq!(r.all_users.len(), 200);
        assert_eq!(r.top_users.len(), 10);
        // Axes offset by one: minimum is exactly 1.
        assert!(r.all_users.iter().all(|&(f, fa)| f >= 1.0 && fa >= 1.0));
    }

    #[test]
    fn top_users_sit_high_on_fan_axis() {
        let r = run(&ds(), 10);
        assert!(r.top_users_dominate());
        assert_eq!(r.top_users[0].1, 51.0); // hub: 50 fans + 1
    }

    #[test]
    fn render_smoke() {
        let text = run(&ds(), 5).render();
        assert!(text.contains("Friends vs fans"));
        assert!(text.contains("median fans+1"));
    }
}
