//! Fig. 3 — "Spread of interest in stories".
//!
//! (a) Histogram of story *influence* (users who can see the story
//! through the Friends interface) at submission, after 10 votes, and
//! after 20 votes. Paper checkpoints: slightly more than half the
//! stories are submitted by users with fewer than ten fans; after 10
//! votes almost half the stories are visible to at least 200 users;
//! after 30 votes every story is visible to at least ten users.
//!
//! (b) Histogram of *cascade size* (in-network votes) within the first
//! 10, 20 and 30 votes. Paper checkpoints: 30% of stories have at
//! least half of their first 10 votes in-network; 28% have ≥10
//! in-network within 20 votes; 36% have ≥10 within 30.

use crate::story_metrics::{sweep_map, worker_threads};
use digg_data::DiggDataset;
use digg_stats::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// One checkpoint's histogram plus raw values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Label, e.g. "after 10 votes".
    pub label: String,
    /// Raw per-story values.
    pub values: Vec<u64>,
    /// `(bin_center, count)` series.
    pub series: Vec<(f64, u64)>,
}

impl Checkpoint {
    fn new(label: &str, values: Vec<u64>, lo: f64, hi: f64, bins: usize) -> Checkpoint {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let hist = Histogram::of(lo, hi, bins, &floats);
        Checkpoint {
            label: label.to_string(),
            values,
            series: hist.series(),
        }
    }

    /// Fraction of stories with value at least `x`.
    pub fn fraction_at_least(&self, x: u64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v >= x).count() as f64 / self.values.len() as f64
    }

    /// Fraction with value strictly below `x`.
    pub fn fraction_below(&self, x: u64) -> f64 {
        1.0 - self.fraction_at_least(x)
    }
}

/// Fig. 3(a): influence checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3aResult {
    /// At submission / after 10 votes / after 20 votes.
    pub checkpoints: Vec<Checkpoint>,
    /// Fraction of stories whose submitter has < 10 fans
    /// (paper: slightly over half).
    pub poorly_connected_submitters: f64,
    /// Fraction visible to ≥ 200 users after ten votes (paper: almost
    /// half).
    pub visible_200_after_10: f64,
}

/// Fig. 3(b): cascade checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3bResult {
    /// After 10 / 20 / 30 votes.
    pub checkpoints: Vec<Checkpoint>,
    /// Fraction with ≥ 5 in-network among the first 10 votes
    /// (paper: 0.30).
    pub half_in_network_at_10: f64,
    /// Fraction with ≥ 10 in-network within 20 votes (paper: 0.28).
    pub ten_in_network_at_20: f64,
    /// Fraction with ≥ 10 in-network within 30 votes (paper: 0.36).
    pub ten_in_network_at_30: f64,
}

/// Run Fig. 3(a) over the front-page sample.
pub fn run_a(ds: &DiggDataset) -> Fig3aResult {
    run_a_with(ds, worker_threads())
}

/// [`run_a`] with an explicit worker-thread count. One sweep per story
/// yields all three influence checkpoints (the trajectory is a prefix
/// property, so later voters cannot change an earlier checkpoint).
pub fn run_a_with(ds: &DiggDataset, threads: usize) -> Fig3aResult {
    let g = &ds.network;
    let rows = sweep_map(g, &ds.front_page, threads, |sw, r| {
        // Checkpoints are prefix properties: voters beyond the last
        // checkpoint (submitter + 20) cannot change them.
        let s = sw.sweep(g, &r.voters[..r.voters.len().min(21)]);
        // Paper counts "after it received ten votes": submitter + 10.
        (
            s.influence_after(1) as u64,
            s.influence_after(11) as u64,
            s.influence_after(21) as u64,
        )
    });
    let mut at_submission = Vec::with_capacity(rows.len());
    let mut after_10 = Vec::with_capacity(rows.len());
    let mut after_20 = Vec::with_capacity(rows.len());
    for (a, b, c) in rows {
        at_submission.push(a);
        after_10.push(b);
        after_20.push(c);
    }
    let poorly = if ds.front_page.is_empty() {
        0.0
    } else {
        ds.front_page
            .iter()
            .filter(|r| g.fan_count(r.submitter) < 10)
            .count() as f64
            / ds.front_page.len() as f64
    };
    let ck10 = Checkpoint::new("after 10 votes", after_10, 0.0, 1400.0, 28);
    let visible = ck10.fraction_at_least(200);
    Fig3aResult {
        checkpoints: vec![
            Checkpoint::new("at submission", at_submission, 0.0, 1400.0, 28),
            ck10,
            Checkpoint::new("after 20 votes", after_20, 0.0, 1400.0, 28),
        ],
        poorly_connected_submitters: poorly,
        visible_200_after_10: visible,
    }
}

/// Run Fig. 3(b) over the front-page sample.
pub fn run_b(ds: &DiggDataset) -> Fig3bResult {
    run_b_with(ds, worker_threads())
}

/// [`run_b`] with an explicit worker-thread count. One sweep per story
/// yields all three cascade windows.
pub fn run_b_with(ds: &DiggDataset, threads: usize) -> Fig3bResult {
    let g = &ds.network;
    let rows = sweep_map(g, &ds.front_page, threads, |sw, r| {
        // In-network flags only look backwards: the first 30
        // post-submitter votes are decided by voters[..31].
        let s = sw.sweep(g, &r.voters[..r.voters.len().min(31)]);
        (
            s.in_network_count_within(10) as u64,
            s.in_network_count_within(20) as u64,
            s.in_network_count_within(30) as u64,
        )
    });
    let mut at_10 = Vec::with_capacity(rows.len());
    let mut at_20 = Vec::with_capacity(rows.len());
    let mut at_30 = Vec::with_capacity(rows.len());
    for (a, b, c) in rows {
        at_10.push(a);
        at_20.push(b);
        at_30.push(c);
    }
    let c10 = Checkpoint::new("after 10 votes", at_10, 0.0, 26.0, 26);
    let c20 = Checkpoint::new("after 20 votes", at_20, 0.0, 26.0, 26);
    let c30 = Checkpoint::new("after 30 votes", at_30, 0.0, 26.0, 26);
    let half10 = c10.fraction_at_least(5);
    let ten20 = c20.fraction_at_least(10);
    let ten30 = c30.fraction_at_least(10);
    Fig3bResult {
        checkpoints: vec![c10, c20, c30],
        half_in_network_at_10: half10,
        ten_in_network_at_20: ten20,
        ten_in_network_at_30: ten30,
    }
}

fn render_checkpoints(checkpoints: &[Checkpoint], width: usize) -> String {
    let mut out = String::new();
    for ck in checkpoints {
        out.push_str(&format!("  {}\n", ck.label));
        let max = ck.series.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
        for &(center, count) in &ck.series {
            if count == 0 {
                continue;
            }
            let bar = "#".repeat((count as f64 / max as f64 * width as f64).round() as usize);
            out.push_str(&format!(
                "    {:>6.0} |{:<width$}| {}\n",
                center, bar, count
            ));
        }
    }
    out
}

impl Fig3aResult {
    /// Render histograms and headline fractions.
    pub fn render(&self) -> String {
        format!(
            "Fig 3a: story influence\n  submitters with <10 fans: {:.2} (paper: ~0.5+)\n  visible to >=200 users after 10 votes: {:.2} (paper: ~0.5)\n{}",
            self.poorly_connected_submitters,
            self.visible_200_after_10,
            render_checkpoints(&self.checkpoints, 40)
        )
    }
}

impl Fig3bResult {
    /// Render histograms and headline fractions.
    pub fn render(&self) -> String {
        format!(
            "Fig 3b: cascade sizes\n  >=5 of first 10 in-network: {:.2} (paper 0.30)\n  >=10 within 20 votes: {:.2} (paper 0.28)\n  >=10 within 30 votes: {:.2} (paper 0.36)\n{}",
            self.half_in_network_at_10,
            self.ten_in_network_at_20,
            self.ten_in_network_at_30,
            render_checkpoints(&self.checkpoints, 40)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::{SampleSource, StoryRecord};
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, UserId};

    fn ds() -> DiggDataset {
        let mut b = GraphBuilder::new(600);
        // Submitter 0 has 300 fans (500 is far enough): users 100..400.
        for f in 100..400 {
            b.add_watch(UserId(f), UserId(0));
        }
        // Submitter 1 has 2 fans.
        b.add_watch(UserId(2), UserId(1));
        b.add_watch(UserId(3), UserId(1));
        let network = b.build();
        let rec = |id: u32, submitter: u32, voters: Vec<u32>| StoryRecord {
            story: StoryId(id),
            submitter: UserId(submitter),
            submitted_at: Minute(0),
            voters: voters.into_iter().map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: Some(100),
        };
        // Story A: top submitter, fans vote -> big cascade & influence.
        let mut va = vec![0];
        va.extend(100..120);
        // Story B: poorly connected, outsiders vote.
        let mut vb = vec![1];
        vb.extend(450..470);
        DiggDataset {
            scraped_at: Minute(100),
            front_page: vec![rec(0, 0, va), rec(1, 1, vb)],
            upcoming: vec![],
            network,
            top_users: vec![UserId(0)],
        }
    }

    #[test]
    fn influence_checkpoints_ordered_by_votes() {
        let r = run_a(&ds());
        assert_eq!(r.checkpoints.len(), 3);
        // Story A at submission: 300 fans visible.
        assert_eq!(r.checkpoints[0].values[0], 300);
        // Story B at submission: 2 fans.
        assert_eq!(r.checkpoints[0].values[1], 2);
        // Half the stories have poorly connected submitters.
        assert_eq!(r.poorly_connected_submitters, 0.5);
        // Story A visible to >=200 after 10 votes (fans shrink as
        // they vote but remain ~290).
        assert_eq!(r.visible_200_after_10, 0.5);
        assert!(r.render().contains("Fig 3a"));
    }

    #[test]
    fn cascade_checkpoints_count_in_network() {
        let r = run_b(&ds());
        // Story A: all 20 voters are fans of the submitter.
        assert_eq!(r.checkpoints[0].values[0], 10);
        assert_eq!(r.checkpoints[1].values[0], 20);
        // Story B: no fan relationships.
        assert_eq!(r.checkpoints[0].values[1], 0);
        assert_eq!(r.half_in_network_at_10, 0.5);
        assert_eq!(r.ten_in_network_at_20, 0.5);
        assert!(r.render().contains("Fig 3b"));
    }

    #[test]
    fn checkpoint_fractions() {
        let ck = Checkpoint::new("t", vec![1, 5, 10], 0.0, 20.0, 4);
        assert!((ck.fraction_at_least(5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((ck.fraction_below(5) - 1.0 / 3.0).abs() < 1e-12);
        let empty = Checkpoint::new("t", vec![], 0.0, 20.0, 4);
        assert_eq!(empty.fraction_at_least(1), 0.0);
    }
}
