//! Post-promotion attention decay — the Wu & Huberman check.
//!
//! The paper's §2 positions its contribution against Wu & Huberman
//! (ref [24]), who found that "interest in a story peaks when the
//! story first hits the front page, and then decays with time, with a
//! half-life of about a day." The simulator *encodes* a novelty decay
//! constant; this experiment verifies that the observable — the decay
//! of the post-promotion vote rate across the promoted population —
//! actually comes out at the Wu–Huberman scale once queue dynamics,
//! page sinking and social amplification are all in play.

use digg_sim::story::StoryStatus;
use digg_sim::time::DAY;
use digg_sim::Sim;
use digg_stats::correlation::linear_fit;
use serde::{Deserialize, Serialize};

/// The experiment's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayResult {
    /// Stories analysed (promoted, with ≥ `min_age` of observation).
    pub stories: usize,
    /// Per-story half-life of post-promotion votes, in minutes.
    pub half_lives: Vec<f64>,
    /// Median half-life in days (Wu–Huberman: ≈ 1).
    pub median_half_life_days: f64,
    /// Aggregate votes per hour in each hour after promotion
    /// (hour index = position).
    pub hourly_rate: Vec<f64>,
    /// Exponential time-constant (minutes) fitted to the aggregate
    /// rate curve by log-linear regression.
    pub fitted_tau_minutes: Option<f64>,
}

/// Run the experiment over every story promoted at least
/// `min_observation` minutes before the end of the run.
pub fn run(sim: &Sim, min_observation: u64, horizon_hours: usize) -> DecayResult {
    run_with(
        sim,
        min_observation,
        horizon_hours,
        crate::story_metrics::worker_threads(),
    )
}

/// [`run`] with an explicit worker-thread count: per-story vote scans
/// fan out, aggregates are merged in story order.
pub fn run_with(
    sim: &Sim,
    min_observation: u64,
    horizon_hours: usize,
    threads: usize,
) -> DecayResult {
    let now = sim.now();
    // Per promoted story: its half-life (when defined) and the
    // post-promotion vote offsets in minutes.
    let per_story = crate::story_metrics::par_map(sim.stories(), threads, |s| {
        let StoryStatus::FrontPage(promoted) = s.status else {
            return None;
        };
        if now.since(promoted) < min_observation {
            return None;
        }
        let post: Vec<u64> = s
            .votes
            .iter()
            .filter(|v| v.at > promoted)
            .map(|v| v.at.since(promoted))
            .collect();
        let half_life = if post.len() >= 4 {
            // Time to accumulate half of the post-promotion votes.
            let mut sorted = post.clone();
            sorted.sort_unstable();
            let half_idx = sorted.len().div_ceil(2) - 1;
            Some(sorted[half_idx] as f64)
        } else {
            None
        };
        Some((half_life, post))
    });
    let mut half_lives = Vec::new();
    let mut hourly = vec![0u64; horizon_hours];
    let mut stories = 0usize;
    for (half_life, post) in per_story.into_iter().flatten() {
        stories += 1;
        half_lives.extend(half_life);
        for dt in post {
            let h = (dt / 60) as usize;
            if h < horizon_hours {
                hourly[h] += 1;
            }
        }
    }
    let hourly_rate: Vec<f64> = hourly
        .iter()
        .map(|&c| c as f64 / stories.max(1) as f64)
        .collect();
    // Log-linear fit over the strictly positive part of the curve.
    let pts: Vec<(f64, f64)> = hourly_rate
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r > 0.0)
        .map(|(h, &r)| (h as f64 * 60.0 + 30.0, r.ln()))
        .collect();
    let fitted_tau_minutes = if pts.len() >= 3 {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        linear_fit(&xs, &ys)
            .map(|(_, slope)| -1.0 / slope)
            .filter(|t| t.is_finite() && *t > 0.0)
    } else {
        None
    };
    let median_half_life_days = digg_stats::descriptive::median(&half_lives)
        .map(|m| m / DAY as f64)
        .unwrap_or(f64::NAN);
    DecayResult {
        stories,
        half_lives,
        median_half_life_days,
        hourly_rate,
        fitted_tau_minutes,
    }
}

impl DecayResult {
    /// Render the summary plus the hourly rate sparkline.
    pub fn render(&self) -> String {
        format!(
            "Post-promotion decay (Wu-Huberman check, {} stories)\n  median half-life: {:.2} days (Wu-Huberman: ~1 day)\n  fitted exponential tau: {} minutes (configured novelty tau 2076 before page sinking)\n  votes/hour after promotion: {}\n",
            self.stories,
            self.median_half_life_days,
            self.fitted_tau_minutes
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "n/a".into()),
            digg_stats::ascii::sparkline(&self.hourly_rate),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_sim::population::{Population, PopulationConfig};
    use digg_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim() -> Sim {
        let cfg = SimConfig::toy(51);
        let mut rng = StdRng::seed_from_u64(51);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        let mut s = digg_sim::Sim::new(cfg, pop);
        s.run(2400);
        s
    }

    #[test]
    fn decay_runs_on_toy_sim() {
        let s = sim();
        let r = run(&s, 600, 24);
        assert!(r.stories > 0, "no promoted stories observed long enough");
        assert_eq!(r.hourly_rate.len(), 24);
        assert!(!r.half_lives.is_empty());
        // Half-lives are positive and bounded by the observation span.
        assert!(r.half_lives.iter().all(|&h| h > 0.0 && h < 2400.0));
        assert!(r.render().contains("half-life"));
    }

    #[test]
    fn rate_decays_overall() {
        let s = sim();
        let r = run(&s, 900, 15);
        // Early rate should exceed late rate (the toy config decays
        // with tau = 600 min).
        let early: f64 = r.hourly_rate[..3].iter().sum();
        let late: f64 = r.hourly_rate[10..13].iter().sum();
        assert!(early > late, "no decay: early {early:.2} vs late {late:.2}");
    }

    #[test]
    fn empty_sim_is_handled() {
        let cfg = SimConfig::toy(52);
        let mut rng = StdRng::seed_from_u64(52);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        let s = digg_sim::Sim::new(cfg, pop); // never run
        let r = run(&s, 0, 10);
        assert_eq!(r.stories, 0);
        assert!(r.median_half_life_days.is_nan());
        assert_eq!(r.fitted_tau_minutes, None);
    }
}
