//! Fig. 5 — the C4.5 decision tree and its 10-fold cross-validation.
//!
//! Paper: tree over `(v10, fans1)` trained on 207 front-page stories;
//! 10-fold CV classifies 174 correctly / 33 wrong (84.1%). The
//! published tree splits on `v10 <= 4` at the root.

use crate::features::build_training_set;
use crate::predictor::InterestingnessPredictor;
use digg_data::DiggDataset;
use digg_ml::c45::C45Params;
use digg_ml::tree::Node;
use serde::{Deserialize, Serialize};

/// The experiment's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Stories in the training table (paper: 207).
    pub training_stories: usize,
    /// Positive ("interesting") stories among them.
    pub positives: usize,
    /// The learned tree, rendered.
    pub tree_text: String,
    /// The root split attribute name (paper: v10).
    pub root_attribute: Option<String>,
    /// The root split threshold (paper: 4).
    pub root_threshold: Option<f64>,
    /// Leaves in the learned tree (paper: 4).
    pub leaves: usize,
    /// CV correct (paper: 174).
    pub cv_correct: usize,
    /// CV errors (paper: 33).
    pub cv_errors: usize,
}

impl Fig5Result {
    /// Pooled CV accuracy (paper: 0.841).
    pub fn cv_accuracy(&self) -> f64 {
        let n = self.cv_correct + self.cv_errors;
        if n == 0 {
            return 0.0;
        }
        self.cv_correct as f64 / n as f64
    }

    /// Render the summary plus the tree.
    pub fn render(&self) -> String {
        format!(
            "Fig 5: C4.5 over (v10, fans1), threshold {} votes\n  training stories: {} ({} interesting)\n  10-fold CV: {} correct / {} errors (accuracy {:.3}; paper 174/33 = 0.841)\n  root split: {} <= {}\n  tree ({} leaves):\n{}",
            crate::features::INTERESTINGNESS_THRESHOLD,
            self.training_stories,
            self.positives,
            self.cv_correct,
            self.cv_errors,
            self.cv_accuracy(),
            self.root_attribute.as_deref().unwrap_or("(leaf)"),
            self.root_threshold
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            self.leaves,
            indent(&self.tree_text, 4),
        )
    }
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines()
        .map(|l| format!("{pad}{l}\n"))
        .collect::<String>()
}

/// Run the experiment on the front-page sample.
///
/// Returns `None` if no stories qualify for training.
pub fn run(ds: &DiggDataset, params: &C45Params, cv_seed: u64) -> Option<Fig5Result> {
    let threshold = crate::features::INTERESTINGNESS_THRESHOLD;
    let (training, kept) = build_training_set(&ds.front_page, &ds.network, threshold);
    if kept.is_empty() {
        return None;
    }
    let predictor =
        InterestingnessPredictor::train(&ds.front_page, &ds.network, threshold, params)?;
    let cv = InterestingnessPredictor::cross_validate(
        &ds.front_page,
        &ds.network,
        threshold,
        params,
        10.min(kept.len()).max(2),
        cv_seed,
    )?;
    let (root_attribute, root_threshold) = match &predictor.tree().root {
        Node::Split {
            attr, threshold, ..
        } => (
            Some(predictor.tree().attribute_names[*attr].clone()),
            Some(*threshold),
        ),
        Node::Leaf { .. } => (None, None),
    };
    Some(Fig5Result {
        training_stories: training.len(),
        positives: training.positives(),
        tree_text: predictor.tree().render(),
        root_attribute,
        root_threshold,
        leaves: predictor.tree().leaf_count(),
        cv_correct: cv.correct(),
        cv_errors: cv.errors(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::{SampleSource, StoryRecord};
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, UserId};

    /// Separable sample: network-heavy early votes -> flop.
    fn ds() -> DiggDataset {
        let mut b = GraphBuilder::new(600);
        for f in 1..=20 {
            b.add_watch(UserId(f), UserId(0));
        }
        let network = b.build();
        let mut front_page = Vec::new();
        for i in 0..15u32 {
            let mut vs = vec![0u32];
            vs.extend(1..=10);
            vs.push(400 + i);
            front_page.push(StoryRecord {
                story: StoryId(i),
                submitter: UserId(0),
                submitted_at: Minute(0),
                voters: vs.into_iter().map(UserId).collect(),
                source: SampleSource::FrontPage,
                final_votes: Some(150 + i),
            });
            let mut vs = vec![0u32];
            vs.extend(300 + 12 * i..300 + 12 * i + 11);
            front_page.push(StoryRecord {
                story: StoryId(100 + i),
                submitter: UserId(0),
                submitted_at: Minute(0),
                voters: vs.into_iter().map(UserId).collect(),
                source: SampleSource::FrontPage,
                final_votes: Some(1500 + i),
            });
        }
        DiggDataset {
            scraped_at: Minute(10),
            front_page,
            upcoming: vec![],
            network,
            top_users: vec![UserId(0)],
        }
    }

    #[test]
    fn learns_v10_root_split() {
        let r = run(&ds(), &C45Params::default(), 5).expect("trainable");
        assert_eq!(r.training_stories, 30);
        assert_eq!(r.positives, 15);
        assert_eq!(r.root_attribute.as_deref(), Some("v10"));
        // Separating threshold lies between 0 and 10 in-network votes.
        let t = r.root_threshold.unwrap();
        assert!((0.0..10.0).contains(&t), "threshold {t}");
        assert!(r.cv_accuracy() > 0.9, "accuracy {}", r.cv_accuracy());
        assert!(r.render().contains("10-fold CV"));
    }

    #[test]
    fn untrainable_returns_none() {
        let mut d = ds();
        d.front_page.clear();
        assert!(run(&d, &C45Params::default(), 5).is_none());
    }

    #[test]
    fn accuracy_handles_zero_division() {
        let r = Fig5Result {
            training_stories: 0,
            positives: 0,
            tree_text: String::new(),
            root_attribute: None,
            root_threshold: None,
            leaves: 1,
            cv_correct: 0,
            cv_errors: 0,
        };
        assert_eq!(r.cv_accuracy(), 0.0);
    }
}
