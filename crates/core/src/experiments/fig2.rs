//! Fig. 2 — "Statistics of story and user activity".
//!
//! (a) Histogram of final votes received by front-page stories.
//! Paper: ~20% below ~500 votes, ~20% above 1500, range to ~4000.
//!
//! (b) Log-log histogram of the number of stories each user submitted
//! and voted on, over the scraped sample. Paper: both heavy-tailed,
//! submissions steeper than votes.

use crate::story_metrics::{par_fold, worker_threads};
use digg_data::DiggDataset;
use digg_stats::descriptive::{fraction_above, fraction_below};
use digg_stats::histogram::{integer_counts, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fig. 2(a) data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2aResult {
    /// Bin edges width (votes).
    pub bin_width: f64,
    /// `(bin_center, stories)` series.
    pub series: Vec<(f64, u64)>,
    /// Stories with known finals.
    pub stories: usize,
    /// Fraction below 500 votes (paper ≈ 0.2).
    pub below_500: f64,
    /// Fraction above 1500 votes (paper ≈ 0.2).
    pub above_1500: f64,
    /// Maximum final vote count.
    pub max_votes: u32,
}

/// Fig. 2(b) data: exact `(activity x, #users with x)` point clouds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2bResult {
    /// Submissions point cloud.
    pub submissions: Vec<(u64, u64)>,
    /// Votes point cloud.
    pub votes: Vec<(u64, u64)>,
    /// Fraction of users who voted on exactly one story (paper: "most
    /// of the users voted on only one story").
    pub single_vote_users: f64,
    /// Maximum votes by one user.
    pub max_votes_by_user: u64,
}

/// Run Fig. 2(a) over the front-page sample.
pub fn run_a(ds: &DiggDataset, bins: usize, max: f64) -> Fig2aResult {
    let finals: Vec<f64> = ds
        .front_page
        .iter()
        .filter_map(|r| r.final_votes)
        .map(f64::from)
        .collect();
    let hist = Histogram::of(0.0, max, bins, &finals);
    Fig2aResult {
        bin_width: hist.bin_width(),
        series: hist.series(),
        stories: finals.len(),
        below_500: fraction_below(&finals, 500.0),
        above_1500: fraction_above(&finals, 1500.0),
        // Max over the original integer counts — no float round-trip.
        max_votes: ds
            .front_page
            .iter()
            .filter_map(|r| r.final_votes)
            .max()
            .unwrap_or(0),
    }
}

/// Per-user `(submissions, votes)` tallies, accumulated across worker
/// threads. Counter addition commutes, so the merged tallies are
/// thread-count independent by construction. HashMap is safe here
/// (determinism audit, DESIGN.md §13): everything that reaches the
/// serialized artifact flows through [`integer_counts`], which
/// re-sorts into a `BTreeMap`, or through order-independent integer
/// max/count reductions.
type Activity = (HashMap<u32, u64>, HashMap<u32, u64>);

/// Fan per-story activity counting out over `threads` workers, with
/// `record` charging one story to the accumulator.
fn count_activity<T: Sync>(
    items: &[T],
    threads: usize,
    record: impl Fn(&mut Activity, &T) + Sync,
) -> Activity {
    par_fold(
        items,
        threads,
        || (HashMap::new(), HashMap::new()),
        record,
        |acc, part| {
            for (u, c) in part.0 {
                *acc.0.entry(u).or_insert(0) += c;
            }
            for (u, c) in part.1 {
                *acc.1.entry(u).or_insert(0) += c;
            }
        },
    )
}

/// Assemble the figure from the per-user tallies.
fn result_from((submissions, votes): Activity) -> Fig2bResult {
    let sub_counts: Vec<u64> = submissions.values().copied().collect();
    let vote_counts: Vec<u64> = votes.values().copied().collect();
    let single = if vote_counts.is_empty() {
        0.0
    } else {
        vote_counts.iter().filter(|&&c| c == 1).count() as f64 / vote_counts.len() as f64
    };
    Fig2bResult {
        submissions: integer_counts(&sub_counts).into_iter().collect(),
        votes: integer_counts(&vote_counts).into_iter().collect(),
        single_vote_users: single,
        max_votes_by_user: vote_counts.iter().copied().max().unwrap_or(0),
    }
}

/// Run Fig. 2(b) over all scraped records (front page + upcoming, as
/// the paper counted activity over its sample).
pub fn run_b(ds: &DiggDataset) -> Fig2bResult {
    run_b_with(ds, worker_threads())
}

/// [`run_b`] with an explicit worker-thread count.
pub fn run_b_with(ds: &DiggDataset, threads: usize) -> Fig2bResult {
    let records: Vec<_> = ds.all_records().collect();
    result_from(count_activity(&records, threads, |(subs, votes), r| {
        *subs.entry(r.submitter.0).or_insert(0) += 1;
        // Post-submitter voters (the submitter's implicit vote counts
        // as a submission, not a vote, in the paper's Fig. 2b).
        for v in r.voters.iter().skip(1) {
            *votes.entry(v.0).or_insert(0) += 1;
        }
    }))
}

/// Fig. 2(b) over the full simulation record instead of the scraped
/// sample. The paper's activity plot spans the site's lifetime (its
/// Top Users list counted all 15,000+ front-page submissions ever
/// made); the few-day scraped window alone caps per-user counts at a
/// handful.
pub fn run_b_sim(sim: &digg_sim::Sim) -> Fig2bResult {
    run_b_sim_with(sim, worker_threads())
}

/// [`run_b_sim`] with an explicit worker-thread count.
pub fn run_b_sim_with(sim: &digg_sim::Sim, threads: usize) -> Fig2bResult {
    result_from(count_activity(
        sim.stories(),
        threads,
        |(subs, votes), s| {
            *subs.entry(s.submitter.0).or_insert(0) += 1;
            for v in s.votes.iter().skip(1) {
                *votes.entry(v.user.0).or_insert(0) += 1;
            }
        },
    ))
}

impl Fig2aResult {
    /// Render the histogram plus the headline fractions.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig 2a: final votes of {} front-page stories\n  <500: {:.2} (paper ~0.20)   >1500: {:.2} (paper ~0.20)   max: {}\n",
            self.stories, self.below_500, self.above_1500, self.max_votes
        );
        let max_count = self
            .series
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        for &(center, count) in &self.series {
            let bar = "#".repeat((count as f64 / max_count as f64 * 40.0).round() as usize);
            out.push_str(&format!("  {:>6.0} |{:<40}| {}\n", center, bar, count));
        }
        out
    }
}

impl Fig2bResult {
    /// Render both log-log point clouds.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 2b: per-user activity (log-log)\n");
        out.push_str(&format!(
            "  single-vote users: {:.2}   max votes by one user: {}\n",
            self.single_vote_users, self.max_votes_by_user
        ));
        out.push_str("  votes:\n");
        let pts: Vec<(f64, f64)> = self
            .votes
            .iter()
            .map(|&(x, c)| (x as f64, c as f64))
            .collect();
        out.push_str(&digg_stats::ascii::loglog_scatter(&pts, 60, 14));
        out.push_str("  submissions:\n");
        let pts: Vec<(f64, f64)> = self
            .submissions
            .iter()
            .map(|&(x, c)| (x as f64, c as f64))
            .collect();
        out.push_str(&digg_stats::ascii::loglog_scatter(&pts, 60, 14));
        out
    }

    /// Check the heavy-tail shape: counts decrease over an order of
    /// magnitude of activity.
    pub fn votes_tail_decreases(&self) -> bool {
        let at = |x: u64| -> u64 {
            self.votes
                .iter()
                .filter(|&&(v, _)| v >= x && v < x * 3)
                .map(|&(_, c)| c)
                .sum()
        };
        at(1) > at(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::{SampleSource, StoryRecord};
    use digg_sim::{Minute, StoryId};
    use social_graph::{SocialGraph, UserId};

    fn rec(id: u32, submitter: u32, voters: Vec<u32>, fin: Option<u32>) -> StoryRecord {
        StoryRecord {
            story: StoryId(id),
            submitter: UserId(submitter),
            submitted_at: Minute(0),
            voters: voters.into_iter().map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: fin,
        }
    }

    fn ds() -> DiggDataset {
        DiggDataset {
            scraped_at: Minute(10),
            front_page: vec![
                rec(0, 1, vec![1, 2, 3], Some(100)),
                rec(1, 1, vec![1, 2, 4], Some(700)),
                rec(2, 5, vec![5, 2], Some(2000)),
                rec(3, 6, vec![6, 7], None), // unaugmented: excluded from 2a
            ],
            upcoming: vec![rec(4, 8, vec![8, 2], None)],
            network: SocialGraph::empty(10),
            top_users: vec![],
        }
    }

    #[test]
    fn fig2a_fractions_and_bins() {
        let r = run_a(&ds(), 8, 4000.0);
        assert_eq!(r.stories, 3);
        assert!((r.below_500 - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.above_1500 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_votes, 2000);
        assert_eq!(r.series.len(), 8);
        let total: u64 = r.series.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
        assert!(r.render().contains("Fig 2a"));
    }

    #[test]
    fn fig2b_counts_activity() {
        let r = run_b(&ds());
        // Submitters: 1 (x2), 5, 6, 8 -> counts {1: 3 users, 2: 1 user}.
        assert_eq!(r.submissions, vec![(1, 3), (2, 1)]);
        // Voters (excluding submitter-first votes): 2 voted 4x,
        // 3,4,7 once each... plus 2 in upcoming.
        let votes: std::collections::HashMap<u64, u64> = r.votes.iter().copied().collect();
        assert_eq!(votes[&1], 3); // users 3, 4, 7
        assert_eq!(votes[&4], 1); // user 2
        assert_eq!(r.max_votes_by_user, 4);
        assert!((r.single_vote_users - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fig2b_render_smoke() {
        let text = run_b(&ds()).render();
        assert!(text.contains("Fig 2b"));
        assert!(text.contains("single-vote users"));
    }

    #[test]
    fn fig2b_artifact_bytes_are_run_and_thread_invariant() {
        // Determinism audit regression (DESIGN.md §13): the per-user
        // tallies accumulate in HashMaps, whose iteration order
        // differs per instance. The serialized artifact must not —
        // every run, at any thread count, must produce identical
        // bytes.
        let dataset = ds();
        let reference = serde_json::to_string(&run_b_with(&dataset, 1)).expect("serializable");
        for threads in [1, 2, 7] {
            for _ in 0..3 {
                let bytes =
                    serde_json::to_string(&run_b_with(&dataset, threads)).expect("serializable");
                assert_eq!(bytes, reference, "threads={threads}");
            }
        }
    }
}
