//! Fig. 1 — "Time series of the number of votes, since submission,
//! received by randomly chosen front-page stories."
//!
//! The expected shape: slow accrual in the upcoming queue, a sharp
//! rate increase at promotion, then saturation over a few days. This
//! experiment uses simulator ground truth for vote times — the paper's
//! own Fig. 1 required time-resolved data its main dataset lacked.

use digg_sim::story::StoryStatus;
use digg_sim::time::DAY;
use digg_sim::Sim;
use digg_stats::sampling::reservoir;
use digg_stats::timeseries::CumulativeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One story's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoryCurve {
    /// Story id (for cross-referencing).
    pub story: u32,
    /// Minutes from submission to promotion.
    pub promoted_after: u64,
    /// Cumulative votes sampled every `step` minutes.
    pub values: Vec<u64>,
    /// Sampling step (minutes). Stored as the integer it is produced
    /// from ([`Fig1Params::step`]) so sample indexing is exact.
    pub step: u64,
}

impl StoryCurve {
    /// Index of the sample taken at or immediately after minute `t`.
    fn index_at(&self, t: u64) -> usize {
        (t / self.step.max(1)) as usize
    }

    /// Vote count at promotion time.
    pub fn votes_at_promotion(&self) -> u64 {
        let idx = self.index_at(self.promoted_after);
        self.values
            .get(idx)
            .copied()
            .unwrap_or_else(|| self.values.last().copied().unwrap_or(0))
    }
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Sampled story curves.
    pub curves: Vec<StoryCurve>,
    /// Observation horizon (minutes since each story's submission).
    pub horizon: u64,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Params {
    /// How many promoted stories to sample.
    pub stories: usize,
    /// Horizon in minutes (paper plots ~5000).
    pub horizon: u64,
    /// Sampling step in minutes.
    pub step: u64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for Fig1Params {
    fn default() -> Fig1Params {
        Fig1Params {
            stories: 6,
            horizon: 5_000,
            step: 20,
            seed: 1,
        }
    }
}

/// Run the experiment: sample promoted stories old enough to be
/// observed over the full horizon and build their cumulative curves.
pub fn run(sim: &Sim, params: &Fig1Params) -> Fig1Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let now = sim.now();
    let eligible = sim.stories().iter().filter(|s| {
        matches!(s.status, StoryStatus::FrontPage(_)) && now.since(s.submitted_at) >= params.horizon
    });
    let sample = reservoir(&mut rng, eligible, params.stories);
    let curves = sample
        .into_iter()
        .map(|s| {
            let times: Vec<f64> = s
                .votes
                .iter()
                .map(|v| v.at.since(s.submitted_at) as f64)
                .collect();
            let series =
                CumulativeSeries::from_events(&times, params.step as f64, params.horizon as f64);
            let promoted_after = s
                .promoted_at()
                .map(|t| t.since(s.submitted_at))
                .unwrap_or(0);
            StoryCurve {
                story: s.id.0,
                promoted_after,
                values: series.values,
                step: params.step,
            }
        })
        .collect();
    Fig1Result {
        curves,
        horizon: params.horizon,
    }
}

impl Fig1Result {
    /// The shape checks the paper describes: the post-promotion vote
    /// rate exceeds the queue-phase rate for the given curve.
    pub fn promotion_accelerates(&self, curve: &StoryCurve) -> bool {
        let idx = curve.index_at(curve.promoted_after);
        if idx == 0 || idx + 1 >= curve.values.len() {
            return false;
        }
        let pre_rate = curve.values[idx] as f64 / curve.promoted_after.max(1) as f64;
        // Rate over the 6 hours after promotion.
        let post_window = (6 * 60 / curve.step.max(1)) as usize;
        let end = (idx + post_window).min(curve.values.len() - 1);
        let post_votes = curve.values[end] - curve.values[idx];
        let post_rate = post_votes as f64 / ((end - idx) as u64 * curve.step).max(1) as f64;
        post_rate > pre_rate
    }

    /// Render sparkline curves plus summary rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig 1: cumulative votes over {} minutes since submission\n",
            self.horizon
        ));
        for c in &self.curves {
            let floats: Vec<f64> = c.values.iter().map(|&v| v as f64).collect();
            out.push_str(&format!(
                "story {:>6} promoted@{:>5}m votes@promo {:>3} final {:>5}  {}\n",
                c.story,
                c.promoted_after,
                c.votes_at_promotion(),
                c.values.last().unwrap_or(&0),
                digg_stats::ascii::sparkline(&floats),
            ));
        }
        out
    }

    /// Fraction of a story's final votes accrued in its first
    /// post-promotion day, averaged over curves (Wu–Huberman style
    /// decay check).
    pub fn mean_first_day_fraction(&self) -> Option<f64> {
        let mut fractions = Vec::new();
        for c in &self.curves {
            let fin = *c.values.last()? as f64;
            if fin == 0.0 {
                continue;
            }
            let idx = c.index_at(c.promoted_after + DAY);
            let at = c.values.get(idx).copied().unwrap_or(*c.values.last()?) as f64;
            fractions.push(at / fin);
        }
        digg_stats::descriptive::mean(&fractions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_sim::population::{Population, PopulationConfig};
    use digg_sim::SimConfig;

    fn sim() -> Sim {
        let cfg = SimConfig::toy(31);
        let mut rng = StdRng::seed_from_u64(31);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
        let mut s = Sim::new(cfg, pop);
        s.run(2200);
        s
    }

    #[test]
    fn curves_are_monotone_and_sampled() {
        let s = sim();
        let params = Fig1Params {
            stories: 4,
            horizon: 1000,
            step: 10,
            seed: 2,
        };
        let r = run(&s, &params);
        assert!(!r.curves.is_empty(), "no eligible promoted stories");
        for c in &r.curves {
            assert!(c.values.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(c.values.len(), 101);
            // Promotion happened within the toy queue lifetime.
            assert!(c.promoted_after <= 12 * 60);
        }
    }

    #[test]
    fn promotion_acceleration_detector() {
        // Deterministic curve: 1 vote / 20 min while queued (10
        // steps), then 5 votes / step after promotion at t=200.
        let mut values = Vec::new();
        let mut v = 0u64;
        for i in 0..60 {
            v += if i < 10 { 1 } else { 5 };
            values.push(v);
        }
        let fast = StoryCurve {
            story: 1,
            promoted_after: 200,
            values: values.clone(),
            step: 20,
        };
        // Flat curve: same rate throughout.
        let flat = StoryCurve {
            story: 2,
            promoted_after: 200,
            values: (1..=60).collect(),
            step: 20,
        };
        let r = Fig1Result {
            curves: vec![fast.clone(), flat.clone()],
            horizon: 1200,
        };
        assert!(r.promotion_accelerates(&fast));
        assert!(!r.promotion_accelerates(&flat));
        // The sample at the promotion step already includes the first
        // fast-phase increment (values are sampled at step ends).
        assert_eq!(fast.votes_at_promotion(), 15);
        // The calibrated-scenario integration test asserts the
        // acceleration on real simulator output; the toy scenario
        // promotes too quickly for the queue phase to be visible.
    }

    #[test]
    fn render_contains_each_story() {
        let s = sim();
        let r = run(&s, &Fig1Params::default());
        let text = r.render();
        for c in &r.curves {
            assert!(text.contains(&format!("story {:>6}", c.story)));
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = sim();
        let a = run(&s, &Fig1Params::default());
        let b = run(&s, &Fig1Params::default());
        let ids_a: Vec<u32> = a.curves.iter().map(|c| c.story).collect();
        let ids_b: Vec<u32> = b.curves.iter().map(|c| c.story).collect();
        assert_eq!(ids_a, ids_b);
    }
}
