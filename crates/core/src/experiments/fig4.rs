//! Fig. 4 — "Distribution of the number of in-network votes stories
//! receive vs how interesting they are."
//!
//! For each value of the early in-network vote count (within the first
//! 6, 10 and 20 post-submitter votes), the paper plots the median and
//! trimmed spread of the final vote counts, showing "a clear inverse
//! relationship between interestingness and the fraction of in-network
//! votes … already visible … within the first 6-10 votes".

use crate::cascade::{has_enough_votes, in_network_count_within};
use crate::story_metrics::{sweep_map, worker_threads};
use digg_data::DiggDataset;
use digg_stats::binstats::{GroupRow, GroupedSummary};
use digg_stats::correlation::spearman;
use serde::{Deserialize, Serialize};

/// One panel (one observation window).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Panel {
    /// Window size (6, 10 or 20).
    pub window: usize,
    /// Stories contributing (those with at least `window`
    /// post-submitter votes and a final count).
    pub stories: usize,
    /// Per-in-network-count rows: key, count, median, trimmed lo/hi.
    pub rows: Vec<PanelRow>,
    /// Spearman correlation between the in-network count and the
    /// final votes (paper: strongly negative).
    pub spearman: Option<f64>,
}

/// Serializable clone of a [`GroupRow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelRow {
    /// In-network vote count.
    pub in_network: u64,
    /// Stories at this count.
    pub count: usize,
    /// Median final votes.
    pub median: f64,
    /// Trimmed lower whisker.
    pub lo: f64,
    /// Trimmed upper whisker.
    pub hi: f64,
}

impl From<GroupRow> for PanelRow {
    fn from(r: GroupRow) -> PanelRow {
        PanelRow {
            in_network: r.key,
            count: r.count,
            median: r.median,
            lo: r.lo,
            hi: r.hi,
        }
    }
}

/// The full figure: panels for windows 6, 10 and 20.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One panel per window.
    pub panels: Vec<Panel>,
}

/// The windows of the paper's three panels.
const WINDOWS: [usize; 3] = [6, 10, 20];

/// Run one panel. Single-window callers (e.g. the robustness sweep)
/// use this; [`run`] computes all three windows from one sweep per
/// story instead.
pub fn run_panel(ds: &DiggDataset, window: usize) -> Panel {
    let g = &ds.network;
    let mut grouped = GroupedSummary::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in &ds.front_page {
        if !has_enough_votes(&r.voters, window) {
            continue;
        }
        let Some(fin) = r.final_votes else { continue };
        let v = in_network_count_within(g, &r.voters, window) as u64;
        grouped.add(v, f64::from(fin));
        xs.push(v as f64);
        ys.push(f64::from(fin));
    }
    Panel {
        window,
        stories: xs.len(),
        rows: grouped.rows().into_iter().map(PanelRow::from).collect(),
        spearman: spearman(&xs, &ys),
    }
}

/// Run all three panels (6, 10, 20) — the paper's figure.
pub fn run(ds: &DiggDataset) -> Fig4Result {
    run_with(ds, worker_threads())
}

/// [`run`] with an explicit worker-thread count: one sweep per story
/// supplies every window's in-network count.
pub fn run_with(ds: &DiggDataset, threads: usize) -> Fig4Result {
    let g = &ds.network;
    let per_story = sweep_map(g, &ds.front_page, threads, |sw, r| {
        // The widest window is 20 post-submitter votes, so sweeping
        // voters[..21] decides every panel.
        let s = sw.sweep(g, &r.voters[..r.voters.len().min(21)]);
        (
            r.voters.len(),
            WINDOWS.map(|w| s.in_network_count_within(w) as u64),
            r.final_votes,
        )
    });
    let panels = WINDOWS
        .iter()
        .enumerate()
        .map(|(i, &window)| {
            let mut grouped = GroupedSummary::new();
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for &(voters, counts, fin) in &per_story {
                // has_enough_votes: more voters than the window
                // (submitter included in the list, not the window).
                if voters <= window {
                    continue;
                }
                let Some(fin) = fin else { continue };
                grouped.add(counts[i], f64::from(fin));
                xs.push(counts[i] as f64);
                ys.push(f64::from(fin));
            }
            Panel {
                window,
                stories: xs.len(),
                rows: grouped.rows().into_iter().map(PanelRow::from).collect(),
                spearman: spearman(&xs, &ys),
            }
        })
        .collect();
    Fig4Result { panels }
}

impl Panel {
    /// Median final votes of the low-cascade stories (in-network ≤
    /// `k`) minus the high-cascade ones (≥ `window - k`); positive
    /// = inverse relationship.
    pub fn median_gap(&self, k: u64) -> Option<f64> {
        let med = |pred: &dyn Fn(u64) -> bool| -> Option<f64> {
            let mut vals: Vec<f64> = Vec::new();
            for row in &self.rows {
                if pred(row.in_network) {
                    // Weight rows by count using the median as the
                    // row representative: adequate for a gap check.
                    vals.extend(std::iter::repeat_n(row.median, row.count));
                }
            }
            digg_stats::descriptive::median(&vals)
        };
        let hi_cut = self.window as u64 - k;
        Some(med(&|v| v <= k)? - med(&|v| v >= hi_cut)?)
    }
}

impl Fig4Result {
    /// Render all panels as aligned tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.panels {
            out.push_str(&format!(
                "Fig 4 (after {} votes, n={} stories, spearman {})\n",
                p.window,
                p.stories,
                p.spearman
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "n/a".into())
            ));
            out.push_str("  in-network  n      median   [trimmed range]\n");
            for r in &p.rows {
                out.push_str(&format!(
                    "  {:>10}  {:<5}  {:>7.0}  [{:>6.0}, {:>6.0}]\n",
                    r.in_network, r.count, r.median, r.lo, r.hi
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::{SampleSource, StoryRecord};
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, UserId};

    /// Synthetic sample with a built-in inverse relationship.
    fn ds() -> DiggDataset {
        let mut b = GraphBuilder::new(500);
        for f in 1..=30 {
            b.add_watch(UserId(f), UserId(0));
        }
        let network = b.build();
        let mut front_page = Vec::new();
        for i in 0..8u32 {
            // i in-network votes among the first 10; final votes
            // decrease with i. 21 post-submitter votes so every
            // window (6, 10, 20) is populated.
            let mut voters = vec![0u32];
            voters.extend(1..=i); // fans (in-network)
            voters.extend(200 + 30 * i..200 + 30 * i + (21 - i)); // outsiders
            front_page.push(StoryRecord {
                story: StoryId(i),
                submitter: UserId(0),
                submitted_at: Minute(0),
                voters: voters.into_iter().map(UserId).collect(),
                source: SampleSource::FrontPage,
                final_votes: Some(2000 - 200 * i),
            });
        }
        DiggDataset {
            scraped_at: Minute(10),
            front_page,
            upcoming: vec![],
            network,
            top_users: vec![UserId(0)],
        }
    }

    #[test]
    fn panels_group_by_in_network_count() {
        let r = run(&ds());
        assert_eq!(r.panels.len(), 3);
        let p10 = &r.panels[1];
        assert_eq!(p10.window, 10);
        assert_eq!(p10.stories, 8);
        // Eight distinct in-network counts -> eight rows.
        assert_eq!(p10.rows.len(), 8);
        for (i, row) in p10.rows.iter().enumerate() {
            assert_eq!(row.in_network, i as u64);
            assert_eq!(row.median, 2000.0 - 200.0 * i as f64);
        }
    }

    #[test]
    fn inverse_relationship_detected() {
        let r = run(&ds());
        for p in &r.panels {
            let rho = p.spearman.expect("correlation defined");
            assert!(rho < -0.9, "window {} rho {}", p.window, rho);
        }
        // Panel 10 has keys 0..=7; compare v10 <= 3 vs v10 >= 7.
        let gap = r.panels[1].median_gap(3).unwrap();
        assert!(gap > 0.0, "gap {gap}");
    }

    #[test]
    fn short_stories_are_excluded() {
        let mut d = ds();
        // A story with only 3 post-submitter votes joins only the
        // 6-window if it has >= 6... it has 3, so it joins none.
        d.front_page.push(StoryRecord {
            story: StoryId(99),
            submitter: UserId(0),
            submitted_at: Minute(0),
            voters: vec![UserId(0), UserId(1), UserId(2), UserId(3)],
            source: SampleSource::FrontPage,
            final_votes: Some(50),
        });
        let r = run(&d);
        assert_eq!(r.panels[0].stories, 8);
        assert_eq!(r.panels[1].stories, 8);
        assert_eq!(r.panels[2].stories, 8);
    }

    #[test]
    fn run_matches_per_panel_runs_at_any_thread_count() {
        let d = ds();
        for threads in [1, 2, 8] {
            let r = run_with(&d, threads);
            for (p, &w) in r.panels.iter().zip(WINDOWS.iter()) {
                let single = run_panel(&d, w);
                assert_eq!(p.window, single.window);
                assert_eq!(p.stories, single.stories);
                assert_eq!(p.rows, single.rows);
                assert_eq!(p.spearman, single.spearman);
            }
        }
    }

    #[test]
    fn render_mentions_all_windows() {
        let text = run(&ds()).render();
        for w in [6, 10, 20] {
            assert!(text.contains(&format!("after {w} votes")));
        }
    }
}
