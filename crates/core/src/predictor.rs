//! The interestingness predictor (paper §5.2).
//!
//! Two predictors are provided:
//!
//! * [`InterestingnessPredictor::train`] — a C4.5 tree trained on a
//!   front-page sample, the paper's method;
//! * [`fig5_rule`] — the exact tree the paper published in Fig. 5,
//!   as a fixed classifier, so the published model can be evaluated on
//!   synthetic data directly.

use crate::features::{build_training_set, StoryFeatures, INTERESTINGNESS_THRESHOLD};
use digg_data::StoryRecord;
use digg_ml::c45::{train, C45Params};
use digg_ml::crossval::{cross_validate, CrossValResult};
use digg_ml::stream::StreamingPrediction;
use digg_ml::tree::{DecisionTree, Node};
use social_graph::SocialGraph;

/// A trained early-vote interestingness predictor.
///
/// # Examples
///
/// Using the paper's published Fig. 5 rule directly:
///
/// ```
/// use digg_core::predictor::fig5_predictor;
/// use digg_core::features::StoryFeatures;
///
/// let predictor = fig5_predictor();
/// let features = StoryFeatures {
///     v6: 1, v10: 2, v20: 3, fans1: 12, scraped_votes: 15,
/// };
/// // Few early in-network votes: predicted interesting.
/// assert!(predictor.predict_features(&features));
/// ```
#[derive(Debug, Clone)]
pub struct InterestingnessPredictor {
    tree: DecisionTree,
    threshold: u32,
}

impl InterestingnessPredictor {
    /// Train on augmented front-page records (the paper's 207-story
    /// table). Returns `None` when no record qualifies (fewer than 10
    /// votes or unaugmented).
    pub fn train(
        records: &[StoryRecord],
        graph: &SocialGraph,
        threshold: u32,
        params: &C45Params,
    ) -> Option<InterestingnessPredictor> {
        let (ds, kept) = build_training_set(records, graph, threshold);
        if kept.is_empty() {
            return None;
        }
        Some(InterestingnessPredictor {
            tree: train(&ds, params),
            threshold,
        })
    }

    /// Wrap an existing tree (e.g. [`fig5_rule`]).
    pub fn from_tree(tree: DecisionTree, threshold: u32) -> InterestingnessPredictor {
        InterestingnessPredictor { tree, threshold }
    }

    /// Predict whether a story will be interesting from its early
    /// votes. `None` when the story lacks the 10-vote window.
    pub fn predict(&self, record: &StoryRecord, graph: &SocialGraph) -> Option<bool> {
        let f = StoryFeatures::extract(record, graph)?;
        Some(self.tree.predict(&f.values()))
    }

    /// Predict directly from features.
    pub fn predict_features(&self, features: &StoryFeatures) -> bool {
        self.tree.predict(&features.values())
    }

    /// Start a streaming verdict from the current features. Feed
    /// later snapshots through
    /// [`predict_update`](InterestingnessPredictor::predict_update)
    /// as votes arrive: same-side attribute ticks resolve from the
    /// cached decision path without walking the tree.
    pub fn predict_stream(&self, features: &StoryFeatures) -> StreamingPrediction {
        StreamingPrediction::new(&self.tree, features.values().to_vec())
    }

    /// Fold updated features into a streaming verdict; always equal
    /// to a fresh [`predict_features`](Self::predict_features) on the
    /// same snapshot.
    pub fn predict_update(
        &self,
        stream: &mut StreamingPrediction,
        features: &StoryFeatures,
    ) -> bool {
        for (attr, &v) in features.values().iter().enumerate() {
            // Feature values are integral counts; exact comparison
            // detects a tick without float-tolerance hazards.
            if stream.values()[attr] != v {
                stream.predict_update(&self.tree, attr, v);
            }
        }
        stream.verdict()
    }

    /// The underlying tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The final-vote threshold defining "interesting".
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Stratified k-fold cross-validation on a record set (the paper's
    /// "10-fold validation … correctly classifies 174 of 207").
    pub fn cross_validate(
        records: &[StoryRecord],
        graph: &SocialGraph,
        threshold: u32,
        params: &C45Params,
        k: usize,
        seed: u64,
    ) -> Option<CrossValResult> {
        let (ds, kept) = build_training_set(records, graph, threshold);
        if kept.len() < k {
            return None;
        }
        Some(cross_validate(&ds, params, k, seed))
    }
}

/// The exact decision tree of the paper's Fig. 5:
///
/// ```text
/// v10 <= 4: yes (130/5)
/// v10 > 4
/// |  v10 <= 8
/// |  |  fans1 <= 85: no (29/13)
/// |  |  fans1 > 85: yes (30/8)
/// |  v10 > 8: no (18/0)
/// ```
pub fn fig5_rule() -> DecisionTree {
    DecisionTree {
        attribute_names: vec!["v10".into(), "fans1".into()],
        root: Node::Split {
            attr: 0,
            threshold: 4.0,
            le: Box::new(Node::Leaf {
                label: true,
                total: 130,
                errors: 5,
            }),
            gt: Box::new(Node::Split {
                attr: 0,
                threshold: 8.0,
                le: Box::new(Node::Split {
                    attr: 1,
                    threshold: 85.0,
                    le: Box::new(Node::Leaf {
                        label: false,
                        total: 29,
                        errors: 13,
                    }),
                    gt: Box::new(Node::Leaf {
                        label: true,
                        total: 30,
                        errors: 8,
                    }),
                }),
                gt: Box::new(Node::Leaf {
                    label: false,
                    total: 18,
                    errors: 0,
                }),
            }),
        },
    }
}

/// Convenience: the Fig. 5 rule as a predictor with the paper's
/// 520-vote threshold.
pub fn fig5_predictor() -> InterestingnessPredictor {
    InterestingnessPredictor::from_tree(fig5_rule(), INTERESTINGNESS_THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::SampleSource;
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, UserId};

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(200);
        // Users 1..=9 are fans of 0 (a well-connected submitter);
        // user 100 has no fans.
        for f in 1..=9 {
            b.add_watch(UserId(f), UserId(0));
        }
        b.build()
    }

    fn record(submitter: u32, voters: Vec<u32>, fin: u32) -> StoryRecord {
        StoryRecord {
            story: StoryId(submitter),
            submitter: UserId(submitter),
            submitted_at: Minute(0),
            voters: voters.into_iter().map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: Some(fin),
        }
    }

    /// Stories by user 0 gather fan votes and flop; stories by user
    /// 100 gather outsider votes and soar.
    fn training_records() -> Vec<StoryRecord> {
        let mut out = Vec::new();
        for i in 0..12 {
            // Network-driven flop: voters 1..=9 are fans.
            let mut vs = vec![0];
            vs.extend(1..=9);
            vs.extend([150 + i, 160 + i]);
            out.push(record(0, vs, 100 + i));
            // Interest-driven hit: all outsiders.
            let mut vs = vec![100];
            vs.extend((110..121).map(|v| v + i));
            out.push(record(100, vs, 2000 + i));
        }
        out
    }

    #[test]
    fn trained_predictor_learns_the_inverse_pattern() {
        let g = graph();
        let records = training_records();
        let p = InterestingnessPredictor::train(
            &records,
            &g,
            INTERESTINGNESS_THRESHOLD,
            &C45Params::default(),
        )
        .expect("trainable");
        // A new network-driven story -> not interesting.
        let mut vs = vec![0];
        vs.extend(1..=9);
        vs.extend([190, 191]);
        let flop = record(0, vs, 0);
        assert_eq!(p.predict(&flop, &g), Some(false));
        // A new interest-driven story -> interesting.
        let hit = record(100, vec![100, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59], 0);
        assert_eq!(p.predict(&hit, &g), Some(true));
        assert_eq!(p.threshold(), INTERESTINGNESS_THRESHOLD);
    }

    #[test]
    fn prediction_requires_window() {
        let g = graph();
        let p = fig5_predictor();
        let short = record(0, vec![0, 1, 2], 0);
        assert_eq!(p.predict(&short, &g), None);
    }

    #[test]
    fn untrainable_input_returns_none() {
        let g = graph();
        let short = vec![record(0, vec![0, 1], 50)];
        assert!(InterestingnessPredictor::train(&short, &g, 520, &C45Params::default()).is_none());
    }

    #[test]
    fn fig5_rule_semantics() {
        let p = fig5_predictor();
        let f = |v10: usize, fans1: usize| StoryFeatures {
            v6: 0,
            v10,
            v20: 0,
            fans1,
            scraped_votes: 11,
        };
        assert!(p.predict_features(&f(0, 0)));
        assert!(p.predict_features(&f(4, 0)));
        assert!(!p.predict_features(&f(9, 1000)));
        assert!(!p.predict_features(&f(6, 85)));
        assert!(p.predict_features(&f(6, 86)));
        assert_eq!(p.tree().leaf_count(), 4);
    }

    #[test]
    fn streaming_verdict_tracks_batch_prediction() {
        let p = fig5_predictor();
        let f = |v10: usize, fans1: usize| StoryFeatures {
            v6: 0,
            v10,
            v20: 0,
            fans1,
            scraped_votes: 11,
        };
        let mut stream = p.predict_stream(&f(0, 50));
        assert!(stream.verdict());
        // v10 ticks up one in-network vote at a time; the verdict
        // must match a fresh prediction at every step.
        for v10 in 1..=12 {
            let snap = f(v10, 50);
            assert_eq!(
                p.predict_update(&mut stream, &snap),
                p.predict_features(&snap),
                "v10 {v10}"
            );
        }
        // A fans1 revision on the 4 < v10 <= 8 path flips the leaf.
        let mut stream = p.predict_stream(&f(6, 50));
        assert!(!stream.verdict());
        assert!(p.predict_update(&mut stream, &f(6, 90)));
    }

    #[test]
    fn cross_validation_runs_on_trainable_data() {
        let g = graph();
        let records = training_records();
        let cv = InterestingnessPredictor::cross_validate(
            &records,
            &g,
            INTERESTINGNESS_THRESHOLD,
            &C45Params::default(),
            4,
            9,
        )
        .expect("enough data");
        assert_eq!(cv.pooled.total(), records.len());
        // The pattern is separable, so CV accuracy should be high.
        assert!(cv.accuracy() > 0.9, "accuracy {}", cv.accuracy());
    }
}
