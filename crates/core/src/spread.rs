//! Two-mechanism spread diagnostics (paper §5.1).
//!
//! "There are two mechanisms for the spread of interest in a story on
//! Digg: interest-based and network-based. A highly interesting story
//! will spread from many independent seed sites … A story that is
//! interesting to a narrow community, however, will spread within that
//! community only."
//!
//! This module quantifies, for one story's voter list, how much of its
//! spread looks network-based: the in-network fraction over time, run
//! lengths of consecutive in-network votes (community bursts), and a
//! summary classification.

use crate::story_metrics::{StorySweep, StorySweeper};
use serde::{Deserialize, Serialize};
use social_graph::{SocialGraph, UserId};

/// Which mechanism dominated a story's early spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpreadMode {
    /// Most early votes arrived from outside the voters' fan network —
    /// independent discovery (predicts broad interest).
    InterestDriven,
    /// Most early votes arrived through the fan network (predicts a
    /// narrow community audience).
    NetworkDriven,
    /// Neither mechanism clearly dominates.
    Mixed,
}

/// Per-story spread profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpreadProfile {
    /// Post-submitter votes analysed.
    pub votes: usize,
    /// In-network votes among them.
    pub in_network: usize,
    /// Longest run of consecutive in-network votes (a community
    /// burst).
    pub longest_network_run: usize,
    /// Number of out-of-network votes, i.e. independent seeds.
    pub independent_seeds: usize,
}

impl SpreadProfile {
    /// In-network fraction (0 for voteless stories).
    pub fn network_fraction(&self) -> f64 {
        if self.votes == 0 {
            return 0.0;
        }
        self.in_network as f64 / self.votes as f64
    }

    /// Classify with the given dominance margin (e.g. 0.6 means a
    /// mechanism must supply more than 60% of early votes to claim the
    /// story).
    pub fn mode(&self, margin: f64) -> SpreadMode {
        let f = self.network_fraction();
        if f > margin {
            SpreadMode::NetworkDriven
        } else if f < 1.0 - margin {
            SpreadMode::InterestDriven
        } else {
            SpreadMode::Mixed
        }
    }
}

/// Profile the first `window` post-submitter votes (fewer if the
/// story is shorter).
pub fn profile(graph: &SocialGraph, voters: &[UserId], window: usize) -> SpreadProfile {
    profile_sweep(StorySweeper::new(graph).sweep(graph, voters), window)
}

/// [`profile`] over an already-computed sweep — what batch callers use
/// so the voter walk happens once per story.
pub fn profile_sweep(sweep: &StorySweep, window: usize) -> SpreadProfile {
    let flags = &sweep.flags()[..window.min(sweep.flags().len())];
    let in_network = flags.iter().filter(|&&f| f).count();
    let mut longest = 0usize;
    let mut run = 0usize;
    for &f in flags {
        if f {
            run += 1;
            longest = longest.max(run);
        } else {
            run = 0;
        }
    }
    SpreadProfile {
        votes: flags.len(),
        in_network,
        longest_network_run: longest,
        independent_seeds: flags.len() - in_network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use social_graph::GraphBuilder;

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(10);
        for f in 1..=4 {
            b.add_watch(UserId(f), UserId(0));
        }
        b.build()
    }

    #[test]
    fn profile_counts_runs_and_seeds() {
        let g = graph();
        // Votes: fan, fan, outsider, fan, outsider.
        let voters = [
            UserId(0),
            UserId(1),
            UserId(2),
            UserId(7),
            UserId(3),
            UserId(8),
        ];
        let p = profile(&g, &voters, 10);
        assert_eq!(p.votes, 5);
        assert_eq!(p.in_network, 3);
        assert_eq!(p.longest_network_run, 2);
        assert_eq!(p.independent_seeds, 2);
        assert!((p.network_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn window_truncates() {
        let g = graph();
        let voters = [UserId(0), UserId(1), UserId(2), UserId(7)];
        let p = profile(&g, &voters, 2);
        assert_eq!(p.votes, 2);
        assert_eq!(p.in_network, 2);
    }

    #[test]
    fn classification_margins() {
        let p = SpreadProfile {
            votes: 10,
            in_network: 8,
            longest_network_run: 5,
            independent_seeds: 2,
        };
        assert_eq!(p.mode(0.6), SpreadMode::NetworkDriven);
        let p2 = SpreadProfile {
            votes: 10,
            in_network: 1,
            longest_network_run: 1,
            independent_seeds: 9,
        };
        assert_eq!(p2.mode(0.6), SpreadMode::InterestDriven);
        let p3 = SpreadProfile {
            votes: 10,
            in_network: 5,
            longest_network_run: 2,
            independent_seeds: 5,
        };
        assert_eq!(p3.mode(0.6), SpreadMode::Mixed);
    }

    #[test]
    fn empty_story_profiles_cleanly() {
        let g = graph();
        let p = profile(&g, &[UserId(0)], 10);
        assert_eq!(p.votes, 0);
        assert_eq!(p.network_fraction(), 0.0);
        assert_eq!(p.mode(0.6), SpreadMode::InterestDriven);
    }
}
