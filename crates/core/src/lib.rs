//! # digg-core
//!
//! The paper's contribution, as a library: analysis of social voting
//! patterns and early prediction of story interestingness from where
//! the initial votes come from (Lerman & Galstyan, WOSN'08).
//!
//! Central definitions (paper §4.1):
//!
//! * a vote is **in-network** when the voter is a fan of the submitter
//!   or of any previous voter — the story could have reached them
//!   through the Friends interface;
//! * a story's **cascade** (size) after `n` votes is the number of
//!   in-network votes among the first `n` votes not counting the
//!   submitter;
//! * a story's **influence** is the number of users who can see it
//!   through the Friends interface — the union of the fans of
//!   everyone who has voted so far.
//!
//! And the headline result (§5): the early cascade anticorrelates with
//! final popularity. Stories that spread mainly *through* the
//! submitter's neighbourhood stall once they face the general
//! audience; stories recruited from outside it keep growing. A C4.5
//! tree over `(v10, fans1)` predicts "interesting" (> 520 final votes)
//! after only ten votes, beating the platform's own promotion
//! decision on precision.
//!
//! Modules:
//!
//! * [`incremental`] — the per-vote state machine
//!   ([`IncrementalSweep`]): counters, features and verdict updated in
//!   O(new-voter-fan-degree) per vote, byte-identical to a batch
//!   recompute of the applied prefix.
//! * [`story_metrics`] — the single-pass sweep engine every other
//!   analysis module and experiment routes through; a thin replay
//!   over [`incremental`].
//! * [`cascade`] — in-network vote analysis.
//! * [`influence`] — Friends-interface visibility.
//! * [`features`] — `(v6, v10, v20, fans1)` extraction, dataset
//!   assembly for the learner.
//! * [`spread`] — two-mechanism spread diagnostics (interest-based vs
//!   network-based).
//! * [`predictor`] — the trained predictor plus the paper's published
//!   Fig. 5 rule.
//! * [`pipeline`] — train-and-holdout evaluation (§5.2), including
//!   the comparison against the promoter.
//! * [`experiments`] — one module per paper figure / in-text
//!   statistic, producing printable, serializable results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade;
pub mod experiments;
pub mod features;
pub mod incremental;
pub mod influence;
pub mod pipeline;
pub mod predictor;
pub mod spread;
pub mod story_metrics;

pub use cascade::{in_network_count_within, in_network_flags};
pub use features::{FanCoverage, StoryFeatures, INTERESTINGNESS_THRESHOLD};
pub use incremental::{IncrementalSweep, VoteApplied};
pub use pipeline::{
    run_pipeline, run_pipeline_with_coverage, PipelineConfig, PipelineCoverage, StoryPrefixes,
};
pub use predictor::InterestingnessPredictor;
pub use story_metrics::{
    par_fold, par_join, par_map, sweep_map, try_par_join, try_par_map, try_sweep_map,
    worker_threads, PanicShard, StorySweep, StorySweeper, WorkerPanic,
};
