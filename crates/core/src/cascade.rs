//! In-network vote analysis — the story's *cascade* (paper §4.1).
//!
//! "Because we know the social network of Digg users, we can count how
//! many votes came from within the network — from fans of the previous
//! voters. This is the story's cascade."

use crate::story_metrics::StorySweeper;
use social_graph::{SocialGraph, UserId};

/// For each vote after the submitter's, whether it is in-network: the
/// voter is a fan of any earlier voter (including the submitter).
///
/// `voters` is the chronological voter list with the submitter first
/// (the scraped artifact). The returned vector has
/// `voters.len().saturating_sub(1)` entries, aligned with
/// `voters[1..]`.
///
/// # Examples
///
/// ```
/// use social_graph::{GraphBuilder, UserId};
/// use digg_core::cascade::in_network_flags;
///
/// // User 1 is a fan of user 0.
/// let mut b = GraphBuilder::new(3);
/// b.add_watch(UserId(1), UserId(0));
/// let graph = b.build();
///
/// // Story submitted by 0; then 1 votes (fan: in-network), then 2
/// // (unconnected: independent discovery).
/// let voters = [UserId(0), UserId(1), UserId(2)];
/// assert_eq!(in_network_flags(&graph, &voters), vec![true, false]);
/// ```
pub fn in_network_flags(graph: &SocialGraph, voters: &[UserId]) -> Vec<bool> {
    StorySweeper::new(graph)
        .sweep(graph, voters)
        .flags()
        .to_vec()
}

/// Number of in-network votes among the first `n` votes **not
/// counting the submitter** — the paper's `v_n` (e.g. `v10`).
///
/// Stories with fewer than `n` post-submitter votes are counted over
/// what they have; use [`has_enough_votes`] to filter first when the
/// experiment requires a full window.
pub fn in_network_count_within(graph: &SocialGraph, voters: &[UserId], n: usize) -> usize {
    StorySweeper::new(graph)
        .sweep(graph, voters)
        .in_network_count_within(n)
}

/// Whether the story has at least `n` votes beyond the submitter's.
pub fn has_enough_votes(voters: &[UserId], n: usize) -> bool {
    voters.len() > n
}

/// Cumulative in-network counts after each vote (index `k` = after
/// `k + 1` post-submitter votes); useful for spread profiles.
pub fn cumulative_cascade(graph: &SocialGraph, voters: &[UserId]) -> Vec<usize> {
    StorySweeper::new(graph)
        .sweep(graph, voters)
        .cascade()
        .iter()
        .map(|&v| v as usize)
        .collect()
}

/// Fraction of the first `n` post-submitter votes that are
/// in-network; `None` if the story has fewer than `n` such votes.
pub fn in_network_fraction(graph: &SocialGraph, voters: &[UserId], n: usize) -> Option<f64> {
    if !has_enough_votes(voters, n) || n == 0 {
        return None;
    }
    Some(in_network_count_within(graph, voters, n) as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use social_graph::GraphBuilder;

    /// Users 1 and 2 are fans of 0; user 3 is a fan of 2; user 4 is
    /// unconnected.
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(5);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.add_watch(UserId(3), UserId(2));
        b.build()
    }

    #[test]
    fn flags_follow_fan_relationships() {
        let g = graph();
        // Submitter 0; voter 1 (fan of 0: in), voter 4 (out), voter 3
        // (fan of 2 — but 2 hasn't voted: out), voter 2 (fan of 0: in).
        let voters = [UserId(0), UserId(1), UserId(4), UserId(3), UserId(2)];
        assert_eq!(
            in_network_flags(&g, &voters),
            vec![true, false, false, true]
        );
    }

    #[test]
    fn order_matters_for_cascades() {
        let g = graph();
        // If 2 votes before 3, then 3's vote becomes in-network.
        let voters = [UserId(0), UserId(2), UserId(3)];
        assert_eq!(in_network_flags(&g, &voters), vec![true, true]);
        let voters = [UserId(4), UserId(3), UserId(2)];
        // 3 is not a fan of 4; 2 is not a fan of 4 or 3.
        assert_eq!(in_network_flags(&g, &voters), vec![false, false]);
    }

    #[test]
    fn count_within_window() {
        let g = graph();
        let voters = [UserId(0), UserId(1), UserId(4), UserId(2)];
        assert_eq!(in_network_count_within(&g, &voters, 1), 1);
        assert_eq!(in_network_count_within(&g, &voters, 2), 1);
        assert_eq!(in_network_count_within(&g, &voters, 3), 2);
        assert_eq!(in_network_count_within(&g, &voters, 100), 2);
        assert_eq!(in_network_count_within(&g, &voters, 0), 0);
    }

    #[test]
    fn enough_votes_excludes_submitter() {
        let voters = [UserId(0), UserId(1), UserId(2)];
        assert!(has_enough_votes(&voters, 2));
        assert!(!has_enough_votes(&voters, 3));
        assert!(!has_enough_votes(&[], 0));
    }

    #[test]
    fn cumulative_counts_are_monotone() {
        let g = graph();
        let voters = [UserId(0), UserId(1), UserId(4), UserId(2), UserId(3)];
        let c = cumulative_cascade(&g, &voters);
        assert_eq!(c, vec![1, 1, 2, 3]);
    }

    #[test]
    fn fraction_requires_full_window() {
        let g = graph();
        let voters = [UserId(0), UserId(1), UserId(4)];
        assert_eq!(in_network_fraction(&g, &voters, 2), Some(0.5));
        assert_eq!(in_network_fraction(&g, &voters, 3), None);
        assert_eq!(in_network_fraction(&g, &voters, 0), None);
    }

    #[test]
    fn empty_and_single_voter_edge_cases() {
        let g = graph();
        assert!(in_network_flags(&g, &[]).is_empty());
        assert!(in_network_flags(&g, &[UserId(0)]).is_empty());
        assert_eq!(in_network_count_within(&g, &[UserId(0)], 10), 0);
    }
}
