//! Early-vote feature extraction (paper §5.2).
//!
//! "Each story had three attributes: number of in-network votes within
//! the first ten votes (v10), number of users watching the submitter
//! (fans1) and a boolean attribute indicating whether the story was
//! interesting … if it received more than 520 votes."

use crate::cascade::has_enough_votes;
use crate::story_metrics::StorySweeper;
use digg_data::StoryRecord;
use digg_ml::{Instance, MlDataset};
use serde::{Deserialize, Serialize};
use social_graph::SocialGraph;

/// The paper's interestingness threshold (final votes must *exceed*
/// this). Chosen in §5.1 footnote 3: the 500-vote knee of Fig. 2(a),
/// raised to 520 to keep two borderline stories unambiguous.
pub const INTERESTINGNESS_THRESHOLD: u32 = 520;

/// Early-vote features of one story.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoryFeatures {
    /// In-network votes within the first 6 post-submitter votes.
    pub v6: usize,
    /// In-network votes within the first 10 (the tree's main input).
    pub v10: usize,
    /// In-network votes within the first 20.
    pub v20: usize,
    /// Fans of the submitter.
    pub fans1: usize,
    /// Votes visible when the features were computed.
    pub scraped_votes: usize,
}

impl StoryFeatures {
    /// Extract features from a scraped record against the (scraped)
    /// social network. Returns `None` when the story has fewer than
    /// 10 post-submitter votes — the paper's minimum observation
    /// window for `v10`.
    pub fn extract(record: &StoryRecord, graph: &SocialGraph) -> Option<StoryFeatures> {
        StoryFeatures::extract_with(&mut StorySweeper::new(graph), record, graph)
    }

    /// [`StoryFeatures::extract`] reusing a caller-owned sweeper — the
    /// batch path: one voter walk per story, no per-story allocation.
    pub fn extract_with(
        sweeper: &mut StorySweeper,
        record: &StoryRecord,
        graph: &SocialGraph,
    ) -> Option<StoryFeatures> {
        if !has_enough_votes(&record.voters, 10) {
            return None;
        }
        // v20 is decided by the first 20 post-submitter votes, so the
        // sweep never needs to walk past voters[..21].
        let sweep = sweeper.sweep(graph, &record.voters[..record.voters.len().min(21)]);
        Some(StoryFeatures {
            v6: sweep.in_network_count_within(6),
            v10: sweep.in_network_count_within(10),
            v20: sweep.in_network_count_within(20),
            fans1: graph.fan_count(record.submitter),
            scraped_votes: record.voters.len(),
        })
    }

    /// The learner's attribute vector, aligned with
    /// [`StoryFeatures::attribute_names`].
    pub fn values(&self) -> Vec<f64> {
        vec![self.v10 as f64, self.fans1 as f64]
    }

    /// Attribute names for the paper's model.
    pub fn attribute_names() -> Vec<&'static str> {
        vec!["v10", "fans1"]
    }

    /// Extended attribute vector for the feature-ablation bench
    /// (ABL1), aligned with [`StoryFeatures::extended_attribute_names`].
    pub fn extended_values(&self) -> Vec<f64> {
        vec![
            self.v6 as f64,
            self.v10 as f64,
            self.v20 as f64,
            self.fans1 as f64,
        ]
    }

    /// Names for [`extended_values`](Self::extended_values).
    pub fn extended_attribute_names() -> Vec<&'static str> {
        vec!["v6", "v10", "v20", "fans1"]
    }
}

/// Assemble the paper's training table from augmented records: one
/// instance per story with at least 10 post-submitter votes and a
/// known final count. Returns the dataset and the indices (into
/// `records`) of the retained stories.
pub fn build_training_set(
    records: &[StoryRecord],
    graph: &SocialGraph,
    threshold: u32,
) -> (MlDataset, Vec<usize>) {
    build_training_set_with(
        records,
        graph,
        threshold,
        crate::story_metrics::worker_threads(),
    )
}

/// [`build_training_set`] with an explicit worker-thread count:
/// feature extraction (the sweep) fans out; table assembly stays in
/// record order, so the dataset is identical at any thread count.
pub fn build_training_set_with(
    records: &[StoryRecord],
    graph: &SocialGraph,
    threshold: u32,
    threads: usize,
) -> (MlDataset, Vec<usize>) {
    let features = crate::story_metrics::sweep_map(graph, records, threads, |sweeper, r| {
        StoryFeatures::extract_with(sweeper, r, graph)
    });
    let mut ds = MlDataset::new(StoryFeatures::attribute_names());
    let mut kept = Vec::new();
    for (i, (r, f)) in records.iter().zip(features).enumerate() {
        let Some(f) = f else { continue };
        let Some(label) = r.is_interesting(threshold) else {
            continue;
        };
        ds.push(Instance::new(f.values(), label));
        kept.push(i);
    }
    (ds, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::SampleSource;
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, UserId};

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(30);
        // Users 1..=5 are fans of 0.
        for f in 1..=5 {
            b.add_watch(UserId(f), UserId(0));
        }
        b.build()
    }

    fn record(n_voters: usize, fin: Option<u32>) -> StoryRecord {
        StoryRecord {
            story: StoryId(0),
            submitter: UserId(0),
            submitted_at: Minute(0),
            voters: (0..n_voters as u32).map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: fin,
        }
    }

    #[test]
    fn extraction_requires_ten_votes() {
        let g = graph();
        assert!(StoryFeatures::extract(&record(10, None), &g).is_none());
        assert!(StoryFeatures::extract(&record(11, None), &g).is_some());
    }

    #[test]
    fn window_counts_are_nested() {
        let g = graph();
        let f = StoryFeatures::extract(&record(25, None), &g).unwrap();
        // Voters 1..=5 are fans of submitter 0 -> in-network.
        assert_eq!(f.v6, 5);
        assert_eq!(f.v10, 5);
        assert_eq!(f.v20, 5);
        assert!(f.v6 <= f.v10 && f.v10 <= f.v20);
        assert_eq!(f.fans1, 5);
        assert_eq!(f.scraped_votes, 25);
    }

    #[test]
    fn attribute_vectors_align_with_names() {
        let g = graph();
        let f = StoryFeatures::extract(&record(12, None), &g).unwrap();
        assert_eq!(f.values().len(), StoryFeatures::attribute_names().len());
        assert_eq!(
            f.extended_values().len(),
            StoryFeatures::extended_attribute_names().len()
        );
        assert_eq!(f.values()[0], f.v10 as f64);
        assert_eq!(f.values()[1], f.fans1 as f64);
    }

    #[test]
    fn training_set_filters_and_labels() {
        let g = graph();
        let records = vec![
            record(15, Some(600)), // kept, interesting
            record(15, Some(100)), // kept, not interesting
            record(5, Some(999)),  // too few votes
            record(15, None),      // unaugmented
        ];
        let (ds, kept) = build_training_set(&records, &g, INTERESTINGNESS_THRESHOLD);
        assert_eq!(ds.len(), 2);
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(ds.positives(), 1);
        assert_eq!(ds.attribute_names(), &["v10", "fans1"]);
    }
}
