//! Early-vote feature extraction (paper §5.2).
//!
//! "Each story had three attributes: number of in-network votes within
//! the first ten votes (v10), number of users watching the submitter
//! (fans1) and a boolean attribute indicating whether the story was
//! interesting … if it received more than 520 votes."

use crate::cascade::has_enough_votes;
use crate::story_metrics::StorySweeper;
use digg_data::StoryRecord;
use digg_ml::{Instance, MlDataset};
use serde::{Deserialize, Serialize};
use social_graph::SocialGraph;

/// The paper's interestingness threshold (final votes must *exceed*
/// this). Chosen in §5.1 footnote 3: the 500-vote knee of Fig. 2(a),
/// raised to 520 to keep two borderline stories unambiguous.
pub const INTERESTINGNESS_THRESHOLD: u32 = 520;

/// Early-vote features of one story.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoryFeatures {
    /// In-network votes within the first 6 post-submitter votes.
    pub v6: usize,
    /// In-network votes within the first 10 (the tree's main input).
    pub v10: usize,
    /// In-network votes within the first 20.
    pub v20: usize,
    /// Fans of the submitter.
    pub fans1: usize,
    /// Votes visible when the features were computed.
    pub scraped_votes: usize,
}

impl StoryFeatures {
    /// Extract features from a scraped record against the (scraped)
    /// social network. Returns `None` when the story has fewer than
    /// 10 post-submitter votes — the paper's minimum observation
    /// window for `v10`.
    pub fn extract(record: &StoryRecord, graph: &SocialGraph) -> Option<StoryFeatures> {
        StoryFeatures::extract_with(&mut StorySweeper::new(graph), record, graph)
    }

    /// [`StoryFeatures::extract`] reusing a caller-owned sweeper — the
    /// batch path: one voter walk per story, no per-story allocation.
    pub fn extract_with(
        sweeper: &mut StorySweeper,
        record: &StoryRecord,
        graph: &SocialGraph,
    ) -> Option<StoryFeatures> {
        if !has_enough_votes(&record.voters, 10) {
            return None;
        }
        // v20 is decided by the first 20 post-submitter votes, so the
        // sweep never needs to walk past voters[..21].
        let sweep = sweeper.sweep(graph, &record.voters[..record.voters.len().min(21)]);
        Some(StoryFeatures {
            v6: sweep.in_network_count_within(6),
            v10: sweep.in_network_count_within(10),
            v20: sweep.in_network_count_within(20),
            fans1: graph.fan_count(record.submitter),
            scraped_votes: record.voters.len(),
        })
    }

    /// The learner's attribute vector, aligned with
    /// [`StoryFeatures::attribute_names`]. A fixed-size array: the
    /// per-vote verdict path calls this once per arrival, so it must
    /// not heap-allocate.
    pub fn values(&self) -> [f64; 2] {
        [self.v10 as f64, self.fans1 as f64]
    }

    /// Attribute names for the paper's model.
    pub fn attribute_names() -> Vec<&'static str> {
        vec!["v10", "fans1"]
    }

    /// Extended attribute vector for the feature-ablation bench
    /// (ABL1), aligned with [`StoryFeatures::extended_attribute_names`].
    pub fn extended_values(&self) -> [f64; 4] {
        [
            self.v6 as f64,
            self.v10 as f64,
            self.v20 as f64,
            self.fans1 as f64,
        ]
    }

    /// Names for [`extended_values`](Self::extended_values).
    pub fn extended_attribute_names() -> Vec<&'static str> {
        vec!["v6", "v10", "v20", "fans1"]
    }
}

/// How much of the social network the features actually stand on.
///
/// `v10` and `fans1` are computed over *observed* fans; on a degraded
/// scrape (dropped or partial fan lists) a voter with no observed fans
/// contributes zeros that are indistinguishable from a genuinely
/// unwatched user. This summary makes that ambiguity explicit instead
/// of letting it hide inside the feature values: it counts, over a set
/// of records, how many distinct voters have at least one observed fan.
///
/// [`FanCoverage::fraction`] is total — an empty record set reports
/// full coverage (1.0), never `NaN`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FanCoverage {
    /// Distinct in-range voters across the records.
    pub voters_observed: usize,
    /// Of those, voters with at least one observed fan link.
    pub voters_with_fans: usize,
}

impl FanCoverage {
    /// Measure coverage of `records` against the (scraped) network.
    pub fn compute<'a>(
        records: impl IntoIterator<Item = &'a StoryRecord>,
        graph: &SocialGraph,
    ) -> FanCoverage {
        let mut seen = std::collections::HashSet::new();
        let mut cov = FanCoverage::default();
        for r in records {
            for &v in &r.voters {
                if v.index() < graph.user_count() && seen.insert(v) {
                    cov.voters_observed += 1;
                    if graph.fan_count(v) > 0 {
                        cov.voters_with_fans += 1;
                    }
                }
            }
        }
        cov
    }

    /// Covered fraction in `[0, 1]`; 1.0 when no voters were observed
    /// (nothing is known to be missing), never `NaN`.
    pub fn fraction(&self) -> f64 {
        if self.voters_observed == 0 {
            1.0
        } else {
            self.voters_with_fans as f64 / self.voters_observed as f64
        }
    }
}

/// Assemble the paper's training table from augmented records: one
/// instance per story with at least 10 post-submitter votes and a
/// known final count. Returns the dataset and the indices (into
/// `records`) of the retained stories.
pub fn build_training_set(
    records: &[StoryRecord],
    graph: &SocialGraph,
    threshold: u32,
) -> (MlDataset, Vec<usize>) {
    build_training_set_with(
        records,
        graph,
        threshold,
        crate::story_metrics::worker_threads(),
    )
}

/// [`build_training_set`] with an explicit worker-thread count:
/// feature extraction (the sweep) fans out; table assembly stays in
/// record order, so the dataset is identical at any thread count.
pub fn build_training_set_with(
    records: &[StoryRecord],
    graph: &SocialGraph,
    threshold: u32,
    threads: usize,
) -> (MlDataset, Vec<usize>) {
    let features = crate::story_metrics::sweep_map(graph, records, threads, |sweeper, r| {
        StoryFeatures::extract_with(sweeper, r, graph)
    });
    let mut ds = MlDataset::new(StoryFeatures::attribute_names());
    let mut kept = Vec::new();
    for (i, (r, f)) in records.iter().zip(features).enumerate() {
        let Some(f) = f else { continue };
        let Some(label) = r.is_interesting(threshold) else {
            continue;
        };
        ds.push(Instance::new(f.values().to_vec(), label));
        kept.push(i);
    }
    (ds, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::SampleSource;
    use digg_sim::{Minute, StoryId};
    use social_graph::{GraphBuilder, UserId};

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(30);
        // Users 1..=5 are fans of 0.
        for f in 1..=5 {
            b.add_watch(UserId(f), UserId(0));
        }
        b.build()
    }

    fn record(n_voters: usize, fin: Option<u32>) -> StoryRecord {
        StoryRecord {
            story: StoryId(0),
            submitter: UserId(0),
            submitted_at: Minute(0),
            voters: (0..n_voters as u32).map(UserId).collect(),
            source: SampleSource::FrontPage,
            final_votes: fin,
        }
    }

    #[test]
    fn extraction_requires_ten_votes() {
        let g = graph();
        assert!(StoryFeatures::extract(&record(10, None), &g).is_none());
        assert!(StoryFeatures::extract(&record(11, None), &g).is_some());
    }

    #[test]
    fn window_counts_are_nested() {
        let g = graph();
        let f = StoryFeatures::extract(&record(25, None), &g).unwrap();
        // Voters 1..=5 are fans of submitter 0 -> in-network.
        assert_eq!(f.v6, 5);
        assert_eq!(f.v10, 5);
        assert_eq!(f.v20, 5);
        assert!(f.v6 <= f.v10 && f.v10 <= f.v20);
        assert_eq!(f.fans1, 5);
        assert_eq!(f.scraped_votes, 25);
    }

    #[test]
    fn attribute_vectors_align_with_names() {
        let g = graph();
        let f = StoryFeatures::extract(&record(12, None), &g).unwrap();
        assert_eq!(f.values().len(), StoryFeatures::attribute_names().len());
        assert_eq!(
            f.extended_values().len(),
            StoryFeatures::extended_attribute_names().len()
        );
        assert_eq!(f.values()[0], f.v10 as f64);
        assert_eq!(f.values()[1], f.fans1 as f64);
    }

    #[test]
    fn fan_coverage_is_total_and_counts_distinct_voters() {
        let g = graph();
        // Voters 0..10: only 1..=5 have fans (they don't — they ARE
        // fans of 0; only user 0 has fans). Voters are 0..10; user 0
        // has 5 fans, users 1..10 have none.
        let records = vec![record(10, None), record(10, None)];
        let cov = FanCoverage::compute(&records, &g);
        assert_eq!(cov.voters_observed, 10);
        assert_eq!(cov.voters_with_fans, 1);
        assert_eq!(cov.fraction(), 0.1);
        // Empty set: full coverage by definition, never NaN.
        let empty = FanCoverage::compute(std::iter::empty(), &g);
        assert_eq!(empty.fraction(), 1.0);
        assert!(empty.fraction().is_finite());
    }

    #[test]
    fn training_set_filters_and_labels() {
        let g = graph();
        let records = vec![
            record(15, Some(600)), // kept, interesting
            record(15, Some(100)), // kept, not interesting
            record(5, Some(999)),  // too few votes
            record(15, None),      // unaugmented
        ];
        let (ds, kept) = build_training_set(&records, &g, INTERESTINGNESS_THRESHOLD);
        assert_eq!(ds.len(), 2);
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(ds.positives(), 1);
        assert_eq!(ds.attribute_names(), &["v10", "fans1"]);
    }
}
