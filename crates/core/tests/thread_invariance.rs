//! Thread-count invariance of the ported experiments: on a fixed
//! toy synthesis, every experiment's serialized output must be
//! byte-identical at 1, 2 and 8 worker threads. The parallel fan-out
//! is a throughput knob, never a semantics knob.

use digg_core::experiments::{decay, fig2, fig3, fig4, intext, scatter};
use digg_data::scrape::ScrapeConfig;
use digg_data::synth::{synthesize_with, SynthConfig, Synthesis};
use digg_sim::population::{Population, PopulationConfig};
use digg_sim::time::DAY;
use digg_sim::SimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_synthesis() -> Synthesis {
    let cfg = SynthConfig {
        seed: 7,
        scrape: ScrapeConfig {
            front_page_stories: 30,
            upcoming_stories: 80,
            top_users: 120,
            network_cutoff: 1000,
            network_scraped: 1600,
            ..ScrapeConfig::default()
        },
        min_promotions: 15,
        min_scrape_days: 0,
        saturation_days: 1,
        max_minutes: 3 * DAY,
    };
    let sim_cfg = SimConfig::toy(7);
    let mut rng = StdRng::seed_from_u64(7);
    let pop = Population::generate(&mut rng, &PopulationConfig::toy(sim_cfg.users));
    synthesize_with(&cfg, sim_cfg, pop)
}

#[test]
fn experiment_outputs_are_byte_identical_at_1_2_8_threads() {
    let synthesis = toy_synthesis();
    let ds = &synthesis.dataset;
    let outputs = |threads: usize| -> Vec<String> {
        vec![
            serde_json::to_string(&fig3::run_a_with(ds, threads)).unwrap(),
            serde_json::to_string(&fig3::run_b_with(ds, threads)).unwrap(),
            serde_json::to_string(&fig4::run_with(ds, threads)).unwrap(),
            serde_json::to_string(&fig2::run_b_with(ds, threads)).unwrap(),
            serde_json::to_string(&fig2::run_b_sim_with(&synthesis.sim, threads)).unwrap(),
            serde_json::to_string(&scatter::run_with(ds, 50, threads)).unwrap(),
            serde_json::to_string(&intext::run_with(&synthesis, 10, threads)).unwrap(),
            serde_json::to_string(&decay::run_with(&synthesis.sim, 600, 24, threads)).unwrap(),
        ]
    };
    let base = outputs(1);
    for threads in [2usize, 8] {
        let got = outputs(threads);
        for (i, (a, b)) in base.iter().zip(&got).enumerate() {
            assert_eq!(a, b, "experiment #{i} differs at {threads} threads");
        }
    }
}

#[test]
fn training_set_is_thread_count_invariant() {
    let synthesis = toy_synthesis();
    let ds = &synthesis.dataset;
    let build = |threads: usize| {
        digg_core::features::build_training_set_with(
            &ds.front_page,
            &ds.network,
            digg_core::INTERESTINGNESS_THRESHOLD,
            threads,
        )
    };
    let (base_ds, base_kept) = build(1);
    for threads in [2usize, 8] {
        let (got_ds, got_kept) = build(threads);
        assert_eq!(
            got_kept, base_kept,
            "kept indices differ at {threads} threads"
        );
        assert_eq!(got_ds.len(), base_ds.len());
        assert_eq!(got_ds.positives(), base_ds.positives());
    }
}
