//! Property-based tests for the cascade/influence analysis: the fast
//! implementations must agree with brute-force reference versions on
//! arbitrary graphs and voter lists.

use proptest::prelude::*;
use social_graph::{GraphBuilder, SocialGraph, UserId};
use std::collections::HashSet;

const N: u32 = 24;

fn graph_strategy() -> impl Strategy<Value = SocialGraph> {
    prop::collection::vec((0u32..N, 0u32..N), 0..150).prop_map(|edges| {
        let mut b = GraphBuilder::new(N as usize);
        for (a, c) in edges {
            b.add_watch(UserId(a), UserId(c));
        }
        b.build()
    })
}

/// Distinct voter lists (submitter first).
fn voters_strategy() -> impl Strategy<Value = Vec<UserId>> {
    prop::collection::vec(0u32..N, 1..20).prop_map(|raw| {
        let mut seen = HashSet::new();
        raw.into_iter()
            .filter(|u| seen.insert(*u))
            .map(UserId)
            .collect()
    })
}

/// Brute-force in-network flag: is voter k a fan of any prior voter?
fn brute_in_network(g: &SocialGraph, voters: &[UserId]) -> Vec<bool> {
    (1..voters.len())
        .map(|k| {
            voters[..k]
                .iter()
                .any(|&prior| g.fans(prior).contains(&voters[k]))
        })
        .collect()
}

/// Brute-force influence: users (not yet voters) who are fans of any
/// of the first k voters.
fn brute_influence(g: &SocialGraph, voters: &[UserId], k: usize) -> usize {
    let k = k.min(voters.len());
    let voted: HashSet<UserId> = voters[..k].iter().copied().collect();
    let mut audience = HashSet::new();
    for u in g.users() {
        if voted.contains(&u) {
            continue;
        }
        if voters[..k].iter().any(|&v| g.watches(u, v)) {
            audience.insert(u);
        }
    }
    audience.len()
}

proptest! {
    #[test]
    fn in_network_flags_match_brute_force(g in graph_strategy(), voters in voters_strategy()) {
        let fast = digg_core::cascade::in_network_flags(&g, &voters);
        let brute = brute_in_network(&g, &voters);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn counts_are_prefix_sums_of_flags(g in graph_strategy(), voters in voters_strategy(), n in 0usize..25) {
        let flags = digg_core::cascade::in_network_flags(&g, &voters);
        let expected = flags.iter().take(n).filter(|&&f| f).count();
        prop_assert_eq!(
            digg_core::cascade::in_network_count_within(&g, &voters, n),
            expected
        );
    }

    #[test]
    fn cumulative_cascade_is_monotone_prefix(g in graph_strategy(), voters in voters_strategy()) {
        let cum = digg_core::cascade::cumulative_cascade(&g, &voters);
        prop_assert_eq!(cum.len(), voters.len().saturating_sub(1));
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1] && w[1] <= w[0] + 1));
        if let Some(&last) = cum.last() {
            prop_assert_eq!(
                last,
                digg_core::cascade::in_network_count_within(&g, &voters, usize::MAX)
            );
        }
    }

    #[test]
    fn influence_matches_brute_force(g in graph_strategy(), voters in voters_strategy(), k in 0usize..25) {
        prop_assert_eq!(
            digg_core::influence::influence_after(&g, &voters, k),
            brute_influence(&g, &voters, k)
        );
    }

    #[test]
    fn influence_trajectory_matches_pointwise(g in graph_strategy(), voters in voters_strategy()) {
        let traj = digg_core::influence::influence_trajectory(&g, &voters);
        prop_assert_eq!(traj.len(), voters.len());
        for (k, &v) in traj.iter().enumerate() {
            prop_assert_eq!(v, brute_influence(&g, &voters, k + 1), "at k={}", k);
        }
    }

    #[test]
    fn influence_bounded_by_total_fans(g in graph_strategy(), voters in voters_strategy()) {
        let total_fans: usize = voters.iter().map(|&v| g.fan_count(v)).sum();
        let inf = digg_core::influence::influence_after(&g, &voters, voters.len());
        prop_assert!(inf <= total_fans);
        prop_assert!(inf <= g.user_count());
    }

    #[test]
    fn spread_profile_is_consistent(g in graph_strategy(), voters in voters_strategy(), w in 1usize..15) {
        let p = digg_core::spread::profile(&g, &voters, w);
        prop_assert_eq!(p.in_network + p.independent_seeds, p.votes);
        prop_assert!(p.votes <= w);
        prop_assert!(p.longest_network_run <= p.in_network);
        prop_assert!((0.0..=1.0).contains(&p.network_fraction()));
    }

    #[test]
    fn features_match_seed_implementation(g in graph_strategy(), voters in voters_strategy()) {
        use digg_data::{SampleSource, StoryRecord};
        let record = StoryRecord {
            story: digg_sim::StoryId(0),
            submitter: *voters.first().unwrap(),
            submitted_at: digg_sim::Minute(0),
            voters: voters.clone(),
            source: SampleSource::FrontPage,
            final_votes: None,
        };
        let fast = digg_core::features::StoryFeatures::extract(&record, &g);
        // Seed semantics: None below 10 post-submitter votes, else
        // window counts from the brute-force flags plus raw fans1.
        if voters.len() <= 10 {
            prop_assert!(fast.is_none());
        } else {
            let flags = brute_in_network(&g, &voters);
            let count = |n: usize| flags.iter().take(n).filter(|&&f| f).count();
            let f = fast.unwrap();
            prop_assert_eq!(f.v6, count(6));
            prop_assert_eq!(f.v10, count(10));
            prop_assert_eq!(f.v20, count(20));
            prop_assert_eq!(f.fans1, g.fan_count(voters[0]));
            prop_assert_eq!(f.scraped_votes, voters.len());
        }
    }

    #[test]
    fn sweeps_are_thread_count_invariant(
        g in graph_strategy(),
        stories in prop::collection::vec(voters_strategy(), 0..12)
    ) {
        let sweep_all = |threads: usize| {
            digg_core::sweep_map(&g, &stories, threads, |sw, voters| {
                let s = sw.sweep(&g, voters);
                (s.flags().to_vec(), s.cascade().to_vec(), s.influence().to_vec())
            })
        };
        let serial = sweep_all(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(sweep_all(threads), serial.clone(), "threads={}", threads);
        }
    }

    #[test]
    fn fig5_rule_is_total_and_matches_thresholds(v10 in 0usize..30, fans1 in 0usize..2000) {
        let p = digg_core::predictor::fig5_predictor();
        let f = digg_core::features::StoryFeatures {
            v6: 0,
            v10,
            v20: 0,
            fans1,
            scraped_votes: 11,
        };
        let predicted = p.predict_features(&f);
        // Replicate the published rule directly.
        let expected = if v10 <= 4 {
            true
        } else if v10 > 8 {
            false
        } else {
            fans1 > 85
        };
        prop_assert_eq!(predicted, expected);
    }
}
