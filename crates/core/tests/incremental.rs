//! Property tests for the incremental vote-apply state machine: after
//! applying the first `k` votes, [`IncrementalSweep`] must hold exactly
//! the state a fresh batch sweep over the `k`-prefix computes —
//! counters, features and verdict — on arbitrary graphs and voter
//! orders, at 1, 2 and 8 worker threads.

use digg_core::features::StoryFeatures;
use digg_core::pipeline::StoryPrefixes;
use digg_core::predictor::fig5_predictor;
use digg_core::{IncrementalSweep, StorySweeper};
use digg_data::{SampleSource, StoryRecord};
use proptest::prelude::*;
use social_graph::{GraphBuilder, SocialGraph, UserId};
use std::collections::HashSet;

const N: u32 = 24;

fn graph_strategy() -> impl Strategy<Value = SocialGraph> {
    prop::collection::vec((0u32..N, 0u32..N), 0..150).prop_map(|edges| {
        let mut b = GraphBuilder::new(N as usize);
        for (a, c) in edges {
            b.add_watch(UserId(a), UserId(c));
        }
        b.build()
    })
}

/// Distinct voter lists (submitter first).
fn voters_strategy() -> impl Strategy<Value = Vec<UserId>> {
    prop::collection::vec(0u32..N, 1..20).prop_map(|raw| {
        let mut seen = HashSet::new();
        raw.into_iter()
            .filter(|u| seen.insert(*u))
            .map(UserId)
            .collect()
    })
}

fn record_for(voters: &[UserId]) -> StoryRecord {
    StoryRecord {
        story: digg_sim::StoryId(0),
        submitter: voters[0],
        submitted_at: digg_sim::Minute(0),
        voters: voters.to_vec(),
        source: SampleSource::FrontPage,
        final_votes: None,
    }
}

/// Features of the `k`-prefix via the batch path: truncate the record
/// and extract from scratch.
fn batch_features(g: &SocialGraph, voters: &[UserId], k: usize) -> Option<StoryFeatures> {
    let mut r = record_for(voters);
    r.voters.truncate(k);
    StoryFeatures::extract(&r, g)
}

proptest! {
    /// The tentpole contract: one pass of `apply_vote`, checkpointed
    /// at every prefix, reproduces a from-scratch batch sweep of that
    /// prefix — same flags/cascade/influence vectors, same features,
    /// same verdict.
    #[test]
    fn incremental_state_equals_batch_sweep_at_every_prefix(
        g in graph_strategy(),
        voters in voters_strategy(),
    ) {
        let predictor = fig5_predictor();
        let mut incr = IncrementalSweep::new(&g);
        incr.begin(&g);
        let mut batch = StorySweeper::new(&g);
        for k in 1..=voters.len() {
            incr.apply_vote(&g, voters[k - 1]);
            prop_assert_eq!(incr.votes_applied(), k);
            let reference = batch.sweep(&g, &voters[..k]);
            prop_assert_eq!(incr.sweep().flags(), reference.flags(), "flags at k={}", k);
            prop_assert_eq!(incr.sweep().cascade(), reference.cascade(), "cascade at k={}", k);
            prop_assert_eq!(
                incr.sweep().influence(),
                reference.influence(),
                "influence at k={}",
                k
            );
            let expected = batch_features(&g, &voters, k);
            prop_assert_eq!(incr.features(), expected.clone(), "features at k={}", k);
            prop_assert_eq!(
                incr.verdict(&predictor),
                expected.map(|f| predictor.predict_features(&f)),
                "verdict at k={}",
                k
            );
        }
    }

    /// `begin` fully erases one story's state before the next: a sweep
    /// over story B after story A equals a sweep over B alone.
    #[test]
    fn begin_isolates_consecutive_stories(
        g in graph_strategy(),
        a in voters_strategy(),
        b in voters_strategy(),
    ) {
        let mut reused = IncrementalSweep::new(&g);
        reused.begin(&g);
        for &v in &a {
            reused.apply_vote(&g, v);
        }
        reused.begin(&g);
        for &v in &b {
            reused.apply_vote(&g, v);
        }
        let mut fresh = IncrementalSweep::new(&g);
        fresh.begin(&g);
        for &v in &b {
            fresh.apply_vote(&g, v);
        }
        prop_assert_eq!(reused.sweep().flags(), fresh.sweep().flags());
        prop_assert_eq!(reused.sweep().cascade(), fresh.sweep().cascade());
        prop_assert_eq!(reused.sweep().influence(), fresh.sweep().influence());
        prop_assert_eq!(reused.features(), fresh.features());
    }

    /// The prefix-feature API agrees with truncate-and-extract for
    /// every `k`, and the whole computation is thread-count invariant
    /// when fanned out over many stories.
    #[test]
    fn prefix_features_are_exact_and_thread_invariant(
        g in graph_strategy(),
        stories in prop::collection::vec(voters_strategy(), 1..8),
    ) {
        let records: Vec<StoryRecord> = stories.iter().map(|v| record_for(v)).collect();
        for r in &records {
            let prefixes = StoryPrefixes::compute(r, &g);
            for k in 0..=r.voters.len() + 2 {
                // Past the scraped list there is no such prefix.
                let expected = if k <= r.voters.len() {
                    batch_features(&g, &r.voters, k)
                } else {
                    None
                };
                prop_assert_eq!(
                    prefixes.features_at(k),
                    expected,
                    "story len {} at k={}",
                    r.voters.len(),
                    k
                );
            }
        }
        let run = |threads: usize| {
            digg_core::sweep_map(&g, &records, threads, |sw, r: &StoryRecord| {
                StoryPrefixes::compute_with(sw, r, &g)
                    .features()
                    .map(|f| f.values())
            })
        };
        let serial = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(run(threads), serial.clone(), "threads={}", threads);
        }
    }
}
