//! Property tests for the analytics checkpoint contract: an
//! [`IncrementalSweep`] snapshotted after an arbitrary vote prefix and
//! restored must finish the story bit-identically to an uninterrupted
//! machine — including when the continuation runs inside a
//! `des_core::par_map` fan-out at 1, 2 and 8 threads — and damaged
//! containers are typed errors, never panics.

use digg_core::predictor::fig5_predictor;
use digg_core::IncrementalSweep;
use digg_snapshot::{Restore, Snapshot, SnapshotError, FORMAT_VERSION, MAGIC};
use proptest::prelude::*;
use social_graph::{GraphBuilder, SocialGraph, UserId};
use std::collections::HashSet;

const N: u32 = 24;

fn graph_strategy() -> impl Strategy<Value = SocialGraph> {
    prop::collection::vec((0u32..N, 0u32..N), 0..150).prop_map(|edges| {
        let mut b = GraphBuilder::new(N as usize);
        for (a, c) in edges {
            b.add_watch(UserId(a), UserId(c));
        }
        b.build()
    })
}

/// Distinct voter lists (submitter first).
fn voters_strategy() -> impl Strategy<Value = Vec<UserId>> {
    prop::collection::vec(0u32..N, 1..20).prop_map(|raw| {
        let mut seen = HashSet::new();
        raw.into_iter()
            .filter(|u| seen.insert(*u))
            .map(UserId)
            .collect()
    })
}

proptest! {
    /// Snapshot after an arbitrary prefix, restore, apply the rest:
    /// final sweep series, features, verdict, and snapshot bytes all
    /// match the uninterrupted machine.
    #[test]
    fn restore_at_any_prefix_finishes_identically(
        g in graph_strategy(),
        voters in voters_strategy(),
        cut_pick in any::<usize>(),
    ) {
        let cut = cut_pick % (voters.len() + 1);
        let predictor = fig5_predictor();

        let mut straight = IncrementalSweep::new(&g);
        straight.begin(&g);
        for v in &voters {
            straight.apply_vote(&g, *v);
        }

        let mut first = IncrementalSweep::new(&g);
        first.begin(&g);
        for v in &voters[..cut] {
            first.apply_vote(&g, *v);
        }
        let bytes = first.snapshot();
        let mut resumed = IncrementalSweep::restore(&bytes, ()).map_err(|e| format!("{e:?}"))?;
        prop_assert_eq!(resumed.snapshot(), bytes, "re-snapshot must be byte-stable");
        for v in &voters[cut..] {
            // The restored machine must answer per-vote queries
            // identically too, not just converge at the end.
            prop_assert_eq!(resumed.apply_vote(&g, *v), first.apply_vote(&g, *v));
        }

        prop_assert_eq!(resumed.sweep().flags(), straight.sweep().flags());
        prop_assert_eq!(resumed.sweep().cascade(), straight.sweep().cascade());
        prop_assert_eq!(resumed.sweep().influence(), straight.sweep().influence());
        prop_assert_eq!(resumed.features(), straight.features());
        prop_assert_eq!(resumed.verdict(&predictor), straight.verdict(&predictor));
        prop_assert_eq!(resumed.snapshot(), straight.snapshot());
    }

    /// Continuing from a snapshot inside a parallel fan-out is
    /// thread-count invariant: every worker at 1, 2 and 8 threads
    /// restores the same bytes and produces the same final snapshot as
    /// a serial continuation.
    #[test]
    fn parallel_restore_is_thread_count_invariant(
        g in graph_strategy(),
        voters in voters_strategy(),
        cut_pick in any::<usize>(),
    ) {
        let cut = cut_pick % (voters.len() + 1);
        let mut first = IncrementalSweep::new(&g);
        first.begin(&g);
        for v in &voters[..cut] {
            first.apply_vote(&g, *v);
        }
        let bytes = first.snapshot();

        let mut serial = IncrementalSweep::restore(&bytes, ()).map_err(|e| format!("{e:?}"))?;
        for v in &voters[cut..] {
            serial.apply_vote(&g, *v);
        }
        let want = serial.snapshot();

        let lanes: Vec<usize> = (0..8).collect();
        for threads in [1usize, 2, 8] {
            let outs = des_core::par_map(&lanes, threads, |_| {
                let mut m = IncrementalSweep::restore(&bytes, ()).expect("restore in worker");
                for v in &voters[cut..] {
                    m.apply_vote(&g, *v);
                }
                m.snapshot()
            });
            for out in outs {
                prop_assert_eq!(&out, &want, "{} threads", threads);
            }
        }
    }

    /// Any single flipped byte is a typed error from restore — never a
    /// panic — and a version-patched container reports the mismatch.
    #[test]
    fn damaged_sweep_snapshot_is_a_typed_error(
        g in graph_strategy(),
        voters in voters_strategy(),
        at_pick in any::<usize>(),
        mask in 1..=255u8,
        found_raw in any::<u32>(),
    ) {
        let mut m = IncrementalSweep::new(&g);
        m.begin(&g);
        for v in &voters {
            m.apply_vote(&g, *v);
        }
        let bytes = m.snapshot();

        let mut corrupt = bytes.clone();
        let at = at_pick % corrupt.len();
        corrupt[at] ^= mask;
        prop_assert!(IncrementalSweep::restore(&corrupt, ()).is_err());

        let found = if found_raw == FORMAT_VERSION { FORMAT_VERSION ^ 1 } else { found_raw };
        let mut patched = bytes.clone();
        patched[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&found.to_le_bytes());
        match IncrementalSweep::restore(&patched, ()) {
            Err(SnapshotError::VersionMismatch { found: f, expected }) => {
                prop_assert_eq!(f, found);
                prop_assert_eq!(expected, FORMAT_VERSION);
            }
            other => {
                prop_assert!(false, "expected VersionMismatch, got {:?}", other.err());
            }
        }
    }
}
