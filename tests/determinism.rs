//! Reproducibility: every layer is a pure function of its seed.

use digg_data::io;
use digg_data::scrape::ScrapeConfig;
use digg_data::synth::{synthesize_small, SynthConfig};
use digg_sim::population::{Population, PopulationConfig};
use digg_sim::time::DAY;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_graph::generators;

fn small_cfg(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        scrape: ScrapeConfig {
            front_page_stories: 30,
            upcoming_stories: 100,
            top_users: 100,
            ..ScrapeConfig::default()
        },
        min_promotions: 20,
        min_scrape_days: 1,
        saturation_days: 1,
        max_minutes: 10 * DAY,
    }
}

#[test]
fn synthesis_is_deterministic_per_seed() {
    let a = synthesize_small(&small_cfg(77));
    let b = synthesize_small(&small_cfg(77));
    let ja = io::to_json(&a.dataset).unwrap();
    let jb = io::to_json(&b.dataset).unwrap();
    assert_eq!(ja, jb, "same seed must give byte-identical datasets");
}

#[test]
fn different_seeds_differ() {
    let a = synthesize_small(&small_cfg(1));
    let b = synthesize_small(&small_cfg(2));
    assert_ne!(
        io::to_json(&a.dataset).unwrap(),
        io::to_json(&b.dataset).unwrap()
    );
}

#[test]
fn dataset_json_roundtrip_preserves_everything() {
    let s = synthesize_small(&small_cfg(5));
    let json = io::to_json(&s.dataset).unwrap();
    let back = io::from_json(&json).unwrap();
    assert_eq!(s.dataset.front_page, back.front_page);
    assert_eq!(s.dataset.upcoming, back.upcoming);
    assert_eq!(s.dataset.top_users, back.top_users);
    assert_eq!(s.dataset.network, back.network);
    assert_eq!(s.dataset.scraped_at, back.scraped_at);
}

#[test]
fn population_generation_is_deterministic() {
    let cfg = PopulationConfig::toy(500);
    let a = Population::generate(&mut StdRng::seed_from_u64(9), &cfg);
    let b = Population::generate(&mut StdRng::seed_from_u64(9), &cfg);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.activity, b.activity);
    assert_eq!(a.join_day, b.join_day);
}

#[test]
fn graph_generators_are_deterministic() {
    let g1 = generators::preferential_attachment(&mut StdRng::seed_from_u64(4), 500, 3, 1.0);
    let g2 = generators::preferential_attachment(&mut StdRng::seed_from_u64(4), 500, 3, 1.0);
    assert_eq!(g1, g2);
    let e1 = generators::erdos_renyi(&mut StdRng::seed_from_u64(4), 500, 0.01);
    let e2 = generators::erdos_renyi(&mut StdRng::seed_from_u64(4), 500, 0.01);
    assert_eq!(e1, e2);
}
