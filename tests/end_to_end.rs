//! Cross-crate integration tests: the full pipeline at reduced scale.
//!
//! These use [`digg_data::synth::synthesize_small`] — the same
//! generative process as the calibrated scenario at 1/5 population and
//! traffic — so they run in seconds while still exercising every layer:
//! population → simulator → scraper → features → learner → evaluation.

use digg_core::cascade;
use digg_core::experiments::{fig2, fig3, fig4};
use digg_core::features::{build_training_set, INTERESTINGNESS_THRESHOLD};
use digg_data::scrape::ScrapeConfig;
use digg_data::synth::{synthesize_small, SynthConfig, Synthesis};
use digg_data::validate;
use digg_sim::scenario::PROMOTION_THRESHOLD;
use digg_sim::story::VoteChannel;
use digg_sim::time::DAY;
use std::sync::OnceLock;

/// One shared reduced-scale synthesis for all tests in this file.
fn synthesis() -> &'static Synthesis {
    static CELL: OnceLock<Synthesis> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = SynthConfig {
            seed: 2006,
            scrape: ScrapeConfig {
                front_page_stories: 80,
                upcoming_stories: 300,
                top_users: 300,
                ..ScrapeConfig::default()
            },
            min_promotions: 80,
            min_scrape_days: 2,
            saturation_days: 3,
            max_minutes: 30 * DAY,
        };
        synthesize_small(&cfg)
    })
}

#[test]
fn dataset_satisfies_structural_invariants() {
    let ds = &synthesis().dataset;
    let violations = validate::validate(ds, PROMOTION_THRESHOLD);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert!(!ds.front_page.is_empty());
    assert!(!ds.upcoming.is_empty());
}

#[test]
fn promotion_boundary_is_exactly_43_at_promotion() {
    let sim = &synthesis().sim;
    let mut min_at_promo = usize::MAX;
    for s in sim.stories() {
        if let Some(t) = s.promoted_at() {
            let votes = s.votes.iter().filter(|v| v.at <= t).count();
            assert!(
                votes >= PROMOTION_THRESHOLD,
                "story {} promoted at {votes}",
                s.id
            );
            min_at_promo = min_at_promo.min(votes);
        }
    }
    assert_eq!(
        min_at_promo, PROMOTION_THRESHOLD,
        "the binding constraint should be the threshold itself"
    );
}

#[test]
fn friends_channel_votes_are_in_network_under_ground_truth() {
    // A Friends-interface vote means the voter was a fan of the
    // submitter or an earlier voter — it must be flagged in-network by
    // the cascade analysis when run on the TRUE graph. (The scraped
    // graph can only add spurious edges, never remove true ones at
    // this scenario's cutoff.)
    let synthesis = synthesis();
    let truth = &synthesis.sim.population().graph;
    let mut checked = 0;
    for s in synthesis.sim.stories().iter().take(400) {
        let voters = s.voters_chronological();
        let flags = cascade::in_network_flags(truth, &voters);
        for (k, v) in s.votes.iter().enumerate().skip(1) {
            if v.channel == VoteChannel::Friends {
                assert!(
                    flags[k - 1],
                    "friends-channel vote not in-network: story {} vote {k}",
                    s.id
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "too few friends votes checked: {checked}");
}

#[test]
fn scraped_network_contains_ground_truth() {
    let synthesis = synthesis();
    let truth = &synthesis.sim.population().graph;
    let scraped = &synthesis.dataset.network;
    for (a, b) in truth.edges() {
        assert!(scraped.watches(a, b), "true edge {a}->{b} lost in scrape");
    }
    assert!(scraped.edge_count() >= truth.edge_count());
    // The measured bias accounts for the difference (a few excess
    // links can collide with existing edges and dedup away).
    let delta = scraped.edge_count() - truth.edge_count();
    assert!(delta <= synthesis.network_excess_links);
    assert!(
        delta * 10 >= synthesis.network_excess_links * 9,
        "delta {delta} vs excess {}",
        synthesis.network_excess_links
    );
}

#[test]
fn upcoming_stories_do_get_promoted_after_the_scrape() {
    let synthesis = synthesis();
    let promoted_later = synthesis
        .dataset
        .upcoming
        .iter()
        .filter(|r| synthesis.sim.story(r.story).is_front_page())
        .count();
    assert!(
        promoted_later > 0,
        "the 5.2 holdout depends on post-scrape promotions"
    );
}

#[test]
fn final_votes_exceed_scraped_votes_for_promoted_upcoming() {
    let ds = &synthesis().dataset;
    for r in &ds.upcoming {
        let fin = r.final_votes.expect("augmented") as usize;
        assert!(fin >= r.voters.len());
    }
}

#[test]
fn fig4_inverse_relationship_holds_at_small_scale() {
    let ds = &synthesis().dataset;
    let result = fig4::run(ds);
    let p10 = &result.panels[1];
    let rho = p10.spearman.expect("enough stories");
    assert!(
        rho < -0.2,
        "expected a negative v10/final correlation, got {rho}"
    );
}

#[test]
fn fig3_cascades_grow_with_vote_window() {
    let ds = &synthesis().dataset;
    let b = fig3::run_b(ds);
    // Later windows can only add in-network votes.
    let means: Vec<f64> = b
        .checkpoints
        .iter()
        .map(|c| c.values.iter().sum::<u64>() as f64 / c.values.len().max(1) as f64)
        .collect();
    assert!(
        means[0] <= means[1] && means[1] <= means[2],
        "means {means:?}"
    );
}

#[test]
fn fig2a_histogram_covers_all_stories() {
    let ds = &synthesis().dataset;
    let a = fig2::run_a(ds, 10, 2500.0);
    assert_eq!(a.stories, ds.front_page.len());
    // No front-page story finishes below the promotion threshold.
    let min_final = ds
        .front_page
        .iter()
        .filter_map(|r| r.final_votes)
        .min()
        .unwrap();
    assert!(
        min_final as usize >= PROMOTION_THRESHOLD,
        "min final {min_final}"
    );
}

#[test]
fn training_set_has_both_classes() {
    let ds = &synthesis().dataset;
    let (training, kept) =
        build_training_set(&ds.front_page, &ds.network, INTERESTINGNESS_THRESHOLD);
    assert_eq!(training.len(), kept.len());
    assert!(
        training.len() >= 50,
        "only {} trainable stories",
        training.len()
    );
    let pos = training.positives();
    assert!(
        pos > 0 && pos < training.len(),
        "degenerate labels: {pos}/{}",
        training.len()
    );
}

#[test]
fn distinct_voters_are_a_large_user_fraction() {
    let ds = &synthesis().dataset;
    let voters = ds.distinct_voters();
    // The paper saw 16.6k distinct voters; at our reduced scale the
    // sample should still engage a sizeable share of the population.
    assert!(voters > 1000, "only {voters} distinct voters");
}
